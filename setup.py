"""Legacy setup shim.

The sandboxed environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets the legacy path work: ``pip install -e . --no-use-pep517``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
