#!/usr/bin/env python3
"""Smoke-drive the distributed tier under concurrency and worker loss.

CI's dist-stress leg runs this after the pytest suite as a
self-contained, human-readable demo: 8 client threads issue distributed
queries against one shared 4-worker pool while a saboteur thread kills a
worker mid-run.  Every client must get bit-identical results to
sequential execution (resubmission or pool healing, never corruption),
the pool must drain, and shutting it down must leave zero orphan worker
processes.

Exit status: 0 = every client correct, pool drained, no orphans;
non-zero otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import from_struct_array, new  # noqa: E402
from repro.distributed.scheduler import get_pool, shutdown_pools  # noqa: E402
from repro.observability import METRICS  # noqa: E402
from repro.query import QueryProvider  # noqa: E402
from repro.storage import Field, Schema, StructArray  # noqa: E402

SCHEMA = Schema(
    [Field("id", "int"), Field("g", "int"), Field("v", "float")], name="DistSmoke"
)
CLIENTS = 8
WORKERS = 4
RUNS_PER_CLIENT = 6


def _array(n: int) -> StructArray:
    # multiples of 0.25 so summation order cannot perturb float results
    rows = [(i, i % 11, ((i * 7) % 13) * 0.25) for i in range(n)]
    return StructArray.from_rows(SCHEMA, rows)


TABLE = _array(60_000)


def main() -> int:
    provider = QueryProvider()
    base = from_struct_array(TABLE).using("compiled", provider)
    queries = [
        base.group_by(
            lambda r: r.g,
            lambda grp: new(k=grp.key, n=grp.count(), t=grp.sum(lambda r: r.v)),
        ),
        base.where(lambda r: r.g > 4).select(lambda r: new(i=r.id, y=r.v + r.v)),
        base.select(lambda r: new(g=r.g, v=r.v, i=r.id))
        .order_by(lambda p: p.g)
        .then_by(lambda p: p.v)
        .take(50),
    ]
    expected = [list(q) for q in queries]

    pool = get_pool(WORKERS)
    pool.ensure_workers()
    losses_before = METRICS.counter("dist.worker_losses").value

    errors: list = []
    lock = threading.Lock()
    started = time.perf_counter()

    def client(i: int) -> None:
        try:
            for run in range(RUNS_PER_CLIENT):
                pick = (i + run) % len(queries)
                got = list(queries[pick].distributed(WORKERS))
                if got != expected[pick]:
                    raise AssertionError(
                        f"client {i} run {run}: distributed result diverged"
                    )
        except Exception as exc:  # noqa: BLE001 - reported below
            with lock:
                errors.append(f"client {i}: {type(exc).__name__}: {exc}")

    killed = {}

    def saboteur() -> None:
        time.sleep(0.3)  # mid-run: clients are in flight by now
        handles = pool.live_handles()
        if handles:
            handles[0].process.terminate()
            killed["pid"] = handles[0].process.pid

    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)]
    killer = threading.Thread(target=saboteur)
    for t in threads:
        t.start()
    killer.start()
    for t in threads:
        t.join(timeout=300.0)
    killer.join(timeout=10.0)
    elapsed = time.perf_counter() - started

    print(
        f"dist smoke: {CLIENTS} clients x {RUNS_PER_CLIENT} runs over "
        f"{WORKERS} workers in {elapsed:.2f}s"
    )
    print(f"  worker killed: pid {killed.get('pid')}")
    print(
        f"  losses observed: "
        f"{METRICS.counter('dist.worker_losses').value - losses_before}, "
        f"resubmissions: {METRICS.counter('dist.resubmissions').value}"
    )

    failures = []
    if any(t.is_alive() for t in threads):
        failures.append("client thread hung")
    if not killed:
        failures.append("saboteur found no live worker to kill")
    failures.extend(errors)
    if pool.admission.running != 0 or pool.admission.queue_depth != 0:
        failures.append(
            f"pool not drained: running={pool.admission.running} "
            f"queued={pool.admission.queue_depth}"
        )

    shutdown_pools()
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = multiprocessing.active_children()
    if leaked:
        failures.append(f"leaked worker processes: {[p.pid for p in leaked]}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all clients bit-identical, pool drained, zero orphans")
    return 0


if __name__ == "__main__":
    sys.exit(main())
