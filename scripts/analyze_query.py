#!/usr/bin/env python3
"""Inspect the dataflow facts the static analyzer derives for a query.

For each query in the built-in corpus (TPC-H Q1 plus small synthetic
shapes that exercise every analysis verdict) this prints

* the purity/effect verdict of its lambdas,
* the derived facts (divisions proven, guards elided/kept, dead
  pipelines, proven filters, value domains), and
* the guards actually present in the generated module.

``--selftest`` additionally cross-checks every derivation against the
verifier's independent re-derivation (:func:`repro.codegen.verifier.
check_facts`) and against the expected verdicts for the corpus; any
disagreement exits non-zero.  CI runs this next to
``python -m repro.codegen.verifier --selftest``.

Environment: ``REPRO_GUARD_ELISION`` gates elision globally (default
on); the selftest flips it both ways itself and restores it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import new  # noqa: E402
from repro.codegen.verifier import check_facts  # noqa: E402
from repro.errors import GeneratedCodeViolation  # noqa: E402
from repro.expressions.canonical import canonicalize  # noqa: E402
from repro.plans.optimizer import optimize  # noqa: E402
from repro.plans.translate import translate  # noqa: E402
from repro.query import (  # noqa: E402
    QueryProvider,
    from_iterable,
    from_struct_array,
)
from repro.storage import Field, Schema, StructArray  # noqa: E402
from repro.tpch import TPCHData  # noqa: E402
from repro.tpch.queries import q1  # noqa: E402

SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Probe")
ARRAY = StructArray.from_rows(SCHEMA, [(i, i * 0.5) for i in range(40)])
OBJECTS = ARRAY.to_objects()

_SINK = 0


def _impure_pred(r):
    # mutating on purpose: the analyzer must downgrade this to sequential
    global _SINK
    _SINK += 1
    return r.x >= 2


def _nondet_sel(r):
    # clock reference flags nondeterminism; the value itself is stable
    return r.y + time.time() * 0.0


def _source(provider, engine):
    if engine == "native":
        return from_struct_array(ARRAY).using(engine, provider)
    return from_iterable(OBJECTS, schema=SCHEMA).using(engine, provider)


# every corpus entry: name, build(provider, engine) -> query, and the
# expected verdicts asserted by --selftest
CORPUS = (
    (
        "tpch_q1",
        lambda provider, engine: q1(
            TPCHData(scale=0.001), engine=engine, provider=provider
        ),
        {"pure": True, "avg_guards": 3},
    ),
    (
        "proven_division",
        lambda provider, engine: _source(provider, engine)
        .where(lambda r: r.x > 0)
        .select(lambda r: r.y / r.x),
        {"pure": True, "division_sites": 1, "divisions_proven": 1},
    ),
    (
        "unproven_division",
        lambda provider, engine: _source(provider, engine).select(
            lambda r: r.y / (r.x - 3)
        ),
        {"pure": True, "division_sites": 1, "divisions_proven": 0},
    ),
    (
        "contradiction",
        lambda provider, engine: _source(provider, engine).where(
            lambda r: (r.x > 5) & (r.x < 3)
        ),
        {"pure": True, "dead_pipelines": True},
    ),
    (
        "proven_filter",
        lambda provider, engine: _source(provider, engine)
        .where(lambda r: r.x > 5)
        .select(lambda r: new(x=r.x, y=r.y))
        .where(lambda p: p.x > 3),
        {"pure": True, "proven_filters": True},
    ),
    (
        "impure_filter",
        lambda provider, engine: _source(provider, engine).where(_impure_pred),
        {"pure": False, "impure": True},
    ),
    (
        "nondet_select",
        lambda provider, engine: _source(provider, engine).select(_nondet_sel),
        {"pure": False, "nondeterministic": True},
    ),
)

#: substrings identifying division guards in generated modules, per engine
_GUARD_MARKERS = ("_guard_truediv", "_guard_floordiv", "_guard_mod", "_nz(")


def _derive(provider, query, engine):
    """(facts, ir) for one query, via the provider's own pipeline."""
    canonical = canonicalize(query.expr)
    plan = optimize(
        translate(canonical.tree, provider.translate_options),
        provider.optimize_options,
        statistics=provider._statistics,
        param_values=canonical.bindings,
    )
    ir = provider._ir_for(canonical, query.sources, plan, engine)
    facts = provider._facts_for(
        canonical, query.sources, plan=plan, engine=engine
    )
    return facts, ir, canonical


def _guard_count(provider, query, engine):
    compiled = provider.compile_info(query.expr, query.sources, engine)
    return sum(compiled.source_code.count(marker) for marker in _GUARD_MARKERS)


def _check_expectations(name, facts, expect):
    failures = []
    if expect.get("pure") is True and not facts.effects.pure:
        failures.append(f"expected pure, got {facts.effects.describe()}")
    if expect.get("impure") and not facts.effects.impure:
        failures.append("expected an impure verdict")
    if expect.get("nondeterministic") and not facts.effects.nondeterministic:
        failures.append("expected a nondeterministic verdict")
    for field_name in ("division_sites", "divisions_proven", "avg_guards"):
        if field_name in expect:
            actual = getattr(facts, field_name)
            if actual != expect[field_name]:
                failures.append(
                    f"{field_name}: expected {expect[field_name]}, got {actual}"
                )
    if expect.get("dead_pipelines") and not facts.dead_pipelines:
        failures.append("expected a statically-dead pipeline")
    if expect.get("proven_filters") and not facts.proven_filters:
        failures.append("expected a proven (stripped) filter")
    return [f"{name}: {message}" for message in failures]


def report(engine: str) -> int:
    provider = QueryProvider()
    for name, build, _ in CORPUS:
        query = build(provider, engine)
        facts, _, _ = _derive(provider, query, engine)
        print(f"{name} × {engine}")
        for line in facts.render_lines(elide=True):
            print(f"  {line}")
        guards = _guard_count(provider, query, engine)
        print(f"  generated guards: {guards}")
    return 0


def selftest(engine: str) -> int:
    failures = []
    saved = os.environ.get("REPRO_GUARD_ELISION")
    try:
        for setting in ("1", "0"):
            os.environ["REPRO_GUARD_ELISION"] = setting
            provider = QueryProvider()
            for name, build, expect in CORPUS:
                label = f"{name} × {engine} (elision={setting})"
                query = build(provider, engine)
                facts, ir, canonical = _derive(provider, query, engine)
                try:
                    # fail-closed cross-check: the verifier re-derives the
                    # facts independently and rejects any disagreement
                    check_facts(
                        ir,
                        canonical.bindings,
                        provider._statistics,
                        facts=facts,
                    )
                except GeneratedCodeViolation as exc:
                    failures.append(f"{label}: verifier disagrees: {exc}")
                    print(f"{label:<52} FAIL (verifier)")
                    continue
                mismatches = _check_expectations(name, facts, expect)
                failures.extend(mismatches)
                print(f"{label:<52} {'FAIL' if mismatches else 'ok'}")
            # elision on must strip the proven division guard; off must
            # keep it — checked on the generated module itself
            provider = QueryProvider()
            proven_q = CORPUS[1][1](provider, engine)
            guards = _guard_count(provider, proven_q, engine)
            if setting == "1" and guards != 0:
                failures.append(
                    f"proven_division (elision=1): {guards} guard(s) "
                    "survived in the generated module"
                )
            if setting == "0" and guards == 0:
                failures.append(
                    "proven_division (elision=0): expected the guard "
                    "to be kept in the generated module"
                )
            unproven_q = CORPUS[2][1](provider, engine)
            if _guard_count(provider, unproven_q, engine) == 0:
                failures.append(
                    f"unproven_division (elision={setting}): the guard "
                    "must never be elided without a proof"
                )
    finally:
        if saved is None:
            os.environ.pop("REPRO_GUARD_ELISION", None)
        else:
            os.environ["REPRO_GUARD_ELISION"] = saved
    if failures:
        print(f"\nselftest: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nselftest: facts, verifier re-derivation, and emission agree")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine",
        choices=("compiled", "native", "hybrid", "hybrid_buffered"),
        default="compiled",
        help="codegen engine to analyze (default: compiled)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="assert the expected verdicts for the corpus and cross-check "
        "every derivation against the verifier; non-zero exit on any "
        "disagreement",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest(args.engine)
    return report(args.engine)


if __name__ == "__main__":
    sys.exit(main())
