#!/usr/bin/env python3
"""Smoke-drive the query serving layer under concurrency.

CI's service-stress leg runs this after the pytest stress suite as a
self-contained, human-readable demo: many client threads against a small
slot pool, a mix of healthy and doomed (tight-deadline) requests, then a
consistency check over the outcome counts.

Exit status: 0 = every request accounted for and the pool drained,
non-zero otherwise.

Environment: ``REPRO_SERVICE_SLOTS`` sizes the pool (default here: 2, to
force queueing even on small runners); ``REPRO_QUERY_TIMEOUT`` would set
a default deadline for every request (this script passes explicit ones).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import numpy as np  # noqa: E402

from repro import from_struct_array  # noqa: E402
from repro.errors import (  # noqa: E402
    AdmissionRejected,
    QueryCancelled,
    QueryTimeoutError,
)
from repro.query import QueryProvider  # noqa: E402
from repro.service import AdmissionController, QueryService  # noqa: E402
from repro.storage import Field, Schema, StructArray  # noqa: E402

SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Smoke")
CLIENTS = 12
SLOTS = int(os.environ.get("REPRO_SERVICE_SLOTS", "2"))


def _array(n: int) -> StructArray:
    data = np.zeros(n, dtype=SCHEMA.numpy_dtype())
    rng = np.random.default_rng(17)
    data["x"] = rng.integers(0, n, n)
    data["y"] = rng.random(n)
    return StructArray(SCHEMA, data)


FAST = _array(500)
SLOW = _array(80_000)  # row-at-a-time engines take ~0.4s over this


def main() -> int:
    service = QueryService(
        provider=QueryProvider(),
        admission=AdmissionController(slots=SLOTS, max_queue=SLOTS * 2),
    )
    outcomes: Counter = Counter()
    lock = threading.Lock()

    def client(i: int) -> None:
        doomed = i % 3 == 0
        rows = SLOW if doomed else FAST
        timeout = 0.05 if doomed else 30.0
        query = (
            from_struct_array(rows)
            .using("compiled", service.provider)
            .where(lambda r: r.x % 7 > 2)
            .select(lambda r: r.y)
        )
        try:
            with service.session() as session:
                session.execute(query, timeout=timeout, priority=i % 2)
            kind = "completed"
        except QueryTimeoutError:
            kind = "timeout"
        except QueryCancelled:
            kind = "cancelled"
        except AdmissionRejected:
            kind = "rejected"
        with lock:
            outcomes[kind] += 1

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    elapsed = time.perf_counter() - started

    print(
        f"service smoke: {CLIENTS} clients over {SLOTS} slots "
        f"in {elapsed:.2f}s"
    )
    for kind in ("completed", "timeout", "cancelled", "rejected"):
        print(f"  {kind:<10} {outcomes[kind]}")

    failures = []
    if any(t.is_alive() for t in threads):
        failures.append("client thread hung")
    if sum(outcomes.values()) != CLIENTS:
        failures.append(
            f"unaccounted requests: {sum(outcomes.values())}/{CLIENTS}"
        )
    if outcomes["completed"] == 0:
        failures.append("no request completed")
    if service.admission.running != 0 or service.admission.queue_depth != 0:
        failures.append(
            f"pool not drained: running={service.admission.running} "
            f"queued={service.admission.queue_depth}"
        )
    if service.provider._key_locks:
        failures.append("compile locks leaked")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all requests accounted for, pool drained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
