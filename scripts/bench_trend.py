#!/usr/bin/env python3
"""Append a benchmark run to the performance trajectory and print it.

``check_bench_regression.py`` answers "did this run regress against the
committed baseline?"; this script answers "where has performance been
heading?".  Each invocation reduces a ``--bench-json`` payload
(``BENCH_ci.json``) to one JSON line — per-(figure, engine) median
milliseconds and linq-normalized ratios plus run metadata — and appends
it to the trend file.  CI runs it on every push and uploads the file as
an artifact, so the trajectory accumulates without write access to the
repository.

The trend file is JSON-lines for the same reason the adaptive profile
store is: appends are atomic per line, partial lines from a killed run
never corrupt the history, and versioned records let the schema evolve.

Exit status: 0 on success (trend reporting must never block a merge),
non-zero only when the current payload itself is unreadable.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import sys
from collections import defaultdict
from pathlib import Path

#: bump when the record layout changes; readers skip unknown versions
TREND_VERSION = 1

BASELINE_ENGINE = "linq"

#: figures without a linq leg normalize against this engine instead —
#: fig07_delta's legs are "full"/"delta", and delta/full is the speedup
#: the trend should track
FALLBACK_BASELINE_ENGINE = "full"


def load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def reduce_payload(payload: dict) -> dict:
    """{"figure/engine": {"ms": median, "ratio": median-vs-baseline}}."""
    table: dict = defaultdict(dict)
    for cell in payload.get("cells", []):
        try:
            table[(cell["figure"], cell["engine"])][cell["selectivity"]] = (
                float(cell["ms"])
            )
        except (KeyError, TypeError, ValueError):
            continue
    medians = {}
    for (figure, engine), cells in sorted(table.items()):
        entry = {"ms": round(statistics.median(cells.values()), 4)}
        base_engine = BASELINE_ENGINE
        base = table.get((figure, base_engine))
        if not base:
            base_engine = FALLBACK_BASELINE_ENGINE
            base = table.get((figure, base_engine))
        if base and engine != base_engine:
            ratios = [
                ms / base[sel] for sel, ms in cells.items() if base.get(sel)
            ]
            if ratios:
                entry["ratio"] = round(statistics.median(ratios), 4)
        medians[f"{figure}/{engine}"] = entry
    return medians


def make_record(payload: dict, commit: str, label: str) -> dict:
    return {
        "v": TREND_VERSION,
        "utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "commit": commit,
        "label": label,
        "scale": payload.get("scale"),
        "medians": reduce_payload(payload),
    }


def load_trend(path: Path) -> list:
    """Prior records, skipping unreadable/foreign-version lines."""
    records = []
    if not path.exists():
        return records
    try:
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("v") == TREND_VERSION:
                records.append(record)
    except OSError as exc:
        print(f"warning: cannot read {path}: {exc}")
    return records


def print_trajectory(records: list, limit: int) -> None:
    """The last *limit* runs, one column per run, ratios where available."""
    window = records[-limit:]
    if not window:
        print("(trend is empty)")
        return
    keys = sorted({key for r in window for key in r.get("medians", {})})
    print(
        f"\nperformance trajectory (median ms; last {len(window)} run(s), "
        "oldest first)"
    )
    header = f"{'figure/engine':<36}" + "".join(
        f" {((r.get('commit') or '?')[:9]):>10}" for r in window
    )
    print(header)
    for key in keys:
        row = f"{key:<36}"
        for record in window:
            entry = record.get("medians", {}).get(key)
            row += f" {entry['ms']:>10.3f}" if entry else f" {'-':>10}"
        print(row)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_ci.json"),
        help="fresh bench payload to append (default: BENCH_ci.json)",
    )
    parser.add_argument(
        "--trend",
        type=Path,
        default=Path("benchmarks/trend.jsonl"),
        help="trajectory file to append to (default: benchmarks/trend.jsonl)",
    )
    parser.add_argument(
        "--commit",
        default=os.environ.get("GITHUB_SHA", ""),
        help="commit identifier for the record (default: $GITHUB_SHA)",
    )
    parser.add_argument(
        "--label",
        default=os.environ.get("GITHUB_REF_NAME", ""),
        help="free-form run label, e.g. the branch (default: $GITHUB_REF_NAME)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=8,
        help="runs shown in the printed trajectory (default: 8)",
    )
    args = parser.parse_args(argv)

    payload = load_payload(args.current)
    record = make_record(payload, args.commit, args.label)
    if not record["medians"]:
        sys.exit(f"error: {args.current} contains no benchmark cells")

    records = load_trend(args.trend)
    records.append(record)
    try:
        args.trend.parent.mkdir(parents=True, exist_ok=True)
        with args.trend.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"appended run {record['commit'] or '(no commit)'} to {args.trend}")
    except OSError as exc:
        # the trajectory is observability, not a gate: report and move on
        print(f"warning: cannot append to {args.trend}: {exc}")

    print_trajectory(records, args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
