#!/usr/bin/env python3
"""Gate CI on benchmark regressions.

Compares a fresh benchmark run (``BENCH_ci.json``, written by the report
sweeps via ``pytest --bench-json``) against the committed baseline
(``benchmarks/baseline.json``).

Raw wall-clock numbers are useless across heterogeneous CI runners, so the
default ``ratio`` mode normalizes every engine's time by the interpreted
``linq`` engine measured *in the same run* — the paper's own presentation
(speedup over LINQ-to-objects) and a machine-independent quantity.  For
each (figure, engine) the median ratio across the selectivity sweep is
compared; the job fails when the current median is more than ``tolerance``
(default 30%) worse than the baseline's.

``--mode absolute`` compares raw milliseconds instead, for same-machine
comparisons (e.g. a local before/after check).

Beyond execution time, the gate also covers **compile-time phases**: the
bench JSON carries the per-engine ``compile.<engine>.codegen_seconds`` /
``compile.<engine>.compile_seconds`` means (from the provider's metrics),
and the job fails when a phase's mean is more than ``--phase-tolerance``
(default 1.0, i.e. 2x — wall-clock across heterogeneous runners is noisy)
worse than the baseline's.

Exit status: 0 = no regression, non-zero = regression, coverage loss, or
unreadable input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from collections import defaultdict
from pathlib import Path

BASELINE_ENGINE = "linq"


def load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def load_cells(payload: dict, path: Path):
    """Return {(figure, engine): {selectivity: ms}} from a bench payload."""
    table: dict = defaultdict(dict)
    for cell in payload.get("cells", []):
        table[(cell["figure"], cell["engine"])][cell["selectivity"]] = cell["ms"]
    if not table:
        sys.exit(f"error: {path} contains no benchmark cells")
    return dict(table)


def check_phases(baseline: dict, current: dict, tolerance: float):
    """Compare compile-phase means; returns (regressions, missing)."""
    base_phases = baseline.get("phases") or {}
    cur_phases = current.get("phases") or {}
    regressions = []
    missing = []
    if not base_phases:
        return regressions, missing
    print(f"\ncompile-phase check (tolerance={tolerance:.0%})")
    print(f"{'phase':<36} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name in sorted(base_phases):
        ref = base_phases[name].get("mean_ms")
        entry = cur_phases.get(name)
        if not ref:
            continue
        if entry is None or not entry.get("count"):
            missing.append(name)
            print(f"{name:<36} {ref:>10.3f} {'MISSING':>10}")
            continue
        cur = entry["mean_ms"]
        delta = cur / ref - 1.0
        flag = ""
        if delta > tolerance:
            regressions.append((name, ref, cur, delta))
            flag = "  <-- REGRESSION"
        print(f"{name:<36} {ref:>10.3f} {cur:>10.3f} {delta:>+7.1%}{flag}")
    print("(values are mean ms per compile, codegen and whole-compile phases)")
    return regressions, missing


def median_metric(table, figure: str, engine: str, mode: str):
    """Median ms (absolute) or median ms/linq-ms ratio across the sweep."""
    cells = table.get((figure, engine))
    if not cells:
        return None
    if mode == "absolute":
        return statistics.median(cells.values())
    base = table.get((figure, BASELINE_ENGINE))
    if not base:
        return None
    ratios = [ms / base[sel] for sel, ms in cells.items() if base.get(sel)]
    return statistics.median(ratios) if ratios else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baseline.json"),
        help="committed reference run (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_ci.json"),
        help="fresh run to validate (default: BENCH_ci.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default: 0.30)",
    )
    parser.add_argument(
        "--mode",
        choices=("ratio", "absolute"),
        default="ratio",
        help="ratio: normalize by the linq engine within each run "
        "(machine-independent, default); absolute: raw milliseconds",
    )
    parser.add_argument(
        "--phase-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional slowdown of compile-phase means before "
        "failing (default: 1.0, i.e. 2x — absolute wall times are noisy)",
    )
    args = parser.parse_args(argv)

    baseline_payload = load_payload(args.baseline)
    current_payload = load_payload(args.current)
    baseline = load_cells(baseline_payload, args.baseline)
    current = load_cells(current_payload, args.current)

    unit = "x linq" if args.mode == "ratio" else "ms"
    regressions = []
    missing = []
    print(
        f"benchmark regression check (mode={args.mode}, "
        f"tolerance={args.tolerance:.0%})"
    )
    print(
        f"{'figure':<20} {'engine':<20} {'baseline':>10} {'current':>10} "
        f"{'delta':>8}"
    )
    for figure, engine in sorted(baseline):
        if args.mode == "ratio" and engine == BASELINE_ENGINE:
            continue  # ratio of linq to itself is 1.0 by construction
        ref = median_metric(baseline, figure, engine, args.mode)
        cur = median_metric(current, figure, engine, args.mode)
        if ref is None:
            continue
        if cur is None:
            missing.append((figure, engine))
            print(f"{figure:<20} {engine:<20} {ref:>10.3f} {'MISSING':>10}")
            continue
        delta = cur / ref - 1.0 if ref else 0.0
        flag = ""
        if delta > args.tolerance:
            regressions.append((figure, engine, ref, cur, delta))
            flag = "  <-- REGRESSION"
        print(
            f"{figure:<20} {engine:<20} {ref:>10.3f} {cur:>10.3f} {delta:>+7.1%}"
            f"{flag}"
        )
    print(f"(values are median {unit} across the selectivity sweep)")

    new_cells = sorted(set(current) - set(baseline))
    for figure, engine in new_cells:
        print(f"note: {figure}/{engine} has no baseline (new engine?) — skipped")

    phase_regressions, phase_missing = check_phases(
        baseline_payload, current_payload, args.phase_tolerance
    )

    if missing:
        print(f"FAIL: {len(missing)} baseline cell(s) missing from the current run")
        return 1
    if regressions:
        print(
            f"FAIL: {len(regressions)} engine(s) regressed "
            f"beyond {args.tolerance:.0%}"
        )
        return 1
    if phase_missing:
        print(
            f"FAIL: {len(phase_missing)} compile phase(s) missing from the "
            f"current run"
        )
        return 1
    if phase_regressions:
        print(
            f"FAIL: {len(phase_regressions)} compile phase(s) regressed "
            f"beyond {args.phase_tolerance:.0%}"
        )
        return 1
    print("OK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
