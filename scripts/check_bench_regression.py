#!/usr/bin/env python3
"""Gate CI on benchmark regressions.

Compares a fresh benchmark run (``BENCH_ci.json``, written by the report
sweeps via ``pytest --bench-json``) against the committed baseline
(``benchmarks/baseline.json``).

Raw wall-clock numbers are useless across heterogeneous CI runners, so the
default ``ratio`` mode normalizes every engine's time by the interpreted
``linq`` engine measured *in the same run* — the paper's own presentation
(speedup over LINQ-to-objects) and a machine-independent quantity.  For
each (figure, engine) the median ratio across the selectivity sweep is
compared; the job fails when the current median is more than ``tolerance``
(default 30%) worse than the baseline's.

``--mode absolute`` compares raw milliseconds instead, for same-machine
comparisons (e.g. a local before/after check).

Beyond execution time, the gate also covers **compile-time phases**: the
bench JSON carries the per-engine ``compile.<engine>.codegen_seconds`` /
``compile.<engine>.compile_seconds`` means (from the provider's metrics),
and the job fails when a phase's mean is more than ``--phase-tolerance``
(default 1.0, i.e. 2x — wall-clock across heterogeneous runners is noisy)
worse than the baseline's.  Phase keys missing from either payload (an
older baseline, or a sweep that didn't exercise an engine) only warn:
cross-version payloads must not crash or block the gate.

**A/B mode** (``--ab-static`` + ``--ab-adaptive``): instead of gating
against the committed baseline, compare two payloads produced back to
back on the *same* runner — the smoke suite run with ``REPRO_ADAPTIVE=0``
and again with ``REPRO_ADAPTIVE=1``.  Same machine, same data — but the
legs are still minutes apart, and shared runners drift that fast, so each
figure's cells are first corrected by that figure's ``linq`` drift: the
interpreted engine never consults the adaptive path, so any delta on its
cells measures runner speed, not adaptivity.  After correction the job
fails when the adaptive median is more than ``--ab-tolerance`` (default
10%) slower than the static median on any (figure, engine) cell —
provided the corrected absolute excess also clears ``--ab-floor-ms``.
Requiring both keeps the gate strict where it is trustworthy (a 100 ms
sweep 10% slower is a real regression) and immune where it is not (a
1.5 ms sweep needs to lose more than a millisecond before the delta
means anything at smoke scale).

Exit status: 0 = no regression, non-zero = regression, coverage loss, or
unreadable input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from collections import defaultdict
from pathlib import Path

BASELINE_ENGINE = "linq"


def load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def load_cells(payload: dict, path: Path):
    """Return {(figure, engine): {selectivity: ms}} from a bench payload.

    Cells missing any of the required keys (older bench JSON, or a sweep
    that died mid-write) are skipped with a warning rather than crashing
    the gate — the coverage checks downstream still catch anything the
    skips leave unmeasured.
    """
    table: dict = defaultdict(dict)
    skipped = 0
    for cell in payload.get("cells", []):
        try:
            table[(cell["figure"], cell["engine"])][cell["selectivity"]] = (
                cell["ms"]
            )
        except (KeyError, TypeError):
            skipped += 1
    if skipped:
        print(
            f"warning: {path}: skipped {skipped} malformed cell(s) "
            "(missing figure/engine/selectivity/ms)"
        )
    if not table:
        sys.exit(f"error: {path} contains no benchmark cells")
    return dict(table)


def check_phases(baseline: dict, current: dict, tolerance: float):
    """Compare compile-phase means; returns (regressions, missing)."""
    base_phases = baseline.get("phases") or {}
    cur_phases = current.get("phases") or {}
    regressions = []
    missing = []
    if not base_phases:
        return regressions, missing
    print(f"\ncompile-phase check (tolerance={tolerance:.0%})")
    print(f"{'phase':<36} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name in sorted(base_phases):
        base_entry = base_phases[name]
        if not isinstance(base_entry, dict):
            print(f"warning: baseline phase {name!r} is malformed — skipped")
            continue
        ref = base_entry.get("mean_ms")
        entry = cur_phases.get(name)
        if not ref:
            # a baseline entry without mean_ms can't anchor a comparison
            print(f"warning: baseline phase {name!r} has no mean_ms — skipped")
            continue
        if (
            not isinstance(entry, dict)
            or not entry.get("count")
            or entry.get("mean_ms") is None
        ):
            missing.append(name)
            print(f"{name:<36} {ref:>10.3f} {'MISSING':>10}")
            continue
        cur = entry["mean_ms"]
        delta = cur / ref - 1.0
        flag = ""
        if delta > tolerance:
            regressions.append((name, ref, cur, delta))
            flag = "  <-- REGRESSION"
        print(f"{name:<36} {ref:>10.3f} {cur:>10.3f} {delta:>+7.1%}{flag}")
    print("(values are mean ms per compile, codegen and whole-compile phases)")
    return regressions, missing


def check_elision(current: dict, tolerance: float):
    """Within-run ablation gate: guard elision must not cost time.

    Compares the ``fig07_elision_on`` / ``fig07_elision_off`` sweeps of
    the *current* run against each other (same machine, same data, back
    to back), so raw milliseconds are a fair unit here.  A codegen engine
    whose elision-on median is more than *tolerance* slower than its
    elision-off median fails the gate — elision exists to remove work,
    so costing time means the proofs (or the emission) regressed.  The
    interpreted ``linq`` engine never sees generated guards and is
    skipped.  Runs without the ablation cells (an older sweep config)
    only warn.
    """
    regressions = []
    engines = sorted(
        engine
        for figure, engine in current
        if figure == "fig07_elision_on" and engine != BASELINE_ENGINE
    )
    if not engines:
        print(
            "warning: no fig07_elision_on cells in the current run — "
            "guard-elision ablation gate skipped"
        )
        return regressions
    print(f"\nguard-elision ablation check (tolerance={tolerance:.0%})")
    print(f"{'engine':<20} {'off (ms)':>10} {'on (ms)':>10} {'delta':>8}")
    for engine in engines:
        on = median_metric(current, "fig07_elision_on", engine, "absolute")
        off = median_metric(current, "fig07_elision_off", engine, "absolute")
        if on is None or not off:
            print(f"{engine:<20} {'MISSING':>10}")
            continue
        delta = on / off - 1.0
        flag = ""
        if delta > tolerance:
            regressions.append((engine, off, on, delta))
            flag = "  <-- REGRESSION"
        print(f"{engine:<20} {off:>10.3f} {on:>10.3f} {delta:>+7.1%}{flag}")
    print("(median ms across the ablation sweep, on vs off in the same run)")
    return regressions


def check_delta(current: dict, min_speedup: float):
    """Within-run delta-recycling gate: incremental re-runs must win.

    The ``fig07_delta`` sweep times the same re-execution twice in the
    *current* run — ``full`` (the grown relation, warm compiled code) and
    ``delta`` (kernels over only the appended window, merged with the
    cached partial state) — so raw milliseconds are a fair unit.  Each
    append fraction's full/delta speedup must clear *min_speedup*; the
    floor is deliberately conservative because at CI smoke scale the
    delta leg is mostly fixed recycler overhead (locally, at
    ``REPRO_TPCH_SCALE=0.1``, the observed speedups are an order of
    magnitude higher).  Runs without the cells (an older sweep config)
    only warn.
    """
    regressions = []
    full_cells = current.get(("fig07_delta", "full"))
    delta_cells = current.get(("fig07_delta", "delta"))
    if not full_cells or not delta_cells:
        print(
            "warning: no fig07_delta cells in the current run — "
            "delta-recycling gate skipped"
        )
        return regressions
    print(f"\ndelta-recycling check (min speedup={min_speedup:.1f}x)")
    print(f"{'fraction':<10} {'full (ms)':>10} {'delta (ms)':>10} {'speedup':>8}")
    for fraction in sorted(delta_cells):
        full = full_cells.get(fraction)
        delta = delta_cells[fraction]
        if not full or not delta:
            print(f"{fraction:<10} {'MISSING':>10}")
            continue
        speedup = full / delta
        flag = ""
        if speedup < min_speedup:
            regressions.append((fraction, full, delta, speedup))
            flag = "  <-- REGRESSION"
        print(f"{fraction:<10} {full:>10.3f} {delta:>10.3f} {speedup:>7.1f}x{flag}")
    print("(full vs delta re-execution of the same query in the same run)")
    return regressions


def check_dist(current: dict, payload: dict, min_speedup: float):
    """Within-run distributed gate: worker processes must beat threads.

    The ``fig07_dist`` sweep times the same aggregation twice in the
    *current* run — ``thread4`` (4-way morsel threads, GIL-bound on the
    managed sections) and ``dist4`` (4 worker processes over shards,
    pool and residency warm) — so raw milliseconds are a fair unit.
    Each selectivity's thread/dist speedup must clear *min_speedup*.
    The comparison is only meaningful where process parallelism *can*
    win: below SF 0.05 the shards are too small to amortize IPC, and on
    a single-core runner the processes timeshare one core — both cases
    skip with a warning instead of gating.  Runs without the cells (an
    older sweep config) also only warn.
    """
    regressions = []
    thread_cells = current.get(("fig07_dist", "thread4"))
    dist_cells = current.get(("fig07_dist", "dist4"))
    if not thread_cells or not dist_cells:
        print(
            "warning: no fig07_dist cells in the current run — "
            "distributed gate skipped"
        )
        return regressions
    scale = payload.get("scale") or 0.0
    cpus = payload.get("cpus") or 1
    if scale < 0.05 or cpus < 2:
        print(
            f"warning: fig07_dist measured at scale={scale} on {cpus} "
            f"cpu(s) — process parallelism cannot win here; distributed "
            "gate skipped (needs scale >= 0.05 and >= 2 cpus)"
        )
        return regressions
    print(f"\ndistributed-execution check (min speedup={min_speedup:.1f}x)")
    print(
        f"{'selectivity':<12} {'thread4 (ms)':>12} {'dist4 (ms)':>12} "
        f"{'speedup':>8}"
    )
    for selectivity in sorted(dist_cells):
        thread = thread_cells.get(selectivity)
        dist = dist_cells[selectivity]
        if not thread or not dist:
            print(f"{selectivity:<12} {'MISSING':>12}")
            continue
        speedup = thread / dist
        flag = ""
        if speedup < min_speedup:
            regressions.append((selectivity, thread, dist, speedup))
            flag = "  <-- REGRESSION"
        print(
            f"{selectivity:<12} {thread:>12.3f} {dist:>12.3f} "
            f"{speedup:>7.2f}x{flag}"
        )
    print("(thread tier vs worker processes on the same query in the same run)")
    return regressions


def ab_drift(static, adaptive, figure: str):
    """Runner drift between the legs, measured on *figure*'s linq cells.

    The interpreted engine never consults the adaptive path, so its
    adaptive/static median ratio is a pure runner-speed signal for the
    stretch of the run when that figure's sweep executed.  Figures
    without a linq cell in both legs get 1.0 (no correction).
    """
    ref = median_metric(static, figure, BASELINE_ENGINE, "absolute")
    cur = median_metric(adaptive, figure, BASELINE_ENGINE, "absolute")
    if not ref or not cur:
        return 1.0
    return cur / ref


def check_ab(static, adaptive, tolerance: float, floor_ms: float):
    """Adaptive-vs-static gate within one runner; returns (regs, missing).

    The comparison is the median absolute milliseconds per (figure,
    engine) across the selectivity sweep, like the baseline gate — but
    the legs run minutes apart and shared runners drift that fast, so
    every adaptive median is first divided by the figure's linq drift
    (see :func:`ab_drift`) to express it in static-leg time units.  The
    linq cells themselves anchor the correction and are reported, never
    gated: by construction they cannot regress from adaptivity.  After
    correction the adaptive run must stay within *tolerance* of the
    static run everywhere: the point of the profile store is to win on
    repeated queries without ever taxing one-shot queries more than the
    decision overhead budget.
    """
    regressions = []
    missing = []
    print(
        f"adaptive-vs-static A/B check (tolerance={tolerance:.0%}, "
        f"noise floor={floor_ms}ms, linq drift correction per figure)"
    )
    print(
        f"{'figure':<20} {'engine':<20} {'static':>10} {'adaptive':>10} "
        f"{'delta':>8}"
    )
    drifts = {}
    for figure, engine in sorted(static):
        if figure == "fig07_delta":
            # within-run full-vs-delta cells; no linq drift anchor and
            # already gated by check_delta in the baseline job
            continue
        if figure == "fig07_dist":
            # within-run thread-vs-process cells; no linq drift anchor
            # and already gated by check_dist in the baseline job
            continue
        if figure.startswith("fig07_elision"):
            # the ablation cells duplicate the fig07_aggregation shapes at
            # a few ms per single timed drain — pure noise between legs;
            # adaptivity on those shapes is already gated by the
            # fig07_aggregation cells and elision itself is gated
            # within-run by check_elision in the baseline job
            continue
        ref = median_metric(static, figure, engine, "absolute")
        cur = median_metric(adaptive, figure, engine, "absolute")
        if ref is None:
            continue
        if cur is None:
            missing.append((figure, engine))
            print(f"{figure:<20} {engine:<20} {ref:>10.3f} {'MISSING':>10}")
            continue
        if figure not in drifts:
            drifts[figure] = ab_drift(static, adaptive, figure)
        if engine == BASELINE_ENGINE:
            print(
                f"{figure:<20} {engine:<20} {ref:>10.3f} {cur:>10.3f} "
                f"{drifts[figure] - 1.0:>+7.1%}  (drift anchor)"
            )
            continue
        corrected = cur / drifts[figure]
        delta = corrected / ref - 1.0 if ref else 0.0
        flag = ""
        if delta > tolerance:
            if corrected - ref > floor_ms:
                regressions.append((figure, engine, ref, corrected, delta))
                flag = "  <-- REGRESSION"
            else:
                flag = "  (within noise floor)"
        print(
            f"{figure:<20} {engine:<20} {ref:>10.3f} {corrected:>10.3f} "
            f"{delta:>+7.1%}{flag}"
        )
    print(
        "(median ms across the sweep; adaptive medians drift-corrected by "
        "the figure's linq ratio)"
    )
    extra = sorted(set(adaptive) - set(static))
    for figure, engine in extra:
        print(f"note: {figure}/{engine} only in the adaptive run — skipped")
    return regressions, missing


def median_metric(table, figure: str, engine: str, mode: str):
    """Median ms (absolute) or median ms/linq-ms ratio across the sweep."""
    cells = table.get((figure, engine))
    if not cells:
        return None
    if mode == "absolute":
        return statistics.median(cells.values())
    base = table.get((figure, BASELINE_ENGINE))
    if not base:
        return None
    ratios = [ms / base[sel] for sel, ms in cells.items() if base.get(sel)]
    return statistics.median(ratios) if ratios else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baseline.json"),
        help="committed reference run (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_ci.json"),
        help="fresh run to validate (default: BENCH_ci.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default: 0.30)",
    )
    parser.add_argument(
        "--mode",
        choices=("ratio", "absolute"),
        default="ratio",
        help="ratio: normalize by the linq engine within each run "
        "(machine-independent, default); absolute: raw milliseconds",
    )
    parser.add_argument(
        "--phase-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional slowdown of compile-phase means before "
        "failing (default: 1.0, i.e. 2x — absolute wall times are noisy)",
    )
    parser.add_argument(
        "--elision-tolerance",
        type=float,
        default=0.50,
        help="allowed fractional slowdown of guard-elision-on vs -off "
        "within the current run before failing (default: 0.50 — the "
        "sweeps are short, so the within-run comparison is still noisy)",
    )
    parser.add_argument(
        "--delta-min-speedup",
        type=float,
        default=2.0,
        help="minimum full/delta speedup the fig07_delta sweep must show "
        "within the current run (default: 2.0 — conservative because at "
        "smoke scale the delta leg is mostly fixed recycler overhead)",
    )
    parser.add_argument(
        "--dist-min-speedup",
        type=float,
        default=1.5,
        help="minimum thread/dist speedup the fig07_dist sweep must show "
        "within the current run (default: 1.5; skipped automatically "
        "below scale 0.05 or on single-core runners)",
    )
    parser.add_argument(
        "--dist-current",
        type=Path,
        default=None,
        help="distributed-only mode: run just the within-run fig07_dist "
        "gate on this payload (no committed baseline needed — the "
        "thread leg in the same run is the reference)",
    )
    parser.add_argument(
        "--ab-static",
        type=Path,
        default=None,
        help="A/B mode: payload from the REPRO_ADAPTIVE=0 run",
    )
    parser.add_argument(
        "--ab-adaptive",
        type=Path,
        default=None,
        help="A/B mode: payload from the REPRO_ADAPTIVE=1 run",
    )
    parser.add_argument(
        "--ab-tolerance",
        type=float,
        default=0.10,
        help="A/B mode: allowed fractional slowdown of adaptive vs static "
        "within the same run (default: 0.10)",
    )
    parser.add_argument(
        "--ab-floor-ms",
        type=float,
        default=1.0,
        help="A/B mode: a cell only fails when its drift-corrected excess "
        "over the static median also clears this many ms — sub-millisecond "
        "deltas at smoke scale are timer noise (default: 1.0)",
    )
    args = parser.parse_args(argv)

    if (args.ab_static is None) != (args.ab_adaptive is None):
        parser.error("--ab-static and --ab-adaptive must be given together")
    if args.dist_current is not None:
        payload = load_payload(args.dist_current)
        table = load_cells(payload, args.dist_current)
        dist_regressions = check_dist(table, payload, args.dist_min_speedup)
        if dist_regressions:
            print(
                f"FAIL: distributed execution beats the thread tier by less "
                f"than {args.dist_min_speedup:.1f}x on "
                f"{len(dist_regressions)} selectivity(ies)"
            )
            return 1
        print("OK: distributed gate passed")
        return 0
    if args.ab_static is not None:
        static = load_cells(load_payload(args.ab_static), args.ab_static)
        adaptive = load_cells(load_payload(args.ab_adaptive), args.ab_adaptive)
        ab_regressions, ab_missing = check_ab(
            static, adaptive, args.ab_tolerance, args.ab_floor_ms
        )
        if ab_missing:
            print(
                f"FAIL: {len(ab_missing)} static cell(s) missing from the "
                "adaptive run"
            )
            return 1
        if ab_regressions:
            print(
                f"FAIL: adaptive execution is >{args.ab_tolerance:.0%} slower "
                f"than static on {len(ab_regressions)} cell(s)"
            )
            return 1
        print("OK: adaptive execution within tolerance of static")
        return 0

    baseline_payload = load_payload(args.baseline)
    current_payload = load_payload(args.current)
    baseline = load_cells(baseline_payload, args.baseline)
    current = load_cells(current_payload, args.current)

    unit = "x linq" if args.mode == "ratio" else "ms"
    regressions = []
    missing = []
    print(
        f"benchmark regression check (mode={args.mode}, "
        f"tolerance={args.tolerance:.0%})"
    )
    print(
        f"{'figure':<20} {'engine':<20} {'baseline':>10} {'current':>10} "
        f"{'delta':>8}"
    )
    for figure, engine in sorted(baseline):
        if args.mode == "ratio" and engine == BASELINE_ENGINE:
            continue  # ratio of linq to itself is 1.0 by construction
        if figure.startswith("fig07_elision"):
            # the ablation cells are sub-2ms at smoke scale, so their
            # cross-run ratios are runner-load noise; what matters —
            # elision never costing time — is gated within the current
            # run by check_elision below, and overall engine speed is
            # already anchored by the fig07_aggregation sweep
            continue
        if figure == "fig07_delta":
            # full-vs-delta is a within-run comparison (check_delta
            # below); its legs have no linq normalizer, so cross-run
            # ratios are undefined and absolute wall-clock is runner noise
            continue
        if figure == "fig07_dist":
            # thread-vs-process is likewise within-run (check_dist
            # below): no linq normalizer, and the speedup depends on the
            # runner's core count, so cross-run comparison is undefined
            continue
        ref = median_metric(baseline, figure, engine, args.mode)
        cur = median_metric(current, figure, engine, args.mode)
        if ref is None:
            continue
        if cur is None:
            missing.append((figure, engine))
            print(f"{figure:<20} {engine:<20} {ref:>10.3f} {'MISSING':>10}")
            continue
        delta = cur / ref - 1.0 if ref else 0.0
        flag = ""
        if delta > args.tolerance:
            regressions.append((figure, engine, ref, cur, delta))
            flag = "  <-- REGRESSION"
        print(
            f"{figure:<20} {engine:<20} {ref:>10.3f} {cur:>10.3f} {delta:>+7.1%}"
            f"{flag}"
        )
    print(f"(values are median {unit} across the selectivity sweep)")

    new_cells = sorted(set(current) - set(baseline))
    for figure, engine in new_cells:
        print(f"note: {figure}/{engine} has no baseline (new engine?) — skipped")

    phase_regressions, phase_missing = check_phases(
        baseline_payload, current_payload, args.phase_tolerance
    )
    elision_regressions = check_elision(current, args.elision_tolerance)
    delta_regressions = check_delta(current, args.delta_min_speedup)
    dist_regressions = check_dist(
        current, current_payload, args.dist_min_speedup
    )

    if missing:
        print(f"FAIL: {len(missing)} baseline cell(s) missing from the current run")
        return 1
    if regressions:
        print(
            f"FAIL: {len(regressions)} engine(s) regressed "
            f"beyond {args.tolerance:.0%}"
        )
        return 1
    if phase_missing:
        # a benchmark-cell gap is coverage loss and fails above; a phase
        # gap usually means the run (or baseline) predates a phase key —
        # warn so the sweep config gets fixed, but don't block merges
        print(
            f"warning: {len(phase_missing)} compile phase(s) missing from "
            f"the current run: {', '.join(phase_missing)}"
        )
    if phase_regressions:
        print(
            f"FAIL: {len(phase_regressions)} compile phase(s) regressed "
            f"beyond {args.phase_tolerance:.0%}"
        )
        return 1
    if elision_regressions:
        print(
            f"FAIL: guard elision costs time on {len(elision_regressions)} "
            f"engine(s) (beyond {args.elision_tolerance:.0%})"
        )
        return 1
    if delta_regressions:
        print(
            f"FAIL: delta recycling beats full re-execution by less than "
            f"{args.delta_min_speedup:.1f}x on {len(delta_regressions)} "
            f"append fraction(s)"
        )
        return 1
    if dist_regressions:
        print(
            f"FAIL: distributed execution beats the thread tier by less "
            f"than {args.dist_min_speedup:.1f}x on {len(dist_regressions)} "
            f"selectivity(ies)"
        )
        return 1
    print("OK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
