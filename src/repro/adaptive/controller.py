"""The adaptive controller: one object tying the feedback loop together.

The provider asks it to *decide* (engine, workers, morsel size) before a
query runs and to *observe* (elapsed, cardinality) after; the admission
controller *notes degradations* so the chooser learns to request less
parallelism while the service is saturated; the parallel runtime asks it
for a *redecider* that adjusts the morsel size mid-flight when observed
cardinality diverges from the estimate by more than 4x.

Everything is fail-open: a controller that cannot load its store, derive
an estimate, or persist an observation silently behaves like the static
engine and increments a metric — adaptivity is an optimization layer,
never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Any, Callable, Dict, Optional, Sequence

from ..observability.metrics import METRICS, MetricsRegistry
from .chooser import AdaptiveChooser, Decision
from .cost import RowEstimate, redecide_morsel
from .store import ProfileStore, store_path_from_env

__all__ = [
    "AdaptiveController",
    "adaptive_enabled_from_env",
    "default_controller",
    "set_default_controller",
]

#: EWMA weight for admission-degradation feedback
_LOAD_ALPHA = 0.4

#: per-decide relaxation of the load factor back toward 1.0 (idle
#: services forget past saturation within a few dozen queries)
_LOAD_RELAX = 0.05

#: bound on the per-controller estimate memo
_MAX_ESTIMATES = 4096


def adaptive_enabled_from_env() -> bool:
    """True when ``REPRO_ADAPTIVE`` asks for adaptive execution."""
    return os.environ.get("REPRO_ADAPTIVE", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


class AdaptiveController:
    """Profile store + chooser + load feedback, shared across queries."""

    def __init__(
        self,
        store: Optional[ProfileStore] = None,
        chooser: Optional[AdaptiveChooser] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._metrics = metrics if metrics is not None else METRICS
        try:
            self.store = (
                store
                if store is not None
                else ProfileStore(store_path_from_env(), metrics=self._metrics)
            )
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._metrics.counter("adaptive.store_errors").add()
            self.store = ProfileStore(None, metrics=self._metrics)
        self.chooser = (
            chooser
            if chooser is not None
            else AdaptiveChooser(self.store, metrics=self._metrics)
        )
        self._lock = threading.Lock()
        self._estimates: Dict[str, Optional[RowEstimate]] = {}
        #: EWMA of granted/requested parallelism under admission control;
        #: 1.0 = unloaded, seeded from the store's persisted degradations
        ratios = self.store.degrade_ratios()
        self._load_factor = (
            sum(ratios[-4:]) / len(ratios[-4:]) if ratios else 1.0
        )

    # -- profile keys ------------------------------------------------------------

    @staticmethod
    def profile_key(raw_key: Any) -> str:
        """Stable short digest of a provider cache key.

        The provider's keys are nested tuples of primitives whose ``repr``
        is process-independent, so the digest identifies one query shape
        across processes and store generations.
        """
        return hashlib.sha256(repr(raw_key).encode("utf-8")).hexdigest()[:20]

    # -- the decision ------------------------------------------------------------

    def estimated_rows(
        self, key: str, derive: Callable[[], RowEstimate]
    ) -> Optional[RowEstimate]:
        """Memoized cardinality estimate for one profile key (fail-open)."""
        with self._lock:
            if key in self._estimates:
                return self._estimates[key]
        try:
            estimate = derive()
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._metrics.counter("adaptive.errors").add()
            estimate = None
        with self._lock:
            if len(self._estimates) >= _MAX_ESTIMATES:
                self._estimates.clear()
            self._estimates[key] = estimate
        return estimate

    def decide(
        self,
        key: str,
        requested_engine: str,
        candidates: Sequence[str],
        estimate: Optional[RowEstimate],
        default_morsel: int,
        explore: bool = True,
    ) -> Decision:
        """Pick a configuration for one execution (never raises)."""
        with self._lock:
            # saturation memory decays: each decision relaxes toward 1.0
            self._load_factor = min(
                1.0, self._load_factor + _LOAD_RELAX * (1.0 - self._load_factor) + 0.0
            )
            load = self._load_factor
        return self.chooser.decide(
            key,
            requested_engine,
            candidates,
            estimate,
            default_morsel,
            load_factor=load,
            explore=explore,
        )

    def peek(
        self,
        key: str,
        requested_engine: str,
        candidates: Sequence[str],
        estimate: Optional[RowEstimate],
        default_morsel: int,
    ) -> Decision:
        """The decision EXPLAIN would render: no exploration, no decay."""
        with self._lock:
            load = self._load_factor
        return self.chooser.decide(
            key,
            requested_engine,
            candidates,
            estimate,
            default_morsel,
            load_factor=load,
            explore=False,
        )

    # -- feedback ----------------------------------------------------------------

    def observe(
        self,
        key: str,
        decision: Decision,
        engine: str,
        workers: int,
        morsel: int,
        ms: float,
        rows: Optional[int],
        estimate: Optional[RowEstimate],
        degraded: bool = False,
        distributed: int = 0,
    ) -> None:
        """Feed one finished execution back into the profile (fail-open)."""
        try:
            self.store.record_run(
                key,
                engine=engine,
                workers=workers,
                morsel=morsel,
                ms=ms,
                rows=rows,
                estimated=estimate.output_rows if estimate else None,
                degraded=degraded,
                distributed=distributed,
            )
            self._metrics.counter("adaptive.observations").add()
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._metrics.counter("adaptive.store_errors").add()

    def note_degradation(self, requested: int, granted: int) -> None:
        """Admission control shrank a parallelism grant — learn from it."""
        try:
            requested = max(1, int(requested))
            granted = max(1, int(granted))
            ratio = granted / requested
            with self._lock:
                self._load_factor += _LOAD_ALPHA * (ratio - self._load_factor)
            self.store.record_degrade(requested, granted)
            self._metrics.counter("adaptive.degradations").add()
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._metrics.counter("adaptive.errors").add()

    @property
    def load_factor(self) -> float:
        with self._lock:
            return self._load_factor

    # -- mid-flight re-decision ---------------------------------------------------

    def redecider(
        self, estimate: Optional[RowEstimate], total_rows: Optional[int]
    ) -> Optional[Callable[[int, Optional[int], int, int, int], Optional[int]]]:
        """A morsel-size re-decision hook for one parallel execution.

        The parallel runtime calls the hook after the first morsel (a
        pipeline-breaker boundary: its partial result has materialized)
        with the observed input/output cardinalities; when the observed
        selectivity diverges from the estimate by more than 4x the hook
        returns a re-decided morsel size for the remaining morsels.
        """
        if (
            estimate is None
            or not total_rows
            or estimate.driver_rows <= 0
            or estimate.output_rows <= 0
        ):
            return None
        estimated_selectivity = estimate.output_rows / max(
            estimate.driver_rows, 1
        )
        metrics = self._metrics

        def redecide(
            rows_in: int,
            rows_out: Optional[int],
            current_morsel: int,
            remaining_rows: int,
            workers: int,
        ) -> Optional[int]:
            if rows_out is None or rows_in <= 0:
                return None
            try:
                new_size = redecide_morsel(
                    current_morsel,
                    observed_selectivity=rows_out / rows_in,
                    estimated_selectivity=estimated_selectivity,
                    remaining_rows=remaining_rows,
                    workers=workers,
                )
            except Exception:  # noqa: BLE001 - fail-open by contract
                metrics.counter("adaptive.errors").add()
                return None
            if new_size is not None:
                metrics.counter("adaptive.redecisions").add()
            return new_size

        return redecide


_DEFAULT_CONTROLLER: Optional[AdaptiveController] = None
_DEFAULT_LOCK = threading.Lock()


def default_controller(force: bool = False) -> Optional[AdaptiveController]:
    """The process-wide controller when ``REPRO_ADAPTIVE`` is on, else None.

    Created on first use; shared by the default provider and the
    admission controller so degradation feedback and query profiles land
    in one store.  ``force=True`` (``using(adaptive=True)``) creates it
    even when the environment switch is off.
    """
    if not force and not adaptive_enabled_from_env():
        return None
    global _DEFAULT_CONTROLLER
    if _DEFAULT_CONTROLLER is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_CONTROLLER is None:
                _DEFAULT_CONTROLLER = AdaptiveController()
    return _DEFAULT_CONTROLLER


def set_default_controller(
    controller: Optional[AdaptiveController],
) -> Optional[AdaptiveController]:
    """Swap the process-wide controller (tests); returns the previous one."""
    global _DEFAULT_CONTROLLER
    with _DEFAULT_LOCK:
        previous = _DEFAULT_CONTROLLER
        _DEFAULT_CONTROLLER = controller
    return previous
