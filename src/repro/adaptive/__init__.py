"""Adaptive self-tuning execution (profile store + chooser + controller).

The package closes the loop the paper leaves open: instead of one fixed
generated code shape per query, the engine records how each (engine,
workers, morsel size) configuration actually performed — persistently,
keyed by the query's structural cache key — and consults those profiles
on the next run.  See DESIGN.md §14 for the decision flow.
"""

from .chooser import AdaptiveChooser, Decision, epsilon_from_env, static_fallback
from .controller import (
    AdaptiveController,
    adaptive_enabled_from_env,
    default_controller,
    set_default_controller,
)
from .cost import RowEstimate, estimate_plan_rows, redecide_morsel, seed_configuration
from .store import SCHEMA_VERSION, ConfigStats, ProfileStore, QueryProfile, store_path_from_env

__all__ = [
    "AdaptiveChooser",
    "AdaptiveController",
    "ConfigStats",
    "Decision",
    "ProfileStore",
    "QueryProfile",
    "RowEstimate",
    "SCHEMA_VERSION",
    "adaptive_enabled_from_env",
    "default_controller",
    "epsilon_from_env",
    "estimate_plan_rows",
    "redecide_morsel",
    "seed_configuration",
    "set_default_controller",
    "static_fallback",
    "store_path_from_env",
]
