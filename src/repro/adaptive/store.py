"""The persistent profile store — the adaptive loop's memory.

Every adaptive execution appends one observation to a JSON-lines file:
which query (by profile key), which configuration ran (engine, workers,
morsel size), how long it took, and what cardinality came out versus what
the optimizer estimated.  On load the records aggregate into per-key
:class:`QueryProfile` objects the chooser consults; the raw lines stay on
disk so profiles survive the process and accumulate across runs.

Design constraints, in order:

1. **Fail-open.**  A missing file, a truncated line, a permission error,
   a schema-version skew — none of these may ever surface as a query
   error.  Every disk interaction is wrapped; failures increment
   ``adaptive.store_errors`` (or ``adaptive.store_skew`` for version
   mismatches) and degrade to the in-memory profile, which itself
   degrades to the static defaults.
2. **Thread safety.**  One lock serializes the in-memory aggregates and
   the append handle; records are written as single ``write()`` calls of
   one full line, so concurrent writers never interleave bytes.
3. **Versioned.**  Every record carries ``{"v": SCHEMA_VERSION}``.
   Records from other versions are counted and skipped — an old store
   file never poisons a new chooser, and vice versa.
4. **Deterministic serialization.**  Records serialize with sorted keys,
   so identical observation sequences produce byte-identical files — the
   determinism tests diff them directly.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..observability.metrics import METRICS, MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "ConfigStats",
    "QueryProfile",
    "ProfileStore",
    "store_path_from_env",
]

#: bump when the record layout changes; other versions are skipped on load
SCHEMA_VERSION = 1

#: EWMA weight of the newest observation (0.3 ≈ remember ~the last few runs)
EWMA_ALPHA = 0.3

#: degradation ratios retained for seeding the load factor across processes
MAX_DEGRADE_RATIOS = 16

#: pseudo-key for service-wide (not per-query) records, e.g. degradations
SERVICE_KEY = "__service__"


def store_path_from_env() -> Optional[str]:
    """Profile-store path from ``REPRO_ADAPTIVE_STORE``.

    Unset → a per-user file under the system temp directory (persistent
    across processes on one machine, no repository or home pollution).
    The literal value ``:memory:`` keeps profiles in memory only.
    """
    env = os.environ.get("REPRO_ADAPTIVE_STORE", "").strip()
    if env == ":memory:":
        return None
    if env:
        return env
    uid = getattr(os, "getuid", lambda: "all")()
    return os.path.join(tempfile.gettempdir(), f"repro-adaptive-{uid}.jsonl")


@dataclass
class ConfigStats:
    """Runtime summary of one (engine, workers, morsel) configuration.

    ``distributed`` is the worker-*process* count for multi-process runs
    (0 = in-process); records written before the field existed load as 0,
    so old store files keep aggregating cleanly.
    """

    engine: str
    workers: int
    morsel: int
    distributed: int = 0
    runs: int = 0
    ewma_ms: float = 0.0

    @property
    def config(self) -> Tuple[str, int, int]:
        return (self.engine, self.workers, self.morsel)

    def observe(self, ms: float) -> None:
        if self.runs == 0:
            self.ewma_ms = ms
        else:
            self.ewma_ms += EWMA_ALPHA * (ms - self.ewma_ms)
        self.runs += 1


@dataclass
class QueryProfile:
    """Everything learned about one query shape (one profile key)."""

    key: str
    configs: Dict[Tuple[str, int, int, int], ConfigStats] = field(
        default_factory=dict
    )
    runs: int = 0
    #: EWMA of the observed output cardinality
    observed_rows: float = 0.0
    #: last optimizer estimate recorded alongside an observation
    estimated_rows: Optional[int] = None

    def observe(
        self,
        engine: str,
        workers: int,
        morsel: int,
        ms: float,
        rows: Optional[int],
        estimated: Optional[int],
        distributed: int = 0,
    ) -> None:
        config = (engine, workers, morsel, distributed)
        stats = self.configs.get(config)
        if stats is None:
            stats = self.configs[config] = ConfigStats(
                engine, workers, morsel, distributed
            )
        stats.observe(ms)
        if rows is not None:
            if self.runs == 0:
                self.observed_rows = float(rows)
            else:
                self.observed_rows += EWMA_ALPHA * (rows - self.observed_rows)
        if estimated is not None:
            self.estimated_rows = estimated
        self.runs += 1

    def best(self, allow_distributed: bool = True) -> Optional[ConfigStats]:
        """The fastest known configuration, deterministically tie-broken.

        Ties (and near-ties) break on the configuration tuple itself, so
        two processes replaying the same observations always agree.
        ``allow_distributed=False`` restricts the search to in-process
        configurations — the chooser must not revive multi-process runs
        the environment has switched off.
        """
        candidates = [
            s
            for s in self.configs.values()
            if allow_distributed or not s.distributed
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda s: (s.ewma_ms, s.config, s.distributed)
        )

    @property
    def divergence(self) -> Optional[float]:
        """observed/estimated cardinality ratio (>1 = underestimated)."""
        if not self.estimated_rows or self.runs == 0:
            return None
        return max(self.observed_rows, 1.0) / max(self.estimated_rows, 1)


class ProfileStore:
    """Aggregated runtime profiles, persisted as append-only JSON lines."""

    def __init__(
        self,
        path: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.path = path
        self._metrics = metrics if metrics is not None else METRICS
        self._lock = threading.Lock()
        self._profiles: Dict[str, QueryProfile] = {}
        self._degrade_ratios: Deque[float] = deque(maxlen=MAX_DEGRADE_RATIOS)
        self._handle: Optional[io.TextIOBase] = None
        self._write_failed = False
        self._load()

    # -- error accounting (the fail-open contract) ------------------------------

    def _store_error(self) -> None:
        self._metrics.counter("adaptive.store_errors").add()

    def _store_skew(self) -> None:
        self._metrics.counter("adaptive.store_skew").add()

    # -- load -------------------------------------------------------------------

    def _load(self) -> None:
        """Aggregate the on-disk lines; any failure degrades to empty."""
        if self.path is None:
            return
        try:
            if not os.path.exists(self.path):
                return
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        # truncated or corrupt line (e.g. a crash mid-
                        # append): skip it, keep the rest of the file
                        self._store_error()
                        continue
                    self._apply(record)
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._store_error()

    def _apply(self, record: Any) -> None:
        if not isinstance(record, dict):
            self._store_error()
            return
        if record.get("v") != SCHEMA_VERSION:
            self._store_skew()
            return
        kind = record.get("kind")
        try:
            if kind == "run":
                profile = self._profile(record["key"])
                profile.observe(
                    engine=record["engine"],
                    workers=int(record["workers"]),
                    morsel=int(record["morsel"]),
                    ms=float(record["ms"]),
                    rows=record.get("rows"),
                    estimated=record.get("est"),
                    # pre-distribution records have no key: load as 0
                    distributed=int(record.get("dist", 0) or 0),
                )
            elif kind == "degrade":
                requested = max(1, int(record["requested"]))
                granted = max(1, int(record["granted"]))
                self._degrade_ratios.append(granted / requested)
            else:
                self._store_skew()
        except (KeyError, TypeError, ValueError):
            self._store_error()

    def _profile(self, key: str) -> QueryProfile:
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._profiles[key] = QueryProfile(key)
        return profile

    # -- read -------------------------------------------------------------------

    def profile(self, key: str) -> Optional[QueryProfile]:
        with self._lock:
            return self._profiles.get(key)

    def degrade_ratios(self) -> List[float]:
        with self._lock:
            return list(self._degrade_ratios)

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    # -- write ------------------------------------------------------------------

    def record_run(
        self,
        key: str,
        engine: str,
        workers: int,
        morsel: int,
        ms: float,
        rows: Optional[int] = None,
        estimated: Optional[int] = None,
        degraded: bool = False,
        distributed: int = 0,
    ) -> None:
        """Record one observed execution (and persist it, best-effort)."""
        record = {
            "v": SCHEMA_VERSION,
            "kind": "run",
            "key": key,
            "engine": engine,
            "workers": int(workers),
            "morsel": int(morsel),
            "ms": round(float(ms), 4),
            "rows": rows,
            "est": estimated,
            "degraded": bool(degraded),
        }
        # only multi-process runs carry the key: in-process records stay
        # byte-identical to pre-distribution stores
        if distributed:
            record["dist"] = int(distributed)
        with self._lock:
            self._apply(record)
            self._append(record)

    def record_degrade(self, requested: int, granted: int) -> None:
        """Record an admission-control parallelism downgrade."""
        record = {
            "v": SCHEMA_VERSION,
            "kind": "degrade",
            "key": SERVICE_KEY,
            "requested": int(requested),
            "granted": int(granted),
        }
        with self._lock:
            self._apply(record)
            self._append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        """One line to disk under the lock; failures count and disarm."""
        if self.path is None or self._write_failed:
            return
        try:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._store_error()
            # stop retrying a dead file, keep serving in-memory profiles
            self._write_failed = True
            try:
                if self._handle is not None:
                    self._handle.close()
            except Exception:  # noqa: BLE001
                pass
            self._handle = None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except Exception:  # noqa: BLE001
                    self._store_error()
                self._handle = None
