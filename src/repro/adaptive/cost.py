"""Cost seeding for the chooser — :mod:`repro.plans.statistics` applied.

Before any profile exists, the chooser needs *some* basis for picking a
parallelism and morsel size.  This module walks the optimized logical
plan with the textbook estimates the optimizer already uses for conjunct
ordering (uniform ranges, 1/distinct equality, the System-R default
selectivity) and produces a :class:`RowEstimate` — the driver input
cardinality (what parallelism amortizes over) and the output cardinality
(what the mid-flight re-decision compares observations against).

Estimates are deliberately crude: they only have to land the decision in
the right order of magnitude, and every run refines them with observed
cardinalities through the profile store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..expressions.nodes import Binary, Lambda
from ..plans.logical import (
    Concat,
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    ScalarAggregate,
    Scan,
    SetOp,
    Sort,
    TopN,
)
from ..plans.statistics import DEFAULT_SELECTIVITY, estimate_selectivity

__all__ = [
    "RowEstimate",
    "estimate_plan_rows",
    "seed_configuration",
    "PARALLEL_ROW_THRESHOLD",
    "MIN_MORSEL_ROWS",
    "MAX_MORSEL_ROWS",
]

#: below this many driver rows, fan-out overhead beats the speedup
PARALLEL_ROW_THRESHOLD = 16384

#: morsel-size clamp for seeded and re-decided sizes
MIN_MORSEL_ROWS = 1024
MAX_MORSEL_ROWS = 1 << 20

#: group-by / distinct output heuristic: sqrt of the input, the classic
#: "many groups but far fewer than rows" assumption when stats are silent
_GROUP_FRACTION = 0.5


@dataclass(frozen=True)
class RowEstimate:
    """Estimated cardinalities for one plan: driver input and output."""

    driver_rows: int
    output_rows: int


def _source_rows(sources: List[Any], ordinal: int) -> int:
    if 0 <= ordinal < len(sources):
        try:
            return len(sources[ordinal])
        except TypeError:
            return 0
    return 0


def _filter_selectivity(
    predicate: Lambda, token: Optional[str], statistics: Dict[str, Any]
) -> float:
    stats = statistics.get(token) if token else None
    if stats is None:
        return DEFAULT_SELECTIVITY
    (param,) = predicate.params
    selectivity = 1.0
    for conjunct in _conjuncts(predicate.body):
        selectivity *= estimate_selectivity(conjunct, param, stats)
    return min(1.0, max(0.0, selectivity))


def _conjuncts(body: Any) -> List[Any]:
    if isinstance(body, Binary) and body.op == "and":
        return _conjuncts(body.left) + _conjuncts(body.right)
    return [body]


def _walk(
    plan: Plan, sources: List[Any], statistics: Dict[str, Any]
) -> Tuple[float, Optional[str]]:
    """(estimated rows, driving schema token) for one subtree."""
    if isinstance(plan, Scan):
        return float(_source_rows(sources, plan.ordinal)), plan.schema_token
    if isinstance(plan, Filter):
        rows, token = _walk(plan.child, sources, statistics)
        return rows * _filter_selectivity(plan.predicate, token, statistics), token
    if isinstance(plan, Project):
        return _walk(plan.child, sources, statistics)
    if isinstance(plan, FlatMap):
        rows, _ = _walk(plan.child, sources, statistics)
        # per-element expansion factor is unknowable statically; assume 1
        return rows, None
    if isinstance(plan, Join):
        left, token = _walk(plan.left, sources, statistics)
        right, _ = _walk(plan.right, sources, statistics)
        if plan.kind in ("semi", "anti"):
            return left * _GROUP_FRACTION * 2, token  # a fraction survives
        if plan.kind == "left":
            return left, token  # every probe row emits at least once
        # inner equi-join: probe-side cardinality is the usual anchor
        return left, token
    if isinstance(plan, (GroupAggregate, GroupBy, Distinct)):
        rows, _ = _walk(plan.child, sources, statistics)
        return max(1.0, rows**_GROUP_FRACTION), None
    if isinstance(plan, ScalarAggregate):
        return 1.0, None
    if isinstance(plan, (Sort, TopN, Limit)):
        rows, token = _walk(plan.child, sources, statistics)
        return rows, token
    if isinstance(plan, (Concat, SetOp)):
        left, token = _walk(plan.left, sources, statistics)
        right, _ = _walk(plan.right, sources, statistics)
        return left + right, token
    children = [c for c in _plan_children(plan)]
    if children:
        return _walk(children[0], sources, statistics)
    return 0.0, None


def _plan_children(plan: Plan) -> List[Plan]:
    from ..plans.logical import plan_children

    return list(plan_children(plan))


def _driver_rows(plan: Plan, sources: List[Any]) -> int:
    """Rows of the leftmost (driving) scan — what morsels partition."""
    node = plan
    while True:
        if isinstance(node, Scan):
            return _source_rows(sources, node.ordinal)
        children = _plan_children(node)
        if not children:
            return 0
        node = children[0]


def estimate_plan_rows(
    plan: Plan, sources: List[Any], statistics: Dict[str, Any]
) -> RowEstimate:
    """Estimate driver-input and output cardinalities for *plan*."""
    output, _ = _walk(plan, sources, statistics)
    return RowEstimate(
        driver_rows=int(_driver_rows(plan, sources)),
        output_rows=max(0, int(round(output))),
    )


def seed_configuration(
    estimate: RowEstimate,
    max_workers: int,
    default_morsel: int,
) -> Tuple[int, int]:
    """(workers, morsel rows) from an estimate alone — no profile yet.

    Small inputs stay sequential (fan-out costs more than it saves);
    larger inputs take enough workers to give each a few morsels, with
    the morsel size shrunk so every worker gets work but never below the
    cache-resident floor.
    """
    rows = estimate.driver_rows
    if rows < PARALLEL_ROW_THRESHOLD or max_workers < 2:
        return 1, default_morsel
    workers = min(max_workers, max(2, rows // PARALLEL_ROW_THRESHOLD))
    morsel = rows // (workers * 2) or default_morsel
    morsel = min(MAX_MORSEL_ROWS, max(MIN_MORSEL_ROWS, morsel, 1))
    return workers, min(morsel, default_morsel)


def redecide_morsel(
    current_morsel: int,
    observed_selectivity: float,
    estimated_selectivity: float,
    remaining_rows: int,
    workers: int,
) -> Optional[int]:
    """New morsel size when observation diverges >4x from the estimate.

    A far-denser-than-estimated output means each morsel emits (and
    merges) much more than planned — shrink morsels so partial results
    stay bounded.  A far-sparser output means per-morsel overhead
    dominates — grow them.  Within 4x, keep the current size (None).
    """
    observed = max(observed_selectivity, 1e-9)
    estimated = max(estimated_selectivity, 1e-9)
    ratio = observed / estimated
    if 0.25 <= ratio <= 4.0:
        return None
    scaled = int(current_morsel / math.sqrt(ratio))
    # never leave a worker idle: keep at least one morsel per worker
    if remaining_rows > 0 and workers > 1:
        scaled = min(scaled, max(1, remaining_rows // workers))
    scaled = min(MAX_MORSEL_ROWS, max(MIN_MORSEL_ROWS, scaled))
    return None if scaled == current_morsel else scaled
