"""The decision point: profile → estimate → static fallback.

The chooser answers one question per query: *which engine, how many
workers, what morsel size?*  Evidence is consulted in strictly decreasing
order of quality, and the chosen tier is stamped on the decision as its
``source`` so ``explain_analyze`` can show where a decision came from:

``profile``
    The profile store has observed runs for this query shape; take the
    configuration with the lowest smoothed wall time.
``estimate``
    No profile yet; seed parallelism and morsel size from the
    :mod:`repro.plans.statistics` cardinality estimates.
``static-fallback``
    No profile, no estimate, or *anything* raised on the way — behave
    exactly like the pre-adaptive engine (requested engine, no worker or
    morsel override).  This tier is also the fail-open landing pad.
``explore``
    Epsilon-greedy exploration: with probability ε (``REPRO_ADAPTIVE_
    EPSILON``, default 0.05) try a non-best configuration so the profile
    keeps learning about alternatives.  ε = 0 disables exploration and
    makes the chooser fully deterministic (byte-stable across processes,
    which the determinism tests assert).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..observability.metrics import METRICS, MetricsRegistry
from .cost import RowEstimate, seed_configuration
from .store import ProfileStore

__all__ = ["Decision", "AdaptiveChooser", "epsilon_from_env"]

DEFAULT_EPSILON = 0.05

#: worker counts exploration draws from (capped by the host)
_EXPLORE_WORKERS = (1, 2, 4)

#: morsel sizes exploration draws from
_EXPLORE_MORSELS = (8192, 32768, 65536)

#: worker-process counts exploration draws from when distribution is on
_EXPLORE_DISTRIBUTED = (0, 2, 4)


def _distributed_enabled() -> bool:
    """True when ``REPRO_DISTRIBUTED`` lets the chooser pick (or keep)
    multi-process configurations."""
    return os.environ.get("REPRO_DISTRIBUTED", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
        "no",
    )


def epsilon_from_env() -> float:
    """Exploration rate from ``REPRO_ADAPTIVE_EPSILON`` (default 0.05)."""
    env = os.environ.get("REPRO_ADAPTIVE_EPSILON", "").strip()
    if not env:
        return DEFAULT_EPSILON
    try:
        value = float(env)
    except ValueError:
        return DEFAULT_EPSILON
    return min(1.0, max(0.0, value))


@dataclass(frozen=True)
class Decision:
    """One resolved execution configuration plus its provenance."""

    engine: str
    #: worker override, or None to defer to the static resolution
    workers: Optional[int]
    #: morsel-size override, or None for the runtime default
    morsel: Optional[int]
    #: "profile" | "estimate" | "static-fallback" | "explore"
    source: str
    reason: str = ""
    #: worker-process override for multi-process execution, or None to
    #: defer to the static resolution (``REPRO_DISTRIBUTED``)
    distributed: Optional[int] = None

    def describe(self) -> str:
        workers = "static" if self.workers is None else str(self.workers)
        morsel = "default" if self.morsel is None else str(self.morsel)
        text = f"engine={self.engine} workers={workers} morsel={morsel} "
        if self.distributed:
            text += f"dist={self.distributed} "
        text += f"(source={self.source})"
        if self.reason:
            text += f" — {self.reason}"
        return text


def static_fallback(engine: str, reason: str = "") -> Decision:
    return Decision(
        engine=engine,
        workers=None,
        morsel=None,
        source="static-fallback",
        reason=reason,
    )


class AdaptiveChooser:
    """Epsilon-greedy configuration selection over the profile store."""

    def __init__(
        self,
        store: ProfileStore,
        epsilon: Optional[float] = None,
        seed: int = 0xC0FFEE,
        max_workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.epsilon = epsilon_from_env() if epsilon is None else epsilon
        self._rng = random.Random(seed)
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._metrics = metrics if metrics is not None else METRICS

    def decide(
        self,
        key: str,
        requested_engine: str,
        candidates: Sequence[str],
        estimate: Optional[RowEstimate],
        default_morsel: int,
        load_factor: float = 1.0,
        explore: bool = True,
    ) -> Decision:
        """Pick a configuration; never raises (fail-open by contract)."""
        try:
            decision = self._decide(
                key,
                requested_engine,
                tuple(candidates) or (requested_engine,),
                estimate,
                default_morsel,
                load_factor,
                explore,
            )
        except Exception:  # noqa: BLE001 - fail-open by contract
            self._metrics.counter("adaptive.errors").add()
            decision = static_fallback(requested_engine, "chooser error")
        self._metrics.counter(f"adaptive.decisions.{decision.source}").add()
        return decision

    # -- internals --------------------------------------------------------------

    def _decide(
        self,
        key: str,
        requested_engine: str,
        candidates: Tuple[str, ...],
        estimate: Optional[RowEstimate],
        default_morsel: int,
        load_factor: float,
        explore: bool,
    ) -> Decision:
        profile = self.store.profile(key)
        if (
            explore
            and self.epsilon > 0
            and profile is not None
            and self._rng.random() < self.epsilon
        ):
            return self._explore(candidates, estimate, load_factor)
        if profile is not None and profile.runs > 0:
            dist_on = _distributed_enabled()
            best = profile.best(allow_distributed=dist_on)
            if best is not None and best.engine in candidates:
                workers = self._cap_workers(best.workers, load_factor)
                # with distribution enabled the decision is explicit both
                # ways: 0 pins the faster in-process configuration (None
                # would defer back to the environment and distribute)
                return Decision(
                    engine=best.engine,
                    workers=workers,
                    # morsel 0 records a sequential run: no override
                    morsel=best.morsel or None,
                    source="profile",
                    reason=f"{best.runs} run(s), ewma {best.ewma_ms:.3f} ms",
                    distributed=best.distributed if dist_on else None,
                )
        if estimate is not None and estimate.driver_rows > 0:
            workers, morsel = seed_configuration(
                estimate, self._max_workers, default_morsel
            )
            workers = self._cap_workers(workers, load_factor)
            return Decision(
                engine=requested_engine,
                workers=workers,
                morsel=morsel,
                source="estimate",
                reason=(
                    f"~{estimate.driver_rows} driver rows, "
                    f"~{estimate.output_rows} out"
                ),
            )
        return static_fallback(requested_engine, "no profile, no estimate")

    def _explore(
        self,
        candidates: Tuple[str, ...],
        estimate: Optional[RowEstimate],
        load_factor: float,
    ) -> Decision:
        engine = self._rng.choice(list(candidates))
        workers = self._rng.choice(
            [w for w in _EXPLORE_WORKERS if w <= self._max_workers] or [1]
        )
        # don't explore fan-out on inputs too small to ever benefit
        if estimate is not None and estimate.driver_rows < 4096:
            workers = 1
        morsel = self._rng.choice(_EXPLORE_MORSELS)
        distributed = None
        if _distributed_enabled():
            # process fan-out pays a scatter cost: only arms worth trying
            # on inputs large enough to amortize it; an explicit 0 pins
            # the in-process arm (None would defer to the environment)
            distributed = self._rng.choice(_EXPLORE_DISTRIBUTED)
            if estimate is not None and estimate.driver_rows < 4096:
                distributed = 0
        return Decision(
            engine=engine,
            workers=self._cap_workers(workers, load_factor),
            morsel=morsel,
            source="explore",
            reason=f"epsilon={self.epsilon:g}",
            distributed=distributed,
        )

    @staticmethod
    def _cap_workers(workers: Optional[int], load_factor: float) -> Optional[int]:
        """Shrink the worker grant in proportion to observed service load."""
        if workers is None or workers <= 1 or load_factor >= 1.0:
            return workers
        return max(1, int(workers * max(0.0, load_factor)))
