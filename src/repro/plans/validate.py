"""Plan validation: schema threading and per-engine capability reports.

Two jobs, both running between the optimizer and the backends:

* :func:`validate_plan` threads element types through every logical
  operator (Scan → … → TopN), checking each operator's preconditions —
  predicates produce booleans, aggregate selectors produce summable
  values, sort keys are comparable, limits take integer counts.  Failures
  raise :class:`~repro.errors.QueryAnalysisError` *before* any code is
  generated.  The per-node output types it returns also feed the native
  backend's accumulator-dtype selection (int64 vs float64 sums).

* :func:`capability_report` answers "can this engine run this plan?" in
  one place, replacing the ad-hoc fragment checks previously scattered
  through the backends.  The backends keep their own checks as
  defense-in-depth (they are still exercised when used directly), but the
  provider consults the report first, so users get one uniform error
  surface.  Reports are deliberately conservative: only clear-cut
  violations are reported; borderline plans pass through and the backend
  gives the precise error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryAnalysisError
from ..expressions.analysis import member_usage
from ..expressions.nodes import Expr, Lambda, Member, walk
from ..expressions.typing import (
    GroupType,
    RecordType,
    ScalarType,
    SequenceType,
    Type,
    UNKNOWN,
    infer_expr,
    scalar_kind,
    type_from_token,
)
from .logical import (
    Concat,
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
    plan_children,
)

__all__ = [
    "PlanTypes",
    "validate_plan",
    "CapabilityReport",
    "capability_report",
    "ParallelSplit",
    "parallel_split",
    "distributed_split",
    "PARALLEL_MERGEABLE_AGGREGATES",
]


# ---------------------------------------------------------------------------
# Schema threading
# ---------------------------------------------------------------------------


@dataclass
class PlanTypes:
    """Output element types per plan node (keyed by object identity)."""

    types: Dict[int, Type]
    result: Type
    scalar: bool
    source_types: Tuple[Type, ...]
    params: Dict[str, Any]

    def output_type(self, plan: Plan) -> Type:
        return self.types.get(id(plan), UNKNOWN)

    def lambda_kind(self, plan: Plan, lam: Lambda) -> str:
        """Scalar kind of a 1-ary lambda over *plan*'s output elements.

        The hook the native backend uses to pick exact accumulator dtypes:
        ``'int'`` selectors get int64 sums, ``'float'`` get float64.
        """
        elem = self.output_type(plan)
        try:
            inferred = infer_expr(
                lam.body, {lam.params[0]: elem}, self.params
            )
        except QueryAnalysisError:
            return "unknown"
        return scalar_kind(inferred)


def validate_plan(
    plan: Plan,
    source_types: Sequence[Type] = (),
    params: Optional[Dict[str, Any]] = None,
) -> PlanTypes:
    """Thread element types through *plan*, checking operator preconditions.

    Raises :class:`~repro.errors.QueryAnalysisError` on definite errors;
    unknown types flow through silently (never a false rejection).
    """
    params = dict(params or {})
    types: Dict[int, Type] = {}
    result = _thread(plan, tuple(source_types), params, types)
    return PlanTypes(
        types=types,
        result=result,
        scalar=isinstance(plan, ScalarAggregate),
        source_types=tuple(source_types),
        params=params,
    )


def _fail(message: str, node: Expr, plan: Plan) -> None:
    from ..expressions.printer import expression_to_text

    path = f"plan.{type(plan).__name__}"
    rendered = expression_to_text(node, indent=1)
    raise QueryAnalysisError(
        f"{message}\n  at {path}:\n{rendered}", path=path, expression=node
    )


def _value(expr: Expr, env: Dict[str, Type], params: Dict[str, Any]) -> Type:
    return infer_expr(expr, env, params)


def _thread(
    plan: Plan,
    source_types: Tuple[Type, ...],
    params: Dict[str, Any],
    types: Dict[int, Type],
) -> Type:
    out = _thread_node(plan, source_types, params, types)
    types[id(plan)] = out
    return out


def _thread_node(
    plan: Plan,
    source_types: Tuple[Type, ...],
    params: Dict[str, Any],
    types: Dict[int, Type],
) -> Type:
    if isinstance(plan, Scan):
        if 0 <= plan.ordinal < len(source_types):
            known = source_types[plan.ordinal]
            if known is not UNKNOWN:
                return known
        return type_from_token(plan.schema_token)
    if isinstance(plan, Filter):
        elem = _thread(plan.child, source_types, params, types)
        (var,) = plan.predicate.params
        pred = _value(plan.predicate.body, {var: elem}, params)
        if scalar_kind(pred) in ("str", "date") or isinstance(
            pred, (RecordType, GroupType, SequenceType)
        ):
            _fail(
                f"filter predicate must produce a boolean, got {pred}",
                plan.predicate.body,
                plan,
            )
        return elem
    if isinstance(plan, Project):
        elem = _thread(plan.child, source_types, params, types)
        (var,) = plan.selector.params
        return _value(plan.selector.body, {var: elem}, params)
    if isinstance(plan, FlatMap):
        elem = _thread(plan.child, source_types, params, types)
        (var,) = plan.collection.params
        coll = _value(plan.collection.body, {var: elem}, params)
        if isinstance(coll, (ScalarType, GroupType)):
            _fail(
                f"select_many requires a sequence-valued selector, got {coll}",
                plan.collection.body,
                plan,
            )
        inner = coll.element if isinstance(coll, SequenceType) else UNKNOWN
        if plan.result is not None:
            outer_var, inner_var = plan.result.params
            return _value(
                plan.result.body, {outer_var: elem, inner_var: inner}, params
            )
        return inner
    if isinstance(plan, Join):
        left = _thread(plan.left, source_types, params, types)
        right = _thread(plan.right, source_types, params, types)
        lk = _value(plan.left_key.body, {plan.left_key.params[0]: left}, params)
        rk = _value(
            plan.right_key.body, {plan.right_key.params[0]: right}, params
        )
        _check_join_keys(lk, rk, plan)
        if plan.kind in ("semi", "anti"):
            # existence joins pass the probe element through unchanged
            return left
        if plan.kind == "left":
            default_type = _value(plan.default, {}, params)
            if (
                isinstance(right, RecordType)
                and isinstance(default_type, RecordType)
                and set(default_type.field_names) - set(right.field_names)
            ):
                extra = set(default_type.field_names) - set(right.field_names)
                _fail(
                    f"left join default has fields not in the build element: "
                    f"{', '.join(sorted(extra))}",
                    plan.default,
                    plan,
                )
        lvar, rvar = plan.result.params
        return _value(plan.result.body, {lvar: left, rvar: right}, params)
    if isinstance(plan, GroupBy):
        elem = _thread(plan.child, source_types, params, types)
        (var,) = plan.key.params
        key = _value(plan.key.body, {var: elem}, params)
        return GroupType(key, elem)
    if isinstance(plan, GroupAggregate):
        elem = _thread(plan.child, source_types, params, types)
        (var,) = plan.key.params
        key = _value(plan.key.body, {var: elem}, params)
        env: Dict[str, Type] = {"__key": key}
        for i, spec in enumerate(plan.aggregates):
            env[f"__agg{i}"] = _aggregate_type(spec, elem, params, plan)
        return _value(plan.output, env, params)
    if isinstance(plan, ScalarAggregate):
        elem = _thread(plan.child, source_types, params, types)
        env = {
            f"__agg{i}": _aggregate_type(spec, elem, params, plan)
            for i, spec in enumerate(plan.aggregates)
        }
        return _value(plan.output, env, params)
    if isinstance(plan, (Sort, TopN)):
        elem = _thread(plan.child, source_types, params, types)
        for key in plan.keys:
            (var,) = key.params
            key_type = _value(key.body, {var: elem}, params)
            if isinstance(key_type, (GroupType, SequenceType)):
                _fail(
                    f"ordering key must be a comparable value, got {key_type}",
                    key.body,
                    plan,
                )
        if isinstance(plan, TopN):
            _check_count(plan.count, params, plan)
        return elem
    if isinstance(plan, Limit):
        elem = _thread(plan.child, source_types, params, types)
        for bound in (plan.count, plan.offset):
            if bound is not None:
                _check_count(bound, params, plan)
        return elem
    if isinstance(plan, Distinct):
        return _thread(plan.child, source_types, params, types)
    if isinstance(plan, Concat):
        left = _thread(plan.left, source_types, params, types)
        right = _thread(plan.right, source_types, params, types)
        if (
            isinstance(left, RecordType)
            and isinstance(right, RecordType)
            and set(left.field_names) != set(right.field_names)
        ):
            raise QueryAnalysisError(
                f"concat of mismatched record shapes: {left} vs {right}",
                path="plan.Concat",
            )
        return left if left is not UNKNOWN else right
    if isinstance(plan, SetOp):
        left = _thread(plan.left, source_types, params, types)
        right = _thread(plan.right, source_types, params, types)
        if (
            isinstance(left, RecordType)
            and isinstance(right, RecordType)
            and set(left.field_names) != set(right.field_names)
        ):
            raise QueryAnalysisError(
                f"{plan.op} of mismatched record shapes: {left} vs {right}",
                path="plan.SetOp",
            )
        return left if left is not UNKNOWN else right
    # unknown plan node kinds flow through untyped
    for child in plan_children(plan):
        _thread(child, source_types, params, types)
    return UNKNOWN


def _aggregate_type(
    spec, elem: Type, params: Dict[str, Any], plan: Plan
) -> Type:
    if spec.selector is None:  # count
        return ScalarType("int")
    (var,) = spec.selector.params
    value = _value(spec.selector.body, {var: elem}, params)
    value_kind = scalar_kind(value)
    if spec.kind in ("sum", "avg") and (
        value_kind in ("str", "date")
        or isinstance(value, (RecordType, GroupType, SequenceType))
    ):
        _fail(
            f"cannot {spec.kind} values of type {value}",
            spec.selector.body,
            plan,
        )
    if spec.kind == "avg":
        return ScalarType("float")
    if spec.kind == "sum":
        if value_kind in ("int", "int32", "bool"):
            return ScalarType("int")
        if value_kind == "float":
            return ScalarType("float")
        return UNKNOWN
    return value


def _check_join_keys(left: Type, right: Type, plan: Plan) -> None:
    families = {
        "int": "numeric", "int32": "numeric", "float": "numeric",
        "bool": "numeric", "str": "str", "date": "date",
    }
    lf = families.get(scalar_kind(left))
    rf = families.get(scalar_kind(right))
    if lf is not None and rf is not None and lf != rf:
        raise QueryAnalysisError(
            f"join keys have incompatible types: {left} vs {right}",
            path="plan.Join",
        )


def _check_count(expr: Expr, params: Dict[str, Any], plan: Plan) -> None:
    count = _value(expr, {}, params)
    if count is not UNKNOWN and scalar_kind(count) not in (
        "int", "int32", "unknown",
    ):
        _fail(f"take/skip requires an integer count, got {count}", expr, plan)


# ---------------------------------------------------------------------------
# Per-engine capability reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CapabilityReport:
    """Whether *engine* can run a plan, and why not if it cannot."""

    engine: str
    supported: bool
    reasons: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.supported:
            return f"engine {self.engine!r} supports this plan"
        return self.reasons[0] if self.reasons else (
            f"engine {self.engine!r} cannot run this plan"
        )


def capability_report(
    plan: Plan,
    engine: str,
    sources: Sequence[Any] = (),
    plan_types: Optional[PlanTypes] = None,
) -> CapabilityReport:
    """One capability check per engine, consulted by the provider.

    Conservative: reports only clear-cut violations.  A supported report
    does not guarantee compilation succeeds — the backends keep their own
    checks — but an unsupported report is always a real restriction.
    """
    if engine in ("linq", "compiled"):
        return CapabilityReport(engine, True)
    if plan_types is None:
        try:
            plan_types = validate_plan(plan)
        except QueryAnalysisError:
            plan_types = None
    if engine == "native":
        reasons = _native_reasons(plan, sources, plan_types)
    elif engine in ("hybrid_min", "hybrid_min_buffered"):
        reasons = _min_reasons(plan)
    elif engine.startswith("hybrid"):
        reasons = _hybrid_reasons(plan)
    else:
        return CapabilityReport(engine, True)
    return CapabilityReport(engine, not reasons, tuple(reasons))


#: plan node kinds the vectorized emitters (§5 / §6 max) cannot generate
_NON_VECTOR_NODES = (FlatMap, GroupBy)


def _walk_plan(plan: Plan):
    yield plan
    for child in plan_children(plan):
        yield from _walk_plan(child)


def _plan_lambdas(plan: Plan) -> List[Tuple[Lambda, Plan, Tuple[Plan, ...]]]:
    """Every (lambda, owner, element-producing children) triple in a plan."""
    out: List[Tuple[Lambda, Plan, Tuple[Plan, ...]]] = []
    for node in _walk_plan(plan):
        if isinstance(node, Filter):
            out.append((node.predicate, node, (node.child,)))
        elif isinstance(node, Project):
            out.append((node.selector, node, (node.child,)))
        elif isinstance(node, FlatMap):
            out.append((node.collection, node, (node.child,)))
            if node.result is not None:
                out.append((node.result, node, (node.child, node.child)))
        elif isinstance(node, Join):
            out.append((node.left_key, node, (node.left,)))
            out.append((node.right_key, node, (node.right,)))
            if node.result is not None:
                out.append((node.result, node, (node.left, node.right)))
        elif isinstance(node, (GroupBy, GroupAggregate)):
            out.append((node.key, node, (node.child,)))
            if isinstance(node, GroupAggregate):
                for spec in node.aggregates:
                    if spec.selector is not None:
                        out.append((spec.selector, node, (node.child,)))
        elif isinstance(node, ScalarAggregate):
            for spec in node.aggregates:
                if spec.selector is not None:
                    out.append((spec.selector, node, (node.child,)))
        elif isinstance(node, (Sort, TopN)):
            for key in node.keys:
                out.append((key, node, (node.child,)))
    return out


def _native_reasons(
    plan: Plan, sources: Sequence[Any], plan_types: Optional[PlanTypes]
) -> List[str]:
    reasons: List[str] = []
    from ..storage.struct_array import StructArray

    for i, source in enumerate(sources):
        if not isinstance(source, StructArray):
            reasons.append(
                f"the native engine requires StructArray sources; source_{i} "
                f"is {type(source).__name__} (use the compiled or hybrid "
                f"engine for object collections)"
            )
    reasons.extend(_vector_fragment_reasons(plan, plan_types))
    return reasons


def _hybrid_reasons(plan: Plan) -> List[str]:
    """Max-variant staging: reuse the staging split as a pure dry-run."""
    from ..errors import UnsupportedQueryError

    reasons: List[str] = []
    for node in _walk_plan(plan):
        if isinstance(node, _NON_VECTOR_NODES):
            reasons.append(
                f"plan node {type(node).__name__} is outside the native "
                f"fragment (§5 restrictions); use the compiled engine"
            )
    if not reasons:
        from ..codegen.mapping import split_staging

        try:
            split_staging(plan)
        except UnsupportedQueryError as exc:
            reasons.append(str(exc))
    return reasons


def _min_reasons(plan: Plan) -> List[str]:
    """Min-variant shape: post ops over one Sort/TopN/Join over scan chains."""
    node = plan
    while True:
        if isinstance(node, Project):
            node = node.child
        elif isinstance(node, Filter) and isinstance(node.child, Join):
            node = node.child
        else:
            break
    if not isinstance(node, (Sort, TopN, Join)) or (
        isinstance(node, Join) and node.kind != "inner"
    ):
        return [
            "Min staging only supports a single sort/top-N or inner join as "
            "the native operation (the paper's §7.4 restriction); use "
            "the Max variant for complex queries"
        ]
    if isinstance(node, (Sort, TopN)):
        subtrees = (node.child,)
    else:
        subtrees = (node.left, node.right)
    for subtree in subtrees:
        if not _min_subtree_ok(subtree):
            return [
                "Min staging only supports (filtered) scans and joins below "
                "the native operator"
            ]
    return []


def _min_subtree_ok(node: Plan) -> bool:
    while isinstance(node, Filter):
        node = node.child
    if isinstance(node, Scan):
        return True
    if isinstance(node, Join) and node.kind == "inner":
        return _min_subtree_ok(node.left) and _min_subtree_ok(node.right)
    return False


# ---------------------------------------------------------------------------
# Parallel-safety capability check (morsel-driven execution)
# ---------------------------------------------------------------------------

#: aggregate kinds with a deterministic partial-merge (avg via sum+count)
PARALLEL_MERGEABLE_AGGREGATES = frozenset({"sum", "count", "min", "max", "avg"})


@dataclass(frozen=True)
class ParallelSplit:
    """Decision of the per-operator parallel-safety check.

    When ``parallel`` is True the plan decomposes into a morsel kernel
    (``core`` minus any aggregate root) plus ``post_ops`` — the
    order-sensitive root operators, outermost first, that the parallel
    runtime re-applies managed-side after the deterministic merge.
    ``mode`` names the merge algebra: ``"rows"`` (concatenate in morsel
    order), ``"scalar"`` (fold partial aggregates), or ``"group"``
    (StreamingGroupAggregator over partial group tables).  When False,
    ``reasons`` explains the fallback to sequential execution.
    """

    parallel: bool
    mode: str = ""
    core: Optional[Plan] = None
    post_ops: Tuple[Plan, ...] = ()
    morsel_ordinal: int = -1
    reasons: Tuple[str, ...] = ()


def parallel_split(plan: Plan) -> ParallelSplit:
    """Classify *plan* for morsel-driven execution, operator by operator.

    The decision itself lives with the pipeline IR — it is the
    parallel-eligibility annotation :func:`repro.codegen.lower.lower_plan`
    attaches to every lowered query — and this function delegates there
    (lazily, to keep ``plans`` importable without ``codegen``).  See
    :func:`repro.codegen.lower.decide_parallel` for the rules.
    """
    from ..codegen.lower import decide_parallel

    return decide_parallel(plan)


def distributed_split(plan: Plan) -> ParallelSplit:
    """Classify *plan* for sharded multi-process execution.

    Delegates to :func:`repro.codegen.lower.decide_distributed` — the
    morsel rules plus the broadcast-build allowance for inner joins.
    Left/outer joins and set operations return ``parallel=False`` with
    reasons, which ``explain()`` surfaces as the distributed fallback.
    """
    from ..codegen.lower import decide_distributed

    return decide_distributed(plan)


def _vector_fragment_reasons(
    plan: Plan, plan_types: Optional[PlanTypes]
) -> List[str]:
    """§5 restrictions shared by the native checks: node support, flat
    layouts, no whole-record values."""
    reasons: List[str] = []
    for node in _walk_plan(plan):
        if isinstance(node, _NON_VECTOR_NODES):
            reasons.append(
                f"plan node {type(node).__name__} is outside the native "
                f"fragment (§5 restrictions); use the compiled engine"
            )
    for lam, owner, children_of in _plan_lambdas(plan):
        for node in walk(lam.body):
            if isinstance(node, Member) and isinstance(node.target, Member):
                reasons.append(
                    f"nested member access {node.name!r} is not representable "
                    f"in the flat native layout (the §5 'no references' rule)"
                )
        usage = member_usage(lam.body)
        for param, producer in zip(lam.params, children_of):
            if "" not in usage.get(param, set()):
                continue
            elem = (
                plan_types.output_type(producer)
                if plan_types is not None
                else UNKNOWN
            )
            if not isinstance(elem, RecordType):
                continue  # single-value frames may use the bare variable
            if isinstance(owner, Join):
                reasons.append(
                    "native join results cannot embed whole input records "
                    "(the §5 'no references' rule); project explicit fields"
                )
            else:
                reasons.append(
                    "native code cannot manipulate whole records as values; "
                    "access their fields instead (the §5 'no references' rule)"
                )
    return reasons
