"""Heuristic plan rewrites.

LINQ-to-objects "lacks the optimization stages common in relational DBMS"
(§2.3); the paper shows that even without schema statistics a handful of
heuristic rewrites pay off.  This module implements the ones the paper
names, each independently switchable for the ablation benchmarks:

* **selection pushdown** — filters over a join result that only touch one
  input move below the join (the paper's Q3 experiment: ~35% faster);
* **predicate reordering** — conjuncts sort by estimated per-element cost,
  cheapest first;
* **filter fusion** — adjacent filters merge into one conjunction;
* **TopN fusion** — ``order_by`` followed by ``take`` becomes a bounded
  heap instead of a full sort (§2.3 "Independent operators").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import List, Optional, Tuple

from ..expressions.analysis import conjuncts, free_vars, predicate_cost
from ..expressions.nodes import Binary, Expr, Lambda, Member, New, Var
from ..expressions.visitor import substitute
from .statistics import TableStats, estimate_selectivity
from .logical import (
    Concat,
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
)

__all__ = ["OptimizeOptions", "optimize"]


@dataclass(frozen=True)
class OptimizeOptions:
    """Rewrite switches; all on by default, individually ablatable."""

    pushdown: bool = True
    reorder_predicates: bool = True
    fuse_filters: bool = True
    fuse_topn: bool = True

    @property
    def token(self) -> Tuple:
        """Options as a cache-key component."""
        return (
            self.pushdown,
            self.reorder_predicates,
            self.fuse_filters,
            self.fuse_topn,
        )


def optimize(
    plan: Plan,
    options: OptimizeOptions | None = None,
    statistics: "dict[str, TableStats] | None" = None,
    param_values: "dict | None" = None,
) -> Plan:
    """Apply all enabled rewrites until fixpoint (bounded).

    ``statistics`` maps schema tokens to :class:`TableStats`; when present,
    predicate reordering ranks conjuncts by estimated selectivity (most
    selective first) instead of raw evaluation cost.  ``param_values`` are
    the constant bindings lifted during canonicalization — resolving them
    for estimation is classic parameter sniffing.
    """
    options = options or OptimizeOptions()
    context = _Context(options, statistics or {}, param_values or {})
    for _ in range(8):  # rewrites strictly shrink/move nodes; 8 is generous
        new_plan = _rewrite(plan, context)
        if new_plan == plan:
            return new_plan
        plan = new_plan
    return plan


@dataclass(frozen=True)
class _Context:
    options: OptimizeOptions
    statistics: dict
    param_values: dict


def _rewrite(plan: Plan, context: "_Context") -> Plan:
    options = context.options
    plan = _rewrite_children(plan, context)

    if options.fuse_filters and isinstance(plan, Filter):
        plan = _fuse_filters(plan)
    if options.pushdown and isinstance(plan, Filter) and isinstance(plan.child, Join):
        plan = _push_filter_below_join(plan)
    if options.reorder_predicates and isinstance(plan, Filter):
        plan = _reorder_predicates(plan, context)
    if options.fuse_topn and isinstance(plan, Limit):
        plan = _fuse_topn(plan)
    return plan


def _rewrite_children(plan: Plan, context: "_Context") -> Plan:
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, Filter):
        return Filter(_rewrite(plan.child, context), plan.predicate)
    if isinstance(plan, Project):
        return Project(_rewrite(plan.child, context), plan.selector)
    if isinstance(plan, FlatMap):
        return FlatMap(_rewrite(plan.child, context), plan.collection, plan.result)
    if isinstance(plan, Join):
        return Join(
            _rewrite(plan.left, context),
            _rewrite(plan.right, context),
            plan.left_key,
            plan.right_key,
            plan.result,
            plan.kind,
            plan.default,
        )
    if isinstance(plan, GroupBy):
        return GroupBy(_rewrite(plan.child, context), plan.key)
    if isinstance(plan, GroupAggregate):
        return GroupAggregate(
            _rewrite(plan.child, context),
            plan.key,
            plan.aggregates,
            plan.output,
            plan.fused,
            plan.share,
        )
    if isinstance(plan, ScalarAggregate):
        return ScalarAggregate(
            _rewrite(plan.child, context), plan.aggregates, plan.output
        )
    if isinstance(plan, Sort):
        return Sort(_rewrite(plan.child, context), plan.keys, plan.descending)
    if isinstance(plan, TopN):
        return TopN(
            _rewrite(plan.child, context), plan.keys, plan.descending, plan.count
        )
    if isinstance(plan, Limit):
        return Limit(_rewrite(plan.child, context), plan.count, plan.offset)
    if isinstance(plan, Distinct):
        return Distinct(_rewrite(plan.child, context))
    if isinstance(plan, Concat):
        return Concat(_rewrite(plan.left, context), _rewrite(plan.right, context))
    if isinstance(plan, SetOp):
        return SetOp(_rewrite(plan.left, context), _rewrite(plan.right, context), plan.op)
    raise TypeError(f"not a plan node: {plan!r}")


# -- filter fusion ------------------------------------------------------------


def _merged_effects(*lambdas: Lambda):
    # lazy: repro.analysis initializes by importing this package
    from ..analysis.effects import merge_effects

    return merge_effects(lam.effects for lam in lambdas)


def _fuse_filters(plan: Filter) -> Plan:
    """Filter(Filter(x, p), q) ⇒ Filter(x, p & q) — one loop, one test site."""
    if not isinstance(plan.child, Filter):
        return plan
    inner = plan.child
    inner_var = inner.predicate.params[0]
    outer_body = substitute(
        plan.predicate.body, {plan.predicate.params[0]: Var(inner_var)}
    )
    combined = Lambda(
        (inner_var,),
        Binary("and", inner.predicate.body, outer_body),
        _merged_effects(inner.predicate, plan.predicate),
    )
    return Filter(inner.child, combined)


# -- predicate reordering ---------------------------------------------------


def _reorder_predicates(plan: Filter, context: "_Context") -> Plan:
    """Order conjuncts cheapest/most-selective first (§2.3 + §9 stats).

    Without statistics: ascending estimated evaluation cost.  With
    statistics for the scanned relation: ascending estimated selectivity
    (the conjunct expected to eliminate the most rows runs first), with
    cost as the tie-break.
    """
    parts = conjuncts(plan.predicate.body)
    if len(parts) < 2:
        return plan
    kind_of = _predicate_kind_resolver(plan, context)
    stats = _scan_statistics(plan, context)
    if stats is None:
        ordered = sorted(parts, key=lambda p: predicate_cost(p, kind_of))
    else:
        (var,) = plan.predicate.params
        resolved = [
            _resolve_params(part, context.param_values) for part in parts
        ]
        ordered_pairs = sorted(
            zip(parts, resolved),
            key=lambda pair: (
                estimate_selectivity(pair[1], var, stats),
                predicate_cost(pair[0], kind_of),
            ),
        )
        ordered = [part for part, _ in ordered_pairs]
    if ordered == parts:
        return plan
    body = reduce(lambda a, b: Binary("and", a, b), ordered)
    return Filter(
        plan.child,
        Lambda(plan.predicate.params, body, plan.predicate.effects),
    )


def _predicate_kind_resolver(plan: Filter, context: "_Context"):
    """A ``Expr -> kind`` resolver for the filtered relation, if typable.

    Built from the scanned relation's schema token via the type-inference
    pass, so ``_is_stringy`` recognises string-typed *fields* (not just
    string constants) when ranking conjuncts.  Returns ``None`` when the
    scan's element type is unknown (object sources with opaque tokens).
    """
    child = plan.child
    if not isinstance(child, Scan):
        return None
    from ..expressions.typing import UNKNOWN, kind_resolver, type_from_token

    element = type_from_token(child.schema_token)
    if element is UNKNOWN:
        return None
    (var,) = plan.predicate.params
    return kind_resolver(element, var, context.param_values)


def _scan_statistics(plan: Filter, context: "_Context"):
    """Statistics for the relation this filter scans, if registered."""
    if not context.statistics:
        return None
    child = plan.child
    if isinstance(child, Scan):
        return context.statistics.get(child.schema_token)
    return None


def _resolve_params(expr: Expr, param_values: dict) -> Expr:
    """Substitute known parameter bindings for estimation (sniffing)."""
    if not param_values:
        return expr
    from ..expressions.nodes import Constant, Param
    from ..expressions.visitor import Transformer

    class Resolve(Transformer):
        def visit_Param(self, node: Param) -> Expr:
            if node.name in param_values:
                return Constant(param_values[node.name])
            return node

    return Resolve().visit(expr)


# -- selection pushdown --------------------------------------------------------


def _push_filter_below_join(plan: Filter) -> Plan:
    """Move single-side conjuncts of a post-join filter below the join.

    Requires the join's result selector to expose the inputs directly —
    ``new(o=o, l=l)``-style fields that are bare references to the join
    lambda's parameters.  A conjunct whose member accesses all route through
    one such field is rewritten onto that input and pushed.
    """
    join = plan.child
    assert isinstance(join, Join)
    if join.kind != "inner":
        # Left joins would change the filter's meaning (pushing a right-side
        # conjunct below drops rows that the default should preserve), and
        # semi/anti joins have no result selector to expose inputs through.
        return plan
    exposure = _input_exposure(join.result)
    if not exposure:
        return plan

    pred_var = plan.predicate.params[0]
    left_parts: List[Expr] = []
    right_parts: List[Expr] = []
    kept: List[Expr] = []
    for part in conjuncts(plan.predicate.body):
        side = _single_side(part, pred_var, exposure)
        if side is None:
            kept.append(part)
            continue
        field_name, input_index = side
        rewritten = _strip_field(part, pred_var, field_name, "__elem")
        (left_parts if input_index == 0 else right_parts).append(rewritten)

    if not left_parts and not right_parts:
        return plan

    left = join.left
    right = join.right
    effects = plan.predicate.effects
    if left_parts:
        body = reduce(lambda a, b: Binary("and", a, b), left_parts)
        left = Filter(left, Lambda(("__elem",), body, effects))
    if right_parts:
        body = reduce(lambda a, b: Binary("and", a, b), right_parts)
        right = Filter(right, Lambda(("__elem",), body, effects))
    new_join = Join(left, right, join.left_key, join.right_key, join.result)
    if not kept:
        return new_join
    kept_body = reduce(lambda a, b: Binary("and", a, b), kept)
    return Filter(new_join, Lambda((pred_var,), kept_body, effects))


def _input_exposure(result: Lambda) -> dict:
    """Map result-record field name → join input index (0=left, 1=right).

    Only fields that are *bare* parameter references count: ``new(o=o,
    l=l)`` exposes both inputs; ``new(total=o.x + l.y)`` exposes neither.
    """
    if not isinstance(result.body, New):
        return {}
    left_var, right_var = result.params
    exposure = {}
    for name, expr in result.body.fields:
        if expr == Var(left_var):
            exposure[name] = 0
        elif expr == Var(right_var):
            exposure[name] = 1
    return exposure


def _single_side(
    part: Expr, pred_var: str, exposure: dict
) -> Optional[Tuple[str, int]]:
    """If every access in *part* routes through one exposed field, name it."""
    if free_vars(part) - {pred_var}:
        return None
    fields_used = set()
    ok = _collect_root_fields(part, pred_var, fields_used)
    if not ok or len(fields_used) != 1:
        return None
    (field_name,) = fields_used
    if field_name not in exposure:
        return None
    return field_name, exposure[field_name]


def _collect_root_fields(expr: Expr, pred_var: str, out: set) -> bool:
    """Record `pred_var.<field>` roots; False when pred_var is used rawly."""
    if isinstance(expr, Member):
        inner = expr
        path = []
        while isinstance(inner, Member):
            path.append(inner.name)
            inner = inner.target
        if inner == Var(pred_var):
            if len(path) < 2:
                return False  # accesses `row.field` directly, not `row.field.x`
            out.add(path[-1])
            return True
        return _collect_root_fields(inner, pred_var, out)
    if expr == Var(pred_var):
        return False
    from ..expressions.nodes import children

    return all(_collect_root_fields(c, pred_var, out) for c in children(expr))


def _strip_field(expr: Expr, pred_var: str, field_name: str, new_var: str) -> Expr:
    """Rewrite ``pred_var.<field_name>.rest`` into ``new_var.rest``."""
    from ..expressions.visitor import Transformer

    class Strip(Transformer):
        def visit_Member(self, node: Member) -> Expr:
            if node.target == Var(pred_var) and node.name == field_name:
                return Var(new_var)
            return self.generic_visit(node)

    return Strip().visit(expr)


# -- top-n fusion ---------------------------------------------------------------


def _fuse_topn(plan: Limit) -> Plan:
    """Limit(Sort(x)) ⇒ TopN(x): bounded heap instead of a full sort."""
    if plan.offset is not None or plan.count is None:
        return plan
    if not isinstance(plan.child, Sort):
        return plan
    sort = plan.child
    return TopN(sort.child, sort.keys, sort.descending, plan.count)
