"""Expression tree → logical plan translation.

The analogue of the paper's ``ExpressionTreeTranslator``: walks the
``QueryOp`` spine bottom-up and produces the plan the code generators
consume.  Key reshapings performed here:

* ``group_by(key)`` followed by a ``select`` whose selector aggregates the
  group collapses into a single :class:`~repro.plans.logical.GroupAggregate`
  — grouping and aggregation in one pass (paper §2.3);
* duplicated aggregate expressions inside one selector share a physical
  :class:`~repro.plans.logical.AggregateSpec` (common-subexpression
  elimination — the paper's "overlaps in the aggregation computations");
* ``order_by``/``then_by`` chains merge into one multi-key ``Sort``;
* terminal scalar aggregates (``count``, ``sum``, ...) become
  :class:`~repro.plans.logical.ScalarAggregate`.

Both reshapings are controlled by :class:`TranslateOptions` so benchmarks
can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import TranslationError
from ..expressions.nodes import (
    AggCall,
    Expr,
    Lambda,
    Member,
    QueryOp,
    SourceExpr,
    Var,
)
from ..expressions.analysis import contains_aggregate
from ..expressions.visitor import Transformer
from .logical import (
    AggregateSpec,
    Concat,
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
)

__all__ = ["TranslateOptions", "translate"]


@dataclass(frozen=True)
class TranslateOptions:
    """Knobs for the translation-time reshapings (ablation switches)."""

    #: collapse group_by + aggregating select into one-pass GroupAggregate
    fuse_aggregates: bool = True
    #: share identical aggregate expressions (CSE) within one selector
    share_aggregates: bool = True


def translate(expr: Expr, options: TranslateOptions | None = None) -> Plan:
    """Translate a query expression tree into a logical plan."""
    options = options or TranslateOptions()
    return _Translator(options).translate(expr)


class _Translator:
    def __init__(self, options: TranslateOptions):
        self._options = options

    def translate(self, expr: Expr) -> Plan:
        if isinstance(expr, SourceExpr):
            return Scan(expr.ordinal, expr.schema_token)
        if not isinstance(expr, QueryOp):
            raise TranslationError(
                f"expected a query expression, got {type(expr).__name__}"
            )
        handler = getattr(self, f"_op_{expr.name}", None)
        if handler is None:
            raise TranslationError(f"operator {expr.name!r} has no plan translation")
        return handler(expr)

    # -- pipelined operators -------------------------------------------------

    def _op_where(self, expr: QueryOp) -> Plan:
        (predicate,) = expr.args
        return Filter(self.translate(expr.source), _as_lambda(predicate, 1))

    def _op_select(self, expr: QueryOp) -> Plan:
        (selector,) = expr.args
        selector = _as_lambda(selector, 1)
        source = expr.source
        if (
            self._options.fuse_aggregates
            and isinstance(source, QueryOp)
            and source.name == "group_by"
            and len(source.args) == 1
            and contains_aggregate(selector)
        ):
            # group_by(key) . select(aggregating) ⇒ one-pass GroupAggregate
            (key,) = source.args
            return self._make_group_aggregate(
                self.translate(source.source), _as_lambda(key, 1), selector
            )
        if contains_aggregate(selector):
            # selecting over groups without fusion: aggregate per group
            return self._project_over_groups(source, selector)
        return Project(self.translate(source), selector)

    def _op_select_many(self, expr: QueryOp) -> Plan:
        collection = _as_lambda(expr.args[0], 1)
        result = _as_lambda(expr.args[1], 2) if len(expr.args) > 1 else None
        return FlatMap(self.translate(expr.source), collection, result)

    def _op_join(self, expr: QueryOp) -> Plan:
        inner, outer_key, inner_key, result = expr.args
        return Join(
            left=self.translate(expr.source),
            right=self.translate(inner),
            left_key=_as_lambda(outer_key, 1),
            right_key=_as_lambda(inner_key, 1),
            result=_as_lambda(result, 2),
        )

    def _op_left_outer_join(self, expr: QueryOp) -> Plan:
        inner, outer_key, inner_key, result, default = expr.args
        return Join(
            left=self.translate(expr.source),
            right=self.translate(inner),
            left_key=_as_lambda(outer_key, 1),
            right_key=_as_lambda(inner_key, 1),
            result=_as_lambda(result, 2),
            kind="left",
            default=default,
        )

    def _op_join_semi(self, expr: QueryOp) -> Plan:
        return self._existence_join(expr, "semi")

    def _op_join_anti(self, expr: QueryOp) -> Plan:
        return self._existence_join(expr, "anti")

    def _existence_join(self, expr: QueryOp, kind: str) -> Plan:
        inner, outer_key, inner_key = expr.args
        return Join(
            left=self.translate(expr.source),
            right=self.translate(inner),
            left_key=_as_lambda(outer_key, 1),
            right_key=_as_lambda(inner_key, 1),
            result=None,
            kind=kind,
        )

    # -- grouping -----------------------------------------------------------

    def _op_group_by(self, expr: QueryOp) -> Plan:
        child = self.translate(expr.source)
        key = _as_lambda(expr.args[0], 1)
        if len(expr.args) == 1:
            return GroupBy(child, key)
        result = _as_lambda(expr.args[1], 1)
        if self._options.fuse_aggregates and contains_aggregate(result):
            return self._make_group_aggregate(child, key, result)
        # unfused: materialize groups, then evaluate the selector per group
        return Project(GroupBy(child, key), result)

    def _project_over_groups(self, source: Expr, selector: Lambda) -> Plan:
        plan = self.translate(source)
        if not isinstance(plan, GroupBy):
            raise TranslationError(
                "aggregate calls are only valid in selectors over group_by results"
            )
        return Project(plan, selector)

    def _make_group_aggregate(
        self, child: Plan, key: Lambda, result: Lambda
    ) -> GroupAggregate:
        specs, output = _extract_aggregates(
            result, share=self._options.share_aggregates
        )
        return GroupAggregate(
            child=child,
            key=key,
            aggregates=tuple(specs),
            output=output,
            fused=True,
            share=self._options.share_aggregates,
        )

    # -- ordering -------------------------------------------------------------

    def _op_order_by(self, expr: QueryOp) -> Plan:
        return Sort(
            self.translate(expr.source), (_as_lambda(expr.args[0], 1),), (False,)
        )

    def _op_order_by_desc(self, expr: QueryOp) -> Plan:
        return Sort(
            self.translate(expr.source), (_as_lambda(expr.args[0], 1),), (True,)
        )

    def _op_then_by(self, expr: QueryOp) -> Plan:
        return self._extend_sort(expr, descending=False)

    def _op_then_by_desc(self, expr: QueryOp) -> Plan:
        return self._extend_sort(expr, descending=True)

    def _extend_sort(self, expr: QueryOp, descending: bool) -> Plan:
        child = self.translate(expr.source)
        if not isinstance(child, Sort):
            raise TranslationError("then_by must directly follow order_by")
        key = _as_lambda(expr.args[0], 1)
        return Sort(child.child, child.keys + (key,), child.descending + (descending,))

    # -- limiting / set ops ------------------------------------------------------

    def _op_take(self, expr: QueryOp) -> Plan:
        return Limit(self.translate(expr.source), count=expr.args[0])

    def _op_skip(self, expr: QueryOp) -> Plan:
        return Limit(self.translate(expr.source), offset=expr.args[0])

    def _op_distinct(self, expr: QueryOp) -> Plan:
        return Distinct(self.translate(expr.source))

    def _op_concat(self, expr: QueryOp) -> Plan:
        return Concat(self.translate(expr.source), self.translate(expr.args[0]))

    def _op_union(self, expr: QueryOp) -> Plan:
        return Distinct(
            Concat(self.translate(expr.source), self.translate(expr.args[0]))
        )

    def _op_union_all(self, expr: QueryOp) -> Plan:
        return Concat(self.translate(expr.source), self.translate(expr.args[0]))

    def _op_intersect(self, expr: QueryOp) -> Plan:
        return SetOp(
            self.translate(expr.source), self.translate(expr.args[0]), "intersect"
        )

    def _op_except_(self, expr: QueryOp) -> Plan:
        return SetOp(
            self.translate(expr.source), self.translate(expr.args[0]), "except"
        )

    # -- terminal scalar aggregates -------------------------------------------

    def _op_count(self, expr: QueryOp) -> Plan:
        child_expr = expr.source
        if expr.args:  # count(predicate) ≡ where(predicate).count()
            child_expr = QueryOp("where", child_expr, (expr.args[0],))
        return ScalarAggregate(
            child=self.translate(child_expr),
            aggregates=(AggregateSpec("count", None),),
            output=Var("__agg0"),
        )

    def _scalar_agg(self, expr: QueryOp, kind: str) -> Plan:
        if expr.args:
            selector = _as_lambda(expr.args[0], 1)
        else:
            selector = Lambda(("x",), Var("x"))
        return ScalarAggregate(
            child=self.translate(expr.source),
            aggregates=(AggregateSpec(kind, selector),),
            output=Var("__agg0"),
        )

    def _op_sum(self, expr: QueryOp) -> Plan:
        return self._scalar_agg(expr, "sum")

    def _op_min(self, expr: QueryOp) -> Plan:
        return self._scalar_agg(expr, "min")

    def _op_max(self, expr: QueryOp) -> Plan:
        return self._scalar_agg(expr, "max")

    def _op_average(self, expr: QueryOp) -> Plan:
        return self._scalar_agg(expr, "avg")


def _as_lambda(expr: Expr, arity: int) -> Lambda:
    if not isinstance(expr, Lambda):
        raise TranslationError(f"expected a lambda argument, got {type(expr).__name__}")
    if len(expr.params) != arity:
        raise TranslationError(
            f"expected a {arity}-ary lambda, got {len(expr.params)}-ary"
        )
    return expr


class _AggregateExtractor(Transformer):
    """Rewrites a group result selector into GroupAggregate form.

    Each ``AggCall`` over the group variable becomes ``Var('__agg<i>')``;
    ``<group>.key`` becomes ``Var('__key')``.  With sharing enabled,
    structurally identical aggregates collapse onto one index.
    """

    def __init__(self, group_var: str, share: bool):
        self._group_var = group_var
        self._share = share
        self.specs: List[AggregateSpec] = []
        self._index_by_key: Dict[object, int] = {}

    def visit_AggCall(self, expr: AggCall) -> Expr:
        if expr.group != Var(self._group_var):
            raise TranslationError(
                f"aggregate over unexpected variable {expr.group!r}; "
                f"expected the group parameter {self._group_var!r}"
            )
        spec = AggregateSpec(expr.kind, expr.arg)
        if self._share:
            index = self._index_by_key.get(spec.key)
            if index is None:
                index = len(self.specs)
                self._index_by_key[spec.key] = index
                self.specs.append(spec)
        else:
            index = len(self.specs)
            self.specs.append(spec)
        return Var(f"__agg{index}")

    def visit_Member(self, expr: Member) -> Expr:
        if expr.target == Var(self._group_var) and expr.name == "key":
            return Var("__key")
        return self.generic_visit(expr)

    def visit_Var(self, expr: Var) -> Expr:
        if expr.name == self._group_var:
            raise TranslationError(
                "the group itself cannot be used outside .key and aggregate "
                "calls in a fused aggregation selector"
            )
        return expr


def _extract_aggregates(
    selector: Lambda, share: bool
) -> Tuple[List[AggregateSpec], Expr]:
    (group_var,) = selector.params
    extractor = _AggregateExtractor(group_var, share)
    output = extractor.visit(selector.body)
    if not extractor.specs:
        raise TranslationError("group selector contains no aggregates to fuse")
    return extractor.specs, output
