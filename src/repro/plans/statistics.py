"""Column statistics — a §9 future-work extension.

§2.3 notes that LINQ "lacks the optimization stages common in relational
DBMS due to the lack of semantic information (e.g., schemata, histograms)"
and the conclusion lists histogram support as future work.  This module
supplies that semantic information: per-column row counts, distinct-value
counts and min/max bounds, collected in one vectorized pass, plus the
textbook selectivity estimates the optimizer uses to order predicates by
*expected qualifying fraction* instead of raw evaluation cost.

Statistics are registered with the provider per schema token
(:meth:`repro.query.provider.QueryProvider.register_statistics`).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..expressions.nodes import Binary, Constant, Expr, Member, Method, Unary, Var
from ..storage.schema import date_to_days
from ..storage.struct_array import StructArray

__all__ = ["ColumnStats", "TableStats", "estimate_selectivity", "DEFAULT_SELECTIVITY"]

#: fallback when nothing is known (the classic System-R 1/3)
DEFAULT_SELECTIVITY = 1 / 3
_EQ_FALLBACK = 0.1
_STRING_MATCH = 0.1


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column: cardinalities and value bounds."""

    count: int
    distinct: int
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    @property
    def equality_selectivity(self) -> float:
        if self.distinct <= 0:
            return _EQ_FALLBACK
        return 1.0 / self.distinct

    def range_selectivity(self, op: str, value: float) -> float:
        """Uniform-distribution estimate for ``column <op> value``."""
        if self.minimum is None or self.maximum is None:
            return DEFAULT_SELECTIVITY
        span = self.maximum - self.minimum
        if span <= 0:
            return 1.0 if self.minimum == value else 0.0
        fraction = (value - self.minimum) / span
        fraction = min(1.0, max(0.0, fraction))
        if op in ("lt", "le"):
            return fraction
        if op in ("gt", "ge"):
            return 1.0 - fraction
        return DEFAULT_SELECTIVITY


class TableStats:
    """Per-column statistics for one relation."""

    def __init__(self, columns: Dict[str, ColumnStats], row_count: int):
        self.columns = columns
        self.row_count = row_count

    @classmethod
    def collect(cls, source: Any, sample: int = 100_000) -> "TableStats":
        """Collect from a StructArray (vectorized) or an object list."""
        if isinstance(source, StructArray):
            return cls._collect_struct_array(source)
        return cls._collect_objects(source, sample)

    @classmethod
    def _collect_struct_array(cls, array: StructArray) -> "TableStats":
        columns = {}
        for field in array.schema.fields:
            column = array.column(field.name)
            distinct = len(np.unique(column))
            if np.issubdtype(column.dtype, np.number) and len(column):
                minimum = float(column.min())
                maximum = float(column.max())
            else:
                minimum = maximum = None
            columns[field.name] = ColumnStats(
                count=len(column),
                distinct=distinct,
                minimum=minimum,
                maximum=maximum,
            )
        return cls(columns, len(array))

    @classmethod
    def _collect_objects(cls, items: Any, sample: int) -> "TableStats":
        rows = 0
        values: Dict[str, set] = {}
        bounds: Dict[str, list] = {}
        for item in items:
            if rows >= sample:
                break
            rows += 1
            source = vars(item) if hasattr(item, "__dict__") else (
                item._asdict() if hasattr(item, "_asdict") else {}
            )
            for name, value in source.items():
                values.setdefault(name, set()).add(value)
                numeric = _as_number(value)
                if numeric is not None:
                    bound = bounds.setdefault(name, [numeric, numeric])
                    bound[0] = min(bound[0], numeric)
                    bound[1] = max(bound[1], numeric)
        columns = {}
        for name, seen in values.items():
            low, high = bounds.get(name, (None, None))
            columns[name] = ColumnStats(
                count=rows, distinct=len(seen), minimum=low, maximum=high
            )
        return cls(columns, rows)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def __repr__(self) -> str:
        return f"TableStats(rows={self.row_count}, columns={sorted(self.columns)})"


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(date_to_days(value))
    return None


def estimate_selectivity(conjunct: Expr, var: str, stats: TableStats) -> float:
    """Estimated qualifying fraction of one predicate conjunct.

    Understands ``column <cmp> constant`` shapes (both operand orders),
    negation, disjunction, and string-method predicates; anything opaque
    gets the default selectivity.
    """
    if isinstance(conjunct, Unary) and conjunct.op == "not":
        return 1.0 - estimate_selectivity(conjunct.operand, var, stats)
    if isinstance(conjunct, Binary) and conjunct.op == "or":
        left = estimate_selectivity(conjunct.left, var, stats)
        right = estimate_selectivity(conjunct.right, var, stats)
        return min(1.0, left + right - left * right)
    if isinstance(conjunct, Binary) and conjunct.op == "and":
        return estimate_selectivity(conjunct.left, var, stats) * estimate_selectivity(
            conjunct.right, var, stats
        )
    if isinstance(conjunct, Method):
        return _STRING_MATCH
    if isinstance(conjunct, Binary):
        column_stats, op, value = _column_comparison(conjunct, var, stats)
        if column_stats is None:
            return DEFAULT_SELECTIVITY
        if op == "eq":
            return column_stats.equality_selectivity
        if op == "ne":
            return 1.0 - column_stats.equality_selectivity
        if value is None:
            return DEFAULT_SELECTIVITY
        return column_stats.range_selectivity(op, value)
    return DEFAULT_SELECTIVITY


_FLIPPED = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}


def _column_comparison(expr: Binary, var: str, stats: TableStats):
    """Decompose ``column <op> value``; returns (stats, op, numeric_value)."""
    for member, other, op in (
        (expr.left, expr.right, expr.op),
        (expr.right, expr.left, _FLIPPED.get(expr.op)),
    ):
        if (
            op is not None
            and isinstance(member, Member)
            and member.target == Var(var)
        ):
            column_stats = stats.column(member.name)
            if column_stats is None:
                return None, None, None
            value = (
                _as_number(other.value) if isinstance(other, Constant) else None
            )
            return column_stats, op, value
    return None, None, None
