"""Logical plan nodes.

The paper's ``ExpressionTreeTranslator`` (§4.2) turns the expression tree
into a "tree representation of the source code".  We split that step in
two: first an expression tree becomes a *logical plan* (this module), then
each backend walks the plan to emit code.  The plan layer is where loop
boundaries become visible — pipelined operators (Filter, Project, the probe
side of Join) fuse into one loop; blocking operators (GroupAggregate, Sort,
the build side of Join) end a loop and start the next, exactly the paper's
"each loop either produces the final result of a query or an intermediate
result of a blocking operation".

All expressions inside plan nodes are :class:`~repro.expressions.nodes.Lambda`
values over the child's output element(s); engines inline them by variable
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..expressions.nodes import Expr, Lambda, structural_key

__all__ = [
    "Plan",
    "Scan",
    "Filter",
    "Project",
    "FlatMap",
    "Join",
    "GroupBy",
    "AggregateSpec",
    "GroupAggregate",
    "ScalarAggregate",
    "Sort",
    "TopN",
    "Limit",
    "Distinct",
    "Concat",
    "SetOp",
    "JOIN_KINDS",
    "SETOP_KINDS",
    "plan_children",
    "plan_key",
    "is_blocking",
    "plan_to_text",
]


class Plan:
    """Abstract base for logical plan nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Scan(Plan):
    """Iterate one input collection.

    ``ordinal`` indexes into the source list supplied at execution time;
    ``schema_token`` identifies the element type for cache-keying and (for
    struct-array sources) schema recovery.
    """

    ordinal: int
    schema_token: str


@dataclass(frozen=True)
class Filter(Plan):
    """Keep elements satisfying ``predicate`` (a 1-ary lambda)."""

    child: Plan
    predicate: Lambda


@dataclass(frozen=True)
class Project(Plan):
    """Map each element through ``selector`` (a 1-ary lambda)."""

    child: Plan
    selector: Lambda


@dataclass(frozen=True)
class FlatMap(Plan):
    """``select_many``: flatten a per-element collection selector."""

    child: Plan
    collection: Lambda
    #: optional 2-ary (element, inner) result selector
    result: Optional[Lambda] = None


#: join kinds understood by every engine; semi/anti carry no result lambda
JOIN_KINDS = ("inner", "left", "semi", "anti")


@dataclass(frozen=True)
class Join(Plan):
    """Equi-join; the build side is ``right`` (hash table), probe is ``left``.

    ``result`` is a 2-ary lambda (left element, right element) for
    ``inner`` and ``left`` joins; semi/anti joins (``EXISTS`` /
    ``NOT EXISTS``) pass the left element through unchanged and carry
    ``result=None``.  A ``left`` join substitutes ``default`` — an
    expression over constants/params producing the stand-in right element
    — for unmatched probe rows; the type system has no nulls, so the
    default record *is* the null representation (see DESIGN.md §13).
    """

    left: Plan
    right: Plan
    left_key: Lambda
    right_key: Lambda
    result: Optional[Lambda]
    kind: str = "inner"
    default: Optional[Expr] = None

    def __post_init__(self):
        if self.kind not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {self.kind!r}")
        if self.kind in ("semi", "anti"):
            if self.result is not None:
                raise ValueError(f"{self.kind} joins carry no result selector")
        elif self.result is None:
            raise ValueError(f"{self.kind} joins require a result selector")
        if self.default is not None and self.kind != "left":
            raise ValueError("only left joins take a default element")


@dataclass(frozen=True)
class GroupBy(Plan):
    """Materializes groups as :class:`~repro.runtime.hashtable.Grouping`s.

    Only reached when the query consumes groups directly; a ``group_by``
    followed by an aggregating ``select`` translates to
    :class:`GroupAggregate` instead.
    """

    child: Plan
    key: Lambda


@dataclass(frozen=True)
class AggregateSpec:
    """One physical aggregate computed by a GroupAggregate/ScalarAggregate."""

    kind: str
    #: 1-ary value selector; None only for count
    selector: Optional[Lambda]

    @property
    def key(self) -> Any:
        selector_key = structural_key(self.selector) if self.selector else None
        return (self.kind, selector_key)


@dataclass(frozen=True)
class GroupAggregate(Plan):
    """Hash grouping + aggregation collapsed into one pass (paper §2.3).

    ``output`` is the group result selector body with every ``AggCall``
    replaced by ``Var('__agg<i>')`` (index into ``aggregates``) and the
    group key available as ``Var('__key')``.  When ``fused`` is False the
    engines intentionally fall back to materialize-groups-then-scan-per-
    aggregate — the ablation matching LINQ-to-objects behaviour.
    """

    child: Plan
    key: Lambda
    aggregates: Tuple[AggregateSpec, ...]
    output: Expr
    fused: bool = True
    #: False ⇒ backends must not share physical accumulator slots between
    #: aggregates (the §2.3 duplicate-computation ablation)
    share: bool = True


@dataclass(frozen=True)
class ScalarAggregate(Plan):
    """Whole-input aggregation (terminal ``sum`` / ``count`` / ...).

    Produces exactly one value, described like :class:`GroupAggregate`'s
    output but with no key.
    """

    child: Plan
    aggregates: Tuple[AggregateSpec, ...]
    output: Expr


@dataclass(frozen=True)
class Sort(Plan):
    """Full sort by one or more keys with per-key direction."""

    child: Plan
    keys: Tuple[Lambda, ...]
    descending: Tuple[bool, ...]


@dataclass(frozen=True)
class TopN(Plan):
    """Fused ``order_by``+``take``: bounded-heap top-N (paper §2.3)."""

    child: Plan
    keys: Tuple[Lambda, ...]
    descending: Tuple[bool, ...]
    count: Expr


@dataclass(frozen=True)
class Limit(Plan):
    """``take`` / ``skip``; either bound may be absent."""

    child: Plan
    count: Optional[Expr] = None
    offset: Optional[Expr] = None


@dataclass(frozen=True)
class Distinct(Plan):
    """Duplicate elimination by element value."""

    child: Plan


@dataclass(frozen=True)
class Concat(Plan):
    """Append ``right`` after ``left``."""

    left: Plan
    right: Plan


#: bag-semantics set operations implemented by SetOp
SETOP_KINDS = ("intersect", "except")


@dataclass(frozen=True)
class SetOp(Plan):
    """Bag-semantics ``intersect``/``except`` (the *ALL* variants).

    ``right`` is the build side (a multiset of element counts); ``left``
    streams through it preserving order.  Multiset algebra: intersect
    keeps ``min(l, r)`` copies of each element, except keeps
    ``max(0, l - r)`` — both realized by probe-and-decrement, so the
    surviving copies are the *first* occurrences in left order.
    """

    left: Plan
    right: Plan
    op: str

    def __post_init__(self):
        if self.op not in SETOP_KINDS:
            raise ValueError(f"unknown set operation {self.op!r}")


def plan_children(plan: Plan) -> Tuple[Plan, ...]:
    """Direct child plans, in evaluation order."""
    if isinstance(plan, Scan):
        return ()
    if isinstance(plan, (Join, Concat, SetOp)):
        return (plan.left, plan.right)
    return (plan.child,)  # type: ignore[attr-defined]


def is_blocking(plan: Plan) -> bool:
    """True when *plan* must consume all input before producing output."""
    return isinstance(
        plan, (GroupBy, GroupAggregate, ScalarAggregate, Sort, TopN, Distinct)
    )


def plan_key(plan: Plan) -> Any:
    """Structural key of a plan (used in cache keys and tests)."""

    def expr_key(e):
        return structural_key(e) if e is not None else None

    if isinstance(plan, Scan):
        return ("scan", plan.ordinal, plan.schema_token)
    if isinstance(plan, Filter):
        return ("filter", plan_key(plan.child), expr_key(plan.predicate))
    if isinstance(plan, Project):
        return ("project", plan_key(plan.child), expr_key(plan.selector))
    if isinstance(plan, FlatMap):
        return (
            "flatmap",
            plan_key(plan.child),
            expr_key(plan.collection),
            expr_key(plan.result),
        )
    if isinstance(plan, Join):
        return (
            "join",
            plan.kind,
            plan_key(plan.left),
            plan_key(plan.right),
            expr_key(plan.left_key),
            expr_key(plan.right_key),
            expr_key(plan.result),
            expr_key(plan.default),
        )
    if isinstance(plan, GroupBy):
        return ("groupby", plan_key(plan.child), expr_key(plan.key))
    if isinstance(plan, GroupAggregate):
        return (
            "groupagg",
            plan_key(plan.child),
            expr_key(plan.key),
            tuple((a.kind, expr_key(a.selector)) for a in plan.aggregates),
            expr_key(plan.output),
            plan.fused,
            plan.share,
        )
    if isinstance(plan, ScalarAggregate):
        return (
            "scalaragg",
            plan_key(plan.child),
            tuple((a.kind, expr_key(a.selector)) for a in plan.aggregates),
            expr_key(plan.output),
        )
    if isinstance(plan, Sort):
        return (
            "sort",
            plan_key(plan.child),
            tuple(expr_key(k) for k in plan.keys),
            plan.descending,
        )
    if isinstance(plan, TopN):
        return (
            "topn",
            plan_key(plan.child),
            tuple(expr_key(k) for k in plan.keys),
            plan.descending,
            expr_key(plan.count),
        )
    if isinstance(plan, Limit):
        return (
            "limit",
            plan_key(plan.child),
            expr_key(plan.count),
            expr_key(plan.offset),
        )
    if isinstance(plan, Distinct):
        return ("distinct", plan_key(plan.child))
    if isinstance(plan, Concat):
        return ("concat", plan_key(plan.left), plan_key(plan.right))
    if isinstance(plan, SetOp):
        return ("setop", plan.op, plan_key(plan.left), plan_key(plan.right))
    raise TypeError(f"not a plan node: {plan!r}")


def _conjunct_summaries(predicate: Lambda) -> list:
    """Short per-conjunct labels (first member touched), in plan order.

    EXPLAIN-style visibility into predicate ordering — the thing the
    statistics-driven reordering changes.
    """
    from ..expressions.analysis import conjuncts
    from ..expressions.nodes import Member, walk

    labels = []
    for part in conjuncts(predicate.body):
        member = next(
            (node.name for node in walk(part) if isinstance(node, Member)), "?"
        )
        labels.append(member)
    return labels


def plan_to_text(plan: Plan, indent: int = 0) -> str:
    """Readable multi-line rendering for debugging and EXPLAIN output."""
    pad = "  " * indent
    name = type(plan).__name__
    details = ""
    if isinstance(plan, Scan):
        details = f"(source_{plan.ordinal}: {plan.schema_token.split('(')[0]})"
    elif isinstance(plan, Filter):
        details = f"(on {', '.join(_conjunct_summaries(plan.predicate))})"
    elif isinstance(plan, GroupAggregate):
        kinds = ",".join(a.kind for a in plan.aggregates)
        details = f"(aggs=[{kinds}], fused={plan.fused})"
    elif isinstance(plan, ScalarAggregate):
        details = f"(aggs=[{','.join(a.kind for a in plan.aggregates)}])"
    elif isinstance(plan, (Sort, TopN)):
        details = f"(keys={len(plan.keys)}, desc={plan.descending})"
    elif isinstance(plan, Join) and plan.kind != "inner":
        details = f"(kind={plan.kind})"
    elif isinstance(plan, SetOp):
        details = f"(op={plan.op})"
    lines = [f"{pad}{name}{details}"]
    for child in plan_children(plan):
        lines.append(plan_to_text(child, indent + 1))
    return "\n".join(lines)
