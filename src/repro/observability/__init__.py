"""Query-lifecycle observability: tracing, metrics, and EXPLAIN.

The flight recorder for the canonicalize → analyze → optimize → codegen →
compile → execute pipeline (and the morsel-parallel runtime riding on
it).  Three instruments:

* :mod:`~repro.observability.tracer` — nested, monotonic-clock spans,
  near-free while disabled (``REPRO_TRACE=1`` or ``using(trace=True)``
  turns them on);
* :mod:`~repro.observability.metrics` — always-on counters/histograms
  (cache hits, compile wall time per engine, lock contention, recycler
  reuse), exportable as a dict or JSON lines;
* :mod:`~repro.observability.explain` — ``Query.explain()`` /
  ``Query.explain_analyze()``, the user-facing fold of plan + capability
  verdicts + measured spans.

``explain`` is imported lazily: it reaches into the query package, which
itself imports the tracer — eager import here would cycle.
"""

from .metrics import METRICS, Counter, Histogram, MetricsRegistry
from .tracer import TRACER, SpanRecord, Tracer

__all__ = [
    "TRACER",
    "Tracer",
    "SpanRecord",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Histogram",
    "ExplainReport",
    "ExplainAnalysis",
    "explain_report",
    "explain_analyze",
]

_EXPLAIN_NAMES = {
    "ExplainReport",
    "ExplainAnalysis",
    "explain_report",
    "explain_analyze",
}


def __getattr__(name):
    if name in _EXPLAIN_NAMES:
        from . import explain as _explain

        return getattr(_explain, name)
    raise AttributeError(f"module 'repro.observability' has no attribute {name!r}")
