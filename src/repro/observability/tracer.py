"""Nested, low-overhead query spans — the flight recorder's clock.

The provider emits a span around every lifecycle phase (canonicalize →
analyze → optimize → codegen → compile → execute) and the parallel
runtime emits one per morsel dispatch and merge.  Design constraints, in
order:

1. **Near-zero cost when off.**  Tracing is disabled by default; the hot
   path then pays one attribute read and one ``or`` per ``span()`` call
   (a shared no-op context manager is returned — no allocation).  The
   ``REPRO_TRACE`` environment variable or :meth:`Tracer.enable` turns it
   on; ``Query.using(trace=True)`` scopes it to one query.
2. **Monotonic clock.**  All timestamps come from
   :func:`time.perf_counter` — wall-clock adjustments never produce
   negative phase durations.
3. **Thread safety.**  Spans may open and close on any thread (morsel
   kernels run on a pool); the record buffer is lock-protected and the
   nesting stack is thread-local, so parent/child links never cross
   threads.
4. **Zero dependencies.**  Stdlib only; importable from every layer
   without cycles.

Spans are flat records after the fact (name, start, end, parent id,
depth, attributes) — :mod:`repro.observability.explain` folds them back
into the annotated plan tree, and ``to_json_lines`` exports them for
offline tooling.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["SpanRecord", "Tracer", "TRACER", "trace_enabled_from_env"]

#: retained finished spans; older records roll off (the recorder flies on)
MAX_RECORDS = 100_000


def trace_enabled_from_env() -> bool:
    """True when ``REPRO_TRACE`` asks for always-on tracing."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


@dataclass
class SpanRecord:
    """One finished span: a named interval on the monotonic clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    depth: int
    thread: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is inactive."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    """A live span: context manager pushing onto the thread's stack."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "_span_id",
        "_parent_id",
        "_depth",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to the span (e.g. ``sp.set(rows=n)``)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        self._span_id = next(tracer._ids)
        self._parent_id = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        self._tracer._emit(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self.name,
                start=self._start,
                end=end,
                depth=self._depth,
                thread=threading.get_ident(),
                attrs=self.attrs,
            )
        )


class Tracer:
    """Thread-safe span recorder with an inactive fast path.

    The tracer is *active* when globally enabled (``REPRO_TRACE`` /
    :meth:`enable`) or while at least one :meth:`capture` sink is open —
    ``explain_analyze`` uses a capture so it can observe one query's
    spans without turning tracing on for the whole process.
    """

    def __init__(self, enabled: Optional[bool] = None, max_records: int = MAX_RECORDS):
        self._enabled = trace_enabled_from_env() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._records: "deque[SpanRecord]" = deque(maxlen=max_records)
        self._sinks: List[List[SpanRecord]] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()

    # -- activation -------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._enabled or bool(self._sinks)

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def scope(self, enabled: bool = True):
        """Temporarily force tracing on (or off) — ``using(trace=...)``."""
        return _Scope(self, enabled)

    def capture(self):
        """Collect every span finished while the context is open.

        ::

            with TRACER.capture() as spans:
                query.to_list()
            # spans: List[SpanRecord], all threads included
        """
        return _Capture(self)

    # -- span API ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context-managed span; a shared no-op while inactive."""
        if not (self._enabled or self._sinks):
            return _NOOP
        return _Span(self, name, attrs)

    def record(self, name: str, start: float, end: float, **attrs: Any) -> None:
        """Record an interval measured externally (no nesting stack).

        Used for spans whose lifetime outlives a ``with`` block — e.g.
        the lazy result iterator, whose "execute" interval only closes
        when the consumer exhausts it.
        """
        if not (self._enabled or self._sinks):
            return
        self._emit(
            SpanRecord(
                span_id=next(self._ids),
                parent_id=None,
                name=name,
                start=start,
                end=end,
                depth=0,
                thread=threading.get_ident(),
                attrs=attrs,
            )
        )

    # -- inspection -------------------------------------------------------------

    def spans(self) -> List[SpanRecord]:
        """Snapshot of the retained records (oldest first)."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

    def to_json_lines(self) -> str:
        """The retained spans as JSON lines (one object per span)."""
        return "\n".join(json.dumps(r.to_dict()) for r in self.spans())

    # -- internals --------------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            if self._enabled:
                self._records.append(record)
            for sink in self._sinks:
                sink.append(record)


class _Scope:
    __slots__ = ("_tracer", "_enabled", "_previous")

    def __init__(self, tracer: Tracer, enabled: bool):
        self._tracer = tracer
        self._enabled = enabled

    def __enter__(self) -> Tracer:
        self._previous = self._tracer._enabled
        self._tracer._enabled = self._enabled
        return self._tracer

    def __exit__(self, *exc: Any) -> None:
        self._tracer._enabled = self._previous


class _Capture:
    __slots__ = ("_tracer", "_sink")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._sink: List[SpanRecord] = []

    def __enter__(self) -> List[SpanRecord]:
        with self._tracer._lock:
            self._tracer._sinks.append(self._sink)
        return self._sink

    def __exit__(self, *exc: Any) -> None:
        with self._tracer._lock:
            try:
                self._tracer._sinks.remove(self._sink)
            except ValueError:
                pass


def traced_rows(tracer: Tracer, iterator: Iterator[Any], **attrs: Any):
    """Wrap a lazy result iterator so its drain records a ``query.execute``
    span (rows counted), honouring deferred execution.

    Created only while the tracer is active; the span is recorded when the
    iterator is exhausted *or* closed early (partial drains record the
    rows seen with ``complete=False``).
    """

    def generator():
        rows = 0
        complete = False
        started = time.perf_counter()
        try:
            for row in iterator:
                rows += 1
                yield row
            complete = True
        finally:
            tracer.record(
                "query.execute",
                started,
                time.perf_counter(),
                rows=rows,
                complete=complete,
                **attrs,
            )

    return generator()


#: the process-wide tracer every instrumented layer shares
TRACER = Tracer()
