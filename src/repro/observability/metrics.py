"""Counters and histograms — the flight recorder's gauges.

Unlike spans (sampled intervals, off by default), metrics are **always
on**: monotonic counters and summary histograms cost one small lock
acquisition per update, which the <2% overhead budget absorbs.  The
instrumented layers register:

* ``query_cache.*`` — hits, misses, evictions, analysis hits/misses
  (:class:`~repro.query.cache.QueryCache`);
* ``provider.compile_lock.*`` — per-key compile-lock contention and the
  size-bounding prunes (:class:`~repro.query.provider.QueryProvider`);
* ``compile.<engine>.*`` — codegen and compile wall seconds per engine
  (provider + :func:`~repro.codegen.compiler.compile_source`);
* ``recycler.*`` — result-buffer reuse
  (:class:`~repro.query.recycler.RecyclingProvider`);
* ``parallel.*`` — morsel dispatch counts and merge seconds
  (:class:`~repro.runtime.parallel.ParallelQuery`).

Everything exports as a plain dict (:meth:`MetricsRegistry.snapshot`) or
JSON lines (:meth:`MetricsRegistry.to_json_lines`) — the shapes
``BENCH_ci.json`` embeds next to the figure medians.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value


class Histogram:
    """A thread-safe summary histogram: count / sum / min / max / mean.

    Full distributions are overkill for phase timings; the four moments
    above are what the regression gate and the §7.4 compile-cost report
    actually consume.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            mean = self._sum / self._count if self._count else 0.0
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": mean,
            }


class MetricsRegistry:
    """Name → instrument map with get-or-create semantics.

    A process-wide instance (:data:`METRICS`) backs the instrumented
    layers; tests inject private registries to assert exact counts
    without cross-talk from other queries in the process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument's current value, as one plain dict."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        out: Dict[str, Any] = {}
        for name in sorted(counters):
            out[name] = counters[name].snapshot()
        for name in sorted(histograms):
            out[name] = histograms[name].snapshot()
        return out

    def to_json_lines(self) -> str:
        """One ``{"metric": name, ...}`` JSON object per line."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(json.dumps({"metric": name, **value}))
            else:
                lines.append(json.dumps({"metric": name, "value": value}))
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark reruns)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


#: the process-wide registry every instrumented layer shares
METRICS = MetricsRegistry()
