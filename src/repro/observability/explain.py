"""EXPLAIN and EXPLAIN ANALYZE for the query lifecycle.

``Query.explain()`` answers *what would run*: the optimized logical plan,
the chosen engine, its capability verdict (with the fallback reasons from
:mod:`repro.plans.validate`), and the morsel-parallelism decision.

``Query.explain_analyze()`` answers *what actually ran*: the same tree
annotated with measured per-phase wall times (captured through
:mod:`repro.observability.tracer`), the result row count, the
compiled-code cache status, and — under parallel execution — the morsel
dispatch/merge accounting.  The query **is executed** to produce it,
exactly like SQL's ``EXPLAIN ANALYZE``.

The first line of both outputs is the plan root, preserving the
pre-observability ``explain()`` contract (callers that slice
``splitlines()[0]`` keep seeing the plan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..codegen.lower import hybrid_placements
from ..errors import UnsupportedQueryError
from ..expressions.canonical import canonicalize
from ..plans.logical import plan_to_text
from ..plans.optimizer import optimize
from ..plans.translate import translate
from ..plans.validate import (
    capability_report,
    distributed_split,
    parallel_split,
    validate_plan,
)
from .tracer import TRACER, SpanRecord

__all__ = [
    "PhaseStat",
    "ExplainReport",
    "ExplainAnalysis",
    "explain_report",
    "explain_analyze",
]

_LINQ_PLAN = "(linq engine: interpreted operator chain, no plan)"

#: canonical lifecycle ordering for the phase table; unknown span names
#: sort after these, by first appearance
_PHASE_ORDER = (
    "service.queue_wait",
    "query.decide",
    "query.canonicalize",
    "query.recycle",
    "query.cache_lookup",
    "query.analyze",
    "query.optimize",
    "query.validate",
    "query.lower",
    "query.analyze_dataflow",
    "codegen.generate",
    "codegen.compile_source",
    "query.compile",
    "query.execute",
    "parallel.execute",
    "parallel.dispatch",
    "parallel.morsel",
    "parallel.merge",
    "dist.execute",
    "dist.scatter",
    "dist.worker",
    "dist.gather",
    "dist.merge",
    "service.execute",
)


@dataclass
class PhaseStat:
    """Aggregated spans of one name: call count and total wall time."""

    name: str
    calls: int = 0
    seconds: float = 0.0

    def add(self, record: SpanRecord) -> None:
        self.calls += 1
        self.seconds += record.duration


def _plan_for(provider: Any, expr: Any) -> Any:
    canonical = canonicalize(expr)
    plan = optimize(
        translate(canonical.tree, provider.translate_options),
        provider.optimize_options,
        statistics=provider._statistics,
        param_values=canonical.bindings,
    )
    return canonical, plan


def _parallel_verdict(
    provider: Any, plan: Any, engine: str, parallelism: Optional[int]
) -> str:
    from ..query.provider import PARALLEL_ENGINES

    workers = provider._resolve_parallelism(parallelism)
    if workers < 2:
        return (
            "sequential (workers=1; request workers with in_parallel(n), "
            "using(parallelism=n) or REPRO_PARALLELISM)"
        )
    if engine not in PARALLEL_ENGINES:
        return f"sequential (engine {engine!r} emits no morsel kernels)"
    split = parallel_split(plan)
    if split.parallel:
        return (
            f"eligible (mode={split.mode}, driver=source "
            f"{split.morsel_ordinal}, workers={workers})"
        )
    reason = split.reasons[0] if split.reasons else "outside the parallel fragment"
    return f"sequential — {reason}"


def _distributed_verdict(
    provider: Any,
    plan: Any,
    engine: str,
    sources: List[Any],
    distributed: Optional[int],
) -> str:
    """The multi-process decision — empty (line omitted) when nobody
    asked for distribution, so pre-distribution reports stay byte-exact."""
    from ..query.provider import DISTRIBUTED_ENGINES
    from ..storage.struct_array import StructArray

    resolve = getattr(provider, "_resolve_distributed", None)
    if resolve is None:
        return ""
    workers = resolve(distributed)
    if workers < 2:
        return ""
    if engine not in DISTRIBUTED_ENGINES:
        return f"in-process (engine {engine!r} emits no broadcastable kernels)"
    if not sources or not all(isinstance(s, StructArray) for s in sources):
        return (
            "in-process (sources are not all StructArrays; "
            "shards own column buffers)"
        )
    split = distributed_split(plan)
    if split.parallel:
        return (
            f"eligible (mode={split.mode}, driver=source "
            f"{split.morsel_ordinal}, workers={workers})"
        )
    reason = (
        split.reasons[0] if split.reasons else "outside the distributable fragment"
    )
    return f"in-process — {reason}"


def _pipeline_section(
    provider: Any,
    canonical: Any,
    sources: List[Any],
    plan: Any,
    engine: str,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Render the pipeline schedule of the shared IR, one line per
    pipeline (id, driver, fused operators, sink breaker), plus the
    dataflow-fact lines; the hybrid engines additionally show each
    pipeline's managed/native placement."""
    from ..analysis import elision_enabled

    try:
        ir = provider._ir_for(canonical, sources, plan, engine)
    except UnsupportedQueryError:
        return (), ()
    placements: Dict[int, str] = (
        hybrid_placements(ir)
        if engine in ("hybrid", "hybrid_buffered")
        else {}
    )
    lines = []
    for pipeline in ir.pipelines:
        text = f"p{pipeline.pid}: {pipeline.describe()}"
        placement = placements.get(pipeline.pid)
        if placement is not None:
            text += f" [{placement}]"
        lines.append(text)
    facts_lines: Tuple[str, ...] = ()
    try:
        facts = provider._facts_for(canonical, sources, plan=plan, engine=engine)
    except UnsupportedQueryError:
        facts = None
    if facts is not None:
        facts_lines = tuple(facts.render_lines(elision_enabled()))
    return tuple(lines), facts_lines


@dataclass
class ExplainReport:
    """What *would* run: plan, engine, capability, parallel decision."""

    engine: str
    plan_text: str
    supported: bool
    capability_reasons: Tuple[str, ...] = ()
    pipelines: Tuple[str, ...] = ()
    facts: Tuple[str, ...] = ()
    parallel: str = ""
    adaptive: str = ""
    #: multi-process decision; empty = nobody requested distribution
    distributed: str = ""

    def render(self) -> str:
        lines = [self.plan_text.rstrip("\n")]
        lines.append(f"engine: {self.engine}")
        if self.supported:
            lines.append("capability: supported")
        else:
            lines.append("capability: unsupported")
            for reason in self.capability_reasons:
                lines.append(f"  - {reason}")
        if self.pipelines:
            lines.append("pipelines:")
            for line in self.pipelines:
                lines.append(f"  {line}")
        if self.facts:
            lines.append("facts:")
            for line in self.facts:
                lines.append(f"  {line}")
        if self.parallel:
            lines.append(f"parallel: {self.parallel}")
        if self.distributed:
            lines.append(f"distributed: {self.distributed}")
        if self.adaptive:
            lines.append(f"adaptive: {self.adaptive}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _adaptive_verdict(
    provider: Any, expr: Any, sources: List[Any], engine: str, adaptive: Any
) -> str:
    """The decision the chooser would make right now (EXPLAIN is a dry
    run: no exploration, no observation, no profile mutation)."""
    resolve = getattr(provider, "_adaptive_controller", None)
    if resolve is None:
        return ""
    try:
        controller = resolve(adaptive, engine)
        if controller is None:
            return ""
        _, _, decision, _ = provider._adaptive_decide(
            expr, sources, engine, controller, explore=False
        )
        return decision.describe()
    except Exception:  # noqa: BLE001 - explain must never fail on adaptivity
        return ""


def explain_report(
    provider: Any,
    expr: Any,
    sources: List[Any],
    engine: str,
    parallelism: Optional[int] = None,
    adaptive: Any = None,
    distributed: Optional[int] = None,
) -> ExplainReport:
    """Build the static EXPLAIN report for one query/engine pairing."""
    if engine == "linq":
        return ExplainReport(
            engine="linq",
            plan_text=_LINQ_PLAN,
            supported=True,
            parallel="sequential (the interpreted baseline never parallelizes)",
        )
    canonical, plan = _plan_for(provider, expr)
    analysis = provider._analysis_for(canonical, sources)
    plan_types = validate_plan(plan, analysis.source_types, params=canonical.bindings)
    report = capability_report(plan, engine, sources, plan_types)
    pipelines, facts = _pipeline_section(provider, canonical, sources, plan, engine)
    return ExplainReport(
        engine=engine,
        plan_text=plan_to_text(plan),
        supported=report.supported,
        capability_reasons=tuple(report.reasons),
        pipelines=pipelines,
        facts=facts,
        parallel=_parallel_verdict(provider, plan, engine, parallelism),
        adaptive=_adaptive_verdict(provider, expr, sources, engine, adaptive),
        distributed=_distributed_verdict(
            provider, plan, engine, sources, distributed
        ),
    )


@dataclass
class ExplainAnalysis:
    """What actually ran: the plan annotated with measured spans."""

    engine: str
    plan_text: str
    rows: int
    cache: str
    #: result-recycler verdict (``hit|delta|full|miss`` + fallback
    #: reason), empty when the provider does not recycle
    recycle: str = ""
    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    parallel: str = ""
    adaptive: str = ""
    #: multi-process accounting; empty = the run was in-process
    distributed: str = ""
    morsels: int = 0
    spans: List[SpanRecord] = field(default_factory=list)

    def phase_seconds(self, name: str) -> float:
        stat = self.phases.get(name)
        return stat.seconds if stat else 0.0

    def render(self) -> str:
        lines = [self.plan_text.rstrip("\n")]
        lines.append(f"engine: {self.engine}")
        lines.append(f"rows: {self.rows}")
        lines.append(f"cache: {self.cache}")
        if self.recycle:
            lines.append(f"recycle: {self.recycle}")
        if self.parallel:
            lines.append(f"parallel: {self.parallel}")
        if self.distributed:
            lines.append(f"distributed: {self.distributed}")
        if self.adaptive:
            lines.append(f"adaptive: {self.adaptive}")
        lines.append("phases (wall ms):")
        for stat in self.phases.values():
            lines.append(
                f"  {stat.name:<24s} {stat.seconds * 1e3:>10.3f}  x{stat.calls}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fold_phases(spans: List[SpanRecord]) -> Dict[str, PhaseStat]:
    order = {name: i for i, name in enumerate(_PHASE_ORDER)}
    stats: Dict[str, PhaseStat] = {}
    for record in spans:
        stat = stats.get(record.name)
        if stat is None:
            stat = stats[record.name] = PhaseStat(record.name)
        stat.add(record)
    ranked = sorted(stats.values(), key=lambda s: order.get(s.name, len(order)))
    return {stat.name: stat for stat in ranked}


def explain_analyze(
    provider: Any,
    expr: Any,
    sources: List[Any],
    engine: str,
    params: Dict[str, Any],
    parallelism: Optional[int] = None,
    morsel_size: Optional[int] = None,
    adaptive: Any = None,
    distributed: Optional[int] = None,
    runner: Optional[Any] = None,
) -> ExplainAnalysis:
    """Execute the query under a span capture and fold the evidence.

    Works for every engine including ``linq`` (whose phases are analysis
    and interpreted execution).  Spans from worker threads — morsel
    kernels — land in the same capture, so parallel runs report their
    dispatch/merge accounting too.

    *runner*, when given, replaces the direct ``provider.execute`` call
    with an arbitrary zero-argument callable returning the materialized
    rows — ``QuerySession.explain_analyze`` passes its serving path
    here, so the phase table gains the ``service.queue_wait`` /
    ``service.execute`` rows.
    """
    with TRACER.capture() as spans:
        if runner is not None:
            rows = len(runner())
        else:
            iterator = provider.execute(
                expr,
                sources,
                engine,
                params,
                parallelism=parallelism,
                morsel_size=morsel_size,
                # omit when unset: providers predating these layers
                **({} if adaptive is None else {"adaptive": adaptive}),
                **(
                    {}
                    if distributed is None
                    else {"distributed": distributed}
                ),
            )
            rows = 0
            for _ in iterator:
                rows += 1
    phases = _fold_phases(spans)

    cache = "n/a (linq never compiles)" if engine == "linq" else "miss"
    adaptive_line = ""
    recycle = ""
    for record in spans:
        if record.name == "query.cache_lookup":
            cache = "hit" if record.attrs.get("hit") else "miss"
        elif record.name == "query.decide":
            adaptive_line = record.attrs.get("decision", "")
        elif record.name == "query.recycle":
            mode = record.attrs.get("mode", "")
            reason = record.attrs.get("reason", "")
            recycle = f"{mode} — {reason}" if reason else mode
    morsels = sum(1 for r in spans if r.name == "parallel.morsel")

    if engine == "linq":
        plan_text = _LINQ_PLAN
        parallel = ""
        distributed_line = ""
    else:
        _, plan = _plan_for(provider, expr)
        plan_text = plan_to_text(plan)
        parallel = ""
        distributed_line = ""
        for record in spans:
            if record.name == "parallel.execute":
                parallel = (
                    f"{record.attrs.get('workers', '?')} workers x "
                    f"{record.attrs.get('morsels', '?')} morsels "
                    f"(mode={record.attrs.get('mode', '?')})"
                )
            elif record.name == "dist.execute":
                distributed_line = (
                    f"{record.attrs.get('workers', '?')} worker processes x "
                    f"{record.attrs.get('grant', '?')} shards "
                    f"(mode={record.attrs.get('mode', '?')})"
                )
        if not parallel:
            parallel = _parallel_verdict(provider, plan, engine, parallelism)
        if not distributed_line:
            distributed_line = _distributed_verdict(
                provider, plan, engine, sources, distributed
            )

    return ExplainAnalysis(
        engine=engine,
        plan_text=plan_text,
        rows=rows,
        cache=cache,
        recycle=recycle,
        phases=phases,
        parallel=parallel,
        adaptive=adaptive_line,
        distributed=distributed_line,
        morsels=morsels,
        spans=list(spans),
    )
