"""Building expression trees from Python lambdas.

C# quotes lambdas into expression trees at compile time.  Python has no
compiler hook, so we *trace* instead: the lambda is called once with proxy
arguments whose operators record, rather than perform, each operation.  The
returned proxy then carries the full expression tree.  This is the same
technique used by Polars, PySpark and SQLAlchemy expressions.

The price of tracing is the usual one:

* use ``&`` / ``|`` / ``~`` instead of ``and`` / ``or`` / ``not``
  (Python routes the latter through ``__bool__``, which cannot be traced);
* use :func:`if_then_else` instead of a conditional expression;
* only whitelisted methods may be called on traced values.

Violations raise :class:`~repro.errors.TraceError` at query-definition time,
never silently misbehave at execution time.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from ..errors import TraceError
from .nodes import (
    AGGREGATE_KINDS,
    AggCall,
    Binary,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
)

__all__ = [
    "ExprProxy",
    "P",
    "arg",
    "new",
    "if_then_else",
    "unwrap",
    "trace_lambda",
    "SCALAR_METHODS",
]

#: Methods callable on traced scalar values.  All are pure; string methods
#: mirror what the paper's queries need (LIKE-style predicates in Q2).
SCALAR_METHODS = frozenset(
    {
        "startswith",
        "endswith",
        "contains",
        "lower",
        "upper",
        "strip",
        "round",
    }
)

#: Attributes that are reserved on proxies (not turned into Member nodes).
_PROXY_INTERNAL = frozenset({"_node", "_is_group"})


class ExprProxy:
    """A value stand-in that records operations as expression nodes.

    Instances are created by :func:`trace_lambda` for lambda arguments and
    flow through the user's lambda body.  Every supported operation returns
    a new proxy wrapping the corresponding node.
    """

    __slots__ = ("_node", "_is_group")

    #: proxies must never be used as dict keys / set members
    __hash__ = None  # type: ignore[assignment]

    def __init__(self, node: Expr, is_group: bool = False):
        object.__setattr__(self, "_node", node)
        object.__setattr__(self, "_is_group", is_group)

    # -- structure ---------------------------------------------------------

    def __getattr__(self, name: str) -> "ExprProxy":
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        if name in _PROXY_INTERNAL:
            raise AttributeError(name)
        return ExprProxy(Member(self._node, name))

    def __setattr__(self, name: str, value: Any) -> None:
        raise TraceError("traced values are immutable; build results with new(...)")

    def __call__(self, *args: Any, **kwargs: Any) -> "ExprProxy":
        node = self._node
        if not isinstance(node, Member):
            raise TraceError(f"cannot call a non-method traced value: {node!r}")
        target, name = node.target, node.name
        if name in AGGREGATE_KINDS:
            return self._trace_aggregate(target, name, args, kwargs)
        if name not in SCALAR_METHODS:
            raise TraceError(
                f"method {name!r} is not supported in traced lambdas; "
                f"supported methods: {sorted(SCALAR_METHODS)} "
                f"and group aggregates {sorted(AGGREGATE_KINDS)}"
            )
        if kwargs:
            raise TraceError(
                f"keyword arguments are not supported in traced call to {name!r}"
            )
        return ExprProxy(Method(target, name, tuple(unwrap(a) for a in args)))

    @staticmethod
    def _trace_aggregate(
        group: Expr, kind: str, args: tuple, kwargs: dict
    ) -> "ExprProxy":
        if kwargs:
            raise TraceError(f"aggregate {kind!r} takes no keyword arguments")
        if kind == "count":
            if args:
                raise TraceError("count() takes no arguments; filter before grouping")
            return ExprProxy(AggCall("count", None, group=group))
        if len(args) != 1 or not callable(args[0]):
            raise TraceError(f"aggregate {kind!r} requires exactly one selector lambda")
        selector = trace_lambda(args[0])
        return ExprProxy(AggCall(kind, selector, group=group))

    # -- comparisons -------------------------------------------------------

    def __eq__(self, other: Any) -> "ExprProxy":  # type: ignore[override]
        return ExprProxy(Binary("eq", self._node, unwrap(other)))

    def __ne__(self, other: Any) -> "ExprProxy":  # type: ignore[override]
        return ExprProxy(Binary("ne", self._node, unwrap(other)))

    def __lt__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("lt", self._node, unwrap(other)))

    def __le__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("le", self._node, unwrap(other)))

    def __gt__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("gt", self._node, unwrap(other)))

    def __ge__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("ge", self._node, unwrap(other)))

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("add", self._node, unwrap(other)))

    def __radd__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("add", unwrap(other), self._node))

    def __sub__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("sub", self._node, unwrap(other)))

    def __rsub__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("sub", unwrap(other), self._node))

    def __mul__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("mul", self._node, unwrap(other)))

    def __rmul__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("mul", unwrap(other), self._node))

    def __truediv__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("truediv", self._node, unwrap(other)))

    def __rtruediv__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("truediv", unwrap(other), self._node))

    def __floordiv__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("floordiv", self._node, unwrap(other)))

    def __rfloordiv__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("floordiv", unwrap(other), self._node))

    def __mod__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("mod", self._node, unwrap(other)))

    def __rmod__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("mod", unwrap(other), self._node))

    def __pow__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("pow", self._node, unwrap(other)))

    def __neg__(self) -> "ExprProxy":
        return ExprProxy(Unary("neg", self._node))

    def __pos__(self) -> "ExprProxy":
        return ExprProxy(Unary("pos", self._node))

    def __abs__(self) -> "ExprProxy":
        return ExprProxy(Unary("abs", self._node))

    # -- boolean combinators -----------------------------------------------

    def __and__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("and", self._node, unwrap(other)))

    def __rand__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("and", unwrap(other), self._node))

    def __or__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("or", self._node, unwrap(other)))

    def __ror__(self, other: Any) -> "ExprProxy":
        return ExprProxy(Binary("or", unwrap(other), self._node))

    def __invert__(self) -> "ExprProxy":
        return ExprProxy(Unary("not", self._node))

    # -- guard rails ---------------------------------------------------------

    def __bool__(self) -> bool:
        raise TraceError(
            "a traced expression has no truth value; use '&' / '|' / '~' "
            "instead of 'and' / 'or' / 'not', and if_then_else(...) instead "
            "of conditional expressions"
        )

    def __iter__(self):
        raise TraceError("traced values cannot be iterated inside a query lambda")

    def __repr__(self) -> str:
        return f"ExprProxy({self._node!r})"


def unwrap(value: Any) -> Expr:
    """Convert *value* into an expression node.

    Proxies yield their node; raw Python values become :class:`Constant`.
    """
    if isinstance(value, ExprProxy):
        return value._node
    if isinstance(value, Expr):
        return value
    return Constant(value)


def P(name: str) -> ExprProxy:
    """A named query parameter, bound at execution time.

    Queries written with explicit parameters share one cache entry across
    all bindings — the paper's main amortization of compilation cost.
    """
    return ExprProxy(Param(name))


def arg(name: str) -> ExprProxy:
    """A free variable for building lambdas without tracing."""
    return ExprProxy(Var(name))


def new(**fields: Any) -> ExprProxy:
    """Construct a result record, e.g. ``new(id=g.key, total=g.sum(...))``."""
    return ExprProxy(New(tuple((k, unwrap(v)) for k, v in fields.items())))


def if_then_else(cond: Any, then: Any, other: Any) -> ExprProxy:
    """Traceable conditional: ``then if cond else other``."""
    return ExprProxy(Conditional(unwrap(cond), unwrap(then), unwrap(other)))


def _param_names(fn: Callable, arity: int) -> Tuple[str, ...]:
    code = getattr(fn, "__code__", None)
    if code is not None and code.co_argcount == arity:
        return code.co_varnames[:arity]
    return tuple(f"x{i}" for i in range(arity))


def trace_lambda(
    fn: Callable,
    arity: int | None = None,
    group_params: Tuple[int, ...] = (),
) -> Lambda:
    """Capture *fn* as a :class:`Lambda` node by tracing.

    ``arity`` defaults to the function's own argument count.  Positions in
    ``group_params`` receive group proxies, whose ``key`` member and
    aggregate methods are meaningful.
    """
    # imported lazily: repro.analysis pulls in repro.plans, which must not
    # load while the expressions package is still initializing
    from ..analysis.effects import analyze_callable

    if isinstance(fn, Lambda):
        return fn
    if not callable(fn):
        raise TraceError(f"expected a callable, got {type(fn).__name__}")
    if arity is None:
        code = getattr(fn, "__code__", None)
        arity = code.co_argcount if code is not None else 1
    names = _param_names(fn, arity)
    proxies = [
        ExprProxy(Var(name), is_group=(i in group_params))
        for i, name in enumerate(names)
    ]
    try:
        result = fn(*proxies)
    except TraceError:
        raise
    except Exception as exc:
        raise TraceError(
            f"failed to trace lambda {getattr(fn, '__name__', fn)!r}: {exc}"
        ) from exc
    return Lambda(names, unwrap(result), analyze_callable(fn))
