"""A tree-walking interpreter for scalar expressions.

This is the *slow path* by design: the LINQ-to-objects analogue in
:mod:`repro.query.enumerable` interprets every predicate and selector once
per element, exactly the per-element overhead the paper's §2.3 catalogues.
The compiled engines never call into this module at execution time — their
generated source inlines the same semantics as straight-line code.

The interpreter is also the semantic reference: generated code is tested
against it.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Mapping

from ..errors import ExecutionError, UnsupportedExpressionError
from .nodes import (
    AggCall,
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
)

__all__ = [
    "interpret",
    "make_callable",
    "make_record_type",
    "BINARY_FUNCS",
    "UNARY_FUNCS",
]

DIV_BY_ZERO = "division by zero in query expression"


def guarded_truediv(a, b):
    if b == 0:
        raise ExecutionError(DIV_BY_ZERO)
    return a / b


def guarded_floordiv(a, b):
    if b == 0:
        raise ExecutionError(DIV_BY_ZERO)
    return a // b


def guarded_mod(a, b):
    if b == 0:
        raise ExecutionError(DIV_BY_ZERO)
    return a % b


BINARY_FUNCS: Dict[str, Callable[[Any, Any], Any]] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    # division funnels through the shared guard helpers so every engine
    # raises the same typed ExecutionError on a zero divisor
    "truediv": guarded_truediv,
    "floordiv": guarded_floordiv,
    "mod": guarded_mod,
    "pow": operator.pow,
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    # non-short-circuiting on purpose: traced predicates are pure, and the
    # vectorized backend evaluates both sides anyway
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}

UNARY_FUNCS: Dict[str, Callable[[Any], Any]] = {
    "neg": operator.neg,
    "pos": operator.pos,
    "not": operator.not_,
    "abs": operator.abs,
}

#: Pure functions callable through :class:`Call` nodes.
CALL_FUNCS: Dict[str, Callable] = {
    "len": len,
    "abs": abs,
    "min": min,
    "max": max,
    "int": int,
    "float": float,
    "str": str,
    "round": round,
}


def _method_call(target: Any, name: str, args: tuple) -> Any:
    if name == "contains":
        return args[0] in target
    if name == "round":
        return round(target, *args)
    return getattr(target, name)(*args)


def interpret(
    expr: Expr,
    env: Mapping[str, Any] | None = None,
    params: Mapping[str, Any] | None = None,
) -> Any:
    """Evaluate *expr* with lambda variables bound by *env*.

    ``params`` supplies values for :class:`Param` nodes.  Group-typed
    variables must support ``.key`` and iteration (see
    :class:`repro.runtime.hashtable.Grouping`).
    """
    env = env or {}
    params = params or {}
    return _eval(expr, env, params)


def _eval(expr: Expr, env: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Param):
        try:
            return params[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound query parameter: {expr.name!r}") from None
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound variable: {expr.name!r}") from None
    if isinstance(expr, Member):
        target = _eval(expr.target, env, params)
        if isinstance(target, Mapping):
            return target[expr.name]
        return getattr(target, expr.name)
    if isinstance(expr, Binary):
        left = _eval(expr.left, env, params)
        right = _eval(expr.right, env, params)
        return BINARY_FUNCS[expr.op](left, right)
    if isinstance(expr, Unary):
        return UNARY_FUNCS[expr.op](_eval(expr.operand, env, params))
    if isinstance(expr, Call):
        fn = CALL_FUNCS.get(expr.name)
        if fn is None:
            raise UnsupportedExpressionError(f"unknown function: {expr.name!r}")
        return fn(*(_eval(a, env, params) for a in expr.args))
    if isinstance(expr, Method):
        target = _eval(expr.target, env, params)
        args = tuple(_eval(a, env, params) for a in expr.args)
        return _method_call(target, expr.name, args)
    if isinstance(expr, Conditional):
        if _eval(expr.cond, env, params):
            return _eval(expr.then, env, params)
        return _eval(expr.other, env, params)
    if isinstance(expr, New):
        record_type = make_record_type(expr.field_names, expr.type_name)
        return record_type(*(_eval(e, env, params) for _, e in expr.fields))
    if isinstance(expr, AggCall):
        return _eval_aggregate(expr, env, params)
    if isinstance(expr, Lambda):
        return make_callable(expr, params)
    raise UnsupportedExpressionError(f"cannot interpret node: {type(expr).__name__}")


def _eval_aggregate(
    expr: AggCall, env: Mapping[str, Any], params: Mapping[str, Any]
) -> Any:
    """Evaluate one aggregate with its own pass over the group.

    Each :class:`AggCall` iterates the whole group independently — this is
    LINQ-to-objects' behaviour that the paper measures as ~38% slower than a
    fused single pass (§2.3).  The compiled engines fuse instead.
    """
    group = _eval(expr.group, env, params)
    if expr.kind == "count":
        return sum(1 for _ in group)
    selector = expr.arg
    assert selector is not None
    name = selector.params[0]
    values = (
        _eval(selector.body, {**env, name: element}, params) for element in group
    )
    if expr.kind == "sum":
        return sum(values)
    if expr.kind == "min":
        return min(values)
    if expr.kind == "max":
        return max(values)
    if expr.kind == "avg":
        total, count = 0, 0
        for v in values:
            total += v
            count += 1
        return total / count if count else None
    raise UnsupportedExpressionError(f"unknown aggregate: {expr.kind!r}")


def make_callable(
    lam: Lambda, params: Mapping[str, Any] | None = None
) -> Callable[..., Any]:
    """Bind a :class:`Lambda` into a Python callable that interprets its body."""
    names = lam.params
    bound_params = dict(params or {})

    def call(*args: Any) -> Any:
        if len(args) != len(names):
            raise ExecutionError(
                f"lambda expects {len(names)} argument(s), got {len(args)}"
            )
        return _eval(lam.body, dict(zip(names, args)), bound_params)

    return call


_RECORD_TYPE_CACHE: Dict[tuple, type] = {}


def make_record_type(field_names: tuple, type_name: str | None = None) -> type:
    """Return (and cache) a named-tuple type for ``New`` result records.

    The analogue of the anonymous classes the C# compiler synthesizes for
    ``select new {...}``: one type per distinct field list, shared between
    all engines so results compare equal across execution strategies.
    """
    key = (type_name, tuple(field_names))
    record_type = _RECORD_TYPE_CACHE.get(key)
    if record_type is None:
        from collections import namedtuple

        record_type = namedtuple(type_name or "Row", field_names)
        _RECORD_TYPE_CACHE[key] = record_type
    return record_type
