"""Expression tree substrate.

The Python analogue of LINQ expression trees (paper §2.2, Figure 1):
immutable AST nodes, lambda capture by tracing, a reference interpreter, a
source printer for code generation, and the canonicalizer that makes query
caching possible.
"""

from .nodes import (
    AggCall,
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    QueryOp,
    SourceExpr,
    Unary,
    Var,
    children,
    structural_key,
    walk,
)
from .builder import P, ExprProxy, arg, if_then_else, new, trace_lambda, unwrap
from .evaluator import interpret, make_callable, make_record_type
from .printer import ScalarPrinter, expression_to_text
from .canonical import (
    CanonicalQuery,
    cache_key,
    canonicalize,
    fold_constants,
    parameterize,
)
from .visitor import Transformer, collect, rewrite_bottom_up, substitute
from .analysis import (
    conjuncts,
    contains_aggregate,
    free_vars,
    is_constant,
    member_usage,
    predicate_cost,
    used_params,
)

__all__ = [
    # nodes
    "Expr",
    "Constant",
    "Param",
    "Var",
    "Member",
    "Binary",
    "Unary",
    "Call",
    "Method",
    "Conditional",
    "New",
    "Lambda",
    "AggCall",
    "SourceExpr",
    "QueryOp",
    "children",
    "walk",
    "structural_key",
    # builder
    "ExprProxy",
    "P",
    "arg",
    "new",
    "if_then_else",
    "unwrap",
    "trace_lambda",
    # evaluator
    "interpret",
    "make_callable",
    "make_record_type",
    # printer
    "ScalarPrinter",
    "expression_to_text",
    # canonical
    "CanonicalQuery",
    "canonicalize",
    "fold_constants",
    "parameterize",
    "cache_key",
    # visitor
    "Transformer",
    "substitute",
    "rewrite_bottom_up",
    "collect",
    # analysis
    "free_vars",
    "used_params",
    "member_usage",
    "contains_aggregate",
    "is_constant",
    "predicate_cost",
    "conjuncts",
]
