"""Expression tree nodes.

The paper's query provider receives the query as a C# *expression tree*
(Figure 1) and drives all code generation from it.  This module defines the
Python analogue: a small algebra of immutable, hashable AST nodes.

Nodes never overload arithmetic or comparison operators — tree *building*
happens on the proxy wrappers in :mod:`repro.expressions.builder`.  Keeping
nodes plain means structural equality (``==``) and hashing behave normally,
which the query cache relies on.

Two families of nodes exist:

* **scalar expressions** — evaluated once per element (``Constant``,
  ``Param``, ``Var``, ``Member``, ``Binary``, ``Unary``, ``Call``,
  ``Method``, ``Conditional``, ``New``, ``AggCall``, ``Lambda``);
* **query expressions** — the operator chain itself (``SourceExpr``,
  ``QueryOp``), mirroring the ``MethodCallExpression`` spine of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = [
    "Expr",
    "Constant",
    "Param",
    "Var",
    "Member",
    "Binary",
    "Unary",
    "Call",
    "Method",
    "Conditional",
    "New",
    "Lambda",
    "AggCall",
    "SourceExpr",
    "QueryOp",
    "BINARY_OPS",
    "UNARY_OPS",
    "COMPARISON_OPS",
    "LOGICAL_OPS",
    "ARITHMETIC_OPS",
    "AGGREGATE_KINDS",
    "structural_key",
    "children",
    "walk",
]


#: Binary operator names, keyed by the token emitted in generated source.
ARITHMETIC_OPS = frozenset({"add", "sub", "mul", "truediv", "floordiv", "mod", "pow"})
COMPARISON_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
LOGICAL_OPS = frozenset({"and", "or"})
BINARY_OPS = ARITHMETIC_OPS | COMPARISON_OPS | LOGICAL_OPS
UNARY_OPS = frozenset({"neg", "pos", "not", "abs"})

#: Aggregate kinds usable inside a group result selector.
AGGREGATE_KINDS = frozenset({"sum", "count", "avg", "min", "max"})


class Expr:
    """Abstract base for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Constant(Expr):
    """A literal embedded in the query (``ConstantExpression``)."""

    value: Any

    def __hash__(self) -> int:  # values may be unhashable (lists, etc.)
        return hash(_freeze(self.value))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return _freeze(self.value) == _freeze(other.value)


@dataclass(frozen=True)
class Param(Expr):
    """A named query parameter, bound at execution time.

    Parameters are the unit of compiled-code reuse: the query cache stores
    code keyed by trees whose varying constants have been lifted to
    ``Param`` nodes (paper §3, "essentially the same" trees).
    """

    name: str


@dataclass(frozen=True)
class Var(Expr):
    """A lambda-bound variable reference (``ParameterExpression``)."""

    name: str


@dataclass(frozen=True)
class Member(Expr):
    """Attribute access, e.g. ``s.population`` (``MemberExpression``)."""

    target: Expr
    name: str


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation (``BinaryExpression``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator: {self.op!r}")


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator: {self.op!r}")


@dataclass(frozen=True)
class Call(Expr):
    """A call to a whitelisted pure function, e.g. ``len(x)``."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Method(Expr):
    """A whitelisted method call on a value, e.g. ``s.name.startswith(p)``."""

    target: Expr
    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Conditional(Expr):
    """``then if cond else other`` — built via ``if_then_else``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class New(Expr):
    """Construction of a result record: ``new(id=..., total=...)``.

    ``fields`` is an ordered tuple of ``(name, expression)`` pairs.  The
    engines materialize these as generated named-tuple types, the analogue
    of the anonymous types C# synthesizes for ``select new {...}``.
    """

    fields: Tuple[Tuple[str, Expr], ...]
    type_name: Optional[str] = None

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True)
class Lambda(Expr):
    """A captured lambda (``LambdaExpression``).

    ``effects`` carries the purity/effect verdict derived from the
    original Python callable at trace time (see
    :mod:`repro.analysis.effects`).  It is advisory metadata — excluded
    from equality, hashing and :func:`structural_key`, so cache keys and
    structural sharing are unaffected.
    """

    params: Tuple[str, ...]
    body: Expr
    effects: Optional[Any] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate over the current group inside a group result selector.

    ``g.sum(lambda s: s.price)`` traces to ``AggCall('sum', Lambda(...))``;
    ``g.count()`` traces to ``AggCall('count', None)``.  The optimizer fuses
    all ``AggCall`` nodes of one selector into a single pass (paper §2.3).
    """

    kind: str
    arg: Optional[Lambda]
    group: Expr = field(default_factory=lambda: Var("g"))

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise ValueError(f"unknown aggregate kind: {self.kind!r}")
        if self.kind != "count" and self.arg is None:
            raise ValueError(f"aggregate {self.kind!r} requires a selector lambda")


@dataclass(frozen=True)
class SourceExpr(Expr):
    """A reference to an input collection.

    The actual data is *not* stored in the tree (unlike C#'s
    ``ConstantExpression`` holding the collection); it is carried separately
    so identical query shapes over different collections share cached code.
    ``schema_token`` identifies the element type — two sources with equal
    tokens are interchangeable for code generation purposes.
    """

    ordinal: int
    schema_token: str


#: Query operators understood by the translator.  Mirrors the LINQ standard
#: query operators the paper exercises.
QUERY_OPS = frozenset(
    {
        "where",
        "select",
        "select_many",
        "join",
        "left_outer_join",
        "join_semi",
        "join_anti",
        "group_by",
        "group_join",
        "order_by",
        "order_by_desc",
        "then_by",
        "then_by_desc",
        "take",
        "skip",
        "distinct",
        "count",
        "sum",
        "min",
        "max",
        "average",
        "any",
        "all",
        "first",
        "first_or_default",
        "single",
        "element_at",
        "contains",
        "to_list",
        "concat",
        "union",
        "union_all",
        "intersect",
        "except_",
        "reverse",
        "aggregate",
    }
)


@dataclass(frozen=True)
class QueryOp(Expr):
    """One standard query operator application (``MethodCallExpression``).

    ``source`` is the upstream query expression; ``args`` holds lambdas,
    inner sources (for joins) and scalar arguments in operator-specific
    positions, documented in :mod:`repro.query.operators`.
    """

    name: str
    source: Expr
    args: Tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in QUERY_OPS:
            raise ValueError(f"unknown query operator: {self.name!r}")


def _freeze(value: Any) -> Any:
    """Convert a constant value into a hashable, order-stable form."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (str, bytes, int, float, bool, type(None))):
        return value
    try:
        hash(value)
    except TypeError:
        return (type(value).__name__, id(value))
    return value


def children(expr: Expr) -> Tuple[Expr, ...]:
    """Return the direct child expressions of *expr* in a stable order."""
    if isinstance(expr, (Constant, Param, Var, SourceExpr)):
        return ()
    if isinstance(expr, Member):
        return (expr.target,)
    if isinstance(expr, Binary):
        return (expr.left, expr.right)
    if isinstance(expr, Unary):
        return (expr.operand,)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, Method):
        return (expr.target, *expr.args)
    if isinstance(expr, Conditional):
        return (expr.cond, expr.then, expr.other)
    if isinstance(expr, New):
        return tuple(e for _, e in expr.fields)
    if isinstance(expr, Lambda):
        return (expr.body,)
    if isinstance(expr, AggCall):
        return (expr.arg,) if expr.arg is not None else ()
    if isinstance(expr, QueryOp):
        return (expr.source, *expr.args)
    raise TypeError(f"not an expression node: {expr!r}")


def walk(expr: Expr):
    """Yield *expr* and all its descendants, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def structural_key(expr: Expr) -> Any:
    """Return a nested-tuple key capturing the exact structure of *expr*.

    Two expressions have equal keys iff they are structurally identical.
    Used by the query cache; constants are frozen to hashable forms.
    """
    if isinstance(expr, Constant):
        return ("const", _freeze(expr.value))
    if isinstance(expr, Param):
        return ("param", expr.name)
    if isinstance(expr, Var):
        return ("var", expr.name)
    if isinstance(expr, SourceExpr):
        return ("source", expr.ordinal, expr.schema_token)
    if isinstance(expr, Member):
        return ("member", expr.name, structural_key(expr.target))
    if isinstance(expr, Binary):
        return (
            "binary",
            expr.op,
            structural_key(expr.left),
            structural_key(expr.right),
        )
    if isinstance(expr, Unary):
        return ("unary", expr.op, structural_key(expr.operand))
    if isinstance(expr, Call):
        return ("call", expr.name, tuple(structural_key(a) for a in expr.args))
    if isinstance(expr, Method):
        return (
            "method",
            expr.name,
            structural_key(expr.target),
            tuple(structural_key(a) for a in expr.args),
        )
    if isinstance(expr, Conditional):
        return (
            "cond",
            structural_key(expr.cond),
            structural_key(expr.then),
            structural_key(expr.other),
        )
    if isinstance(expr, New):
        return (
            "new",
            expr.type_name,
            tuple((name, structural_key(e)) for name, e in expr.fields),
        )
    if isinstance(expr, Lambda):
        return ("lambda", expr.params, structural_key(expr.body))
    if isinstance(expr, AggCall):
        arg_key = structural_key(expr.arg) if expr.arg is not None else None
        return ("agg", expr.kind, arg_key)
    if isinstance(expr, QueryOp):
        return (
            "op",
            expr.name,
            structural_key(expr.source),
            tuple(structural_key(a) for a in expr.args),
        )
    raise TypeError(f"not an expression node: {expr!r}")
