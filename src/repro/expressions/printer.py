"""Emit Python source fragments for scalar expressions.

The code-generating engines walk a logical plan and ask a printer for the
source text of each inlined predicate / selector — the step the paper calls
``CodeTreeTranslator`` (§4.2).  The base printer emits per-element Python;
the native backend subclasses it to emit vectorized NumPy (see
:mod:`repro.codegen.native_backend`).

Output is always fully parenthesized: generated code favours obvious
correctness over prettiness, and the paper's generated C follows the same
convention.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from ..errors import UnsupportedExpressionError
from .evaluator import guarded_floordiv, guarded_mod, guarded_truediv
from .nodes import (
    AggCall,
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
)

__all__ = ["ScalarPrinter", "expression_to_text"]

_BINARY_TOKENS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "truediv": "/",
    "floordiv": "//",
    "mod": "%",
    "pow": "**",
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "and": "and",
    "or": "or",
}

_UNARY_TOKENS = {"neg": "-", "pos": "+", "not": "not "}

#: division operators → the namespace helper that guards their divisor
_DIVISION_GUARDS = {
    "truediv": ("_guard_truediv", guarded_truediv),
    "floordiv": ("_guard_floordiv", guarded_floordiv),
    "mod": ("_guard_mod", guarded_mod),
}


class ScalarPrinter:
    """Renders a scalar expression tree as a Python source fragment.

    Parameters
    ----------
    var_map:
        Maps lambda variable names to the code identifiers that hold them in
        the generated function (e.g. ``{'s': 'elem_1'}``).
    param_render:
        Renders a :class:`Param` reference; defaults to indexing a local
        dict called ``_params``.
    namespace:
        Mutable mapping that accumulates runtime objects the fragment needs
        (record types, helper functions).  Passed as the globals of the
        generated module by the compiler.
    """

    #: emit divisions through ``_guard_*`` helpers that raise a typed
    #: ExecutionError on zero divisors.  Backends flip this to False per
    #: generated module when the dataflow pass proved every divisor in
    #: the query nonzero (proof-driven guard elision).
    guard_divisions = True

    def __init__(
        self,
        var_map: Mapping[str, str] | None = None,
        param_render: Callable[[str], str] | None = None,
        namespace: Dict[str, Any] | None = None,
    ):
        self.var_map = dict(var_map or {})
        self._param_render = param_render or (lambda name: f"_params[{name!r}]")
        self.namespace = namespace if namespace is not None else {}
        self._bound_counter = 0

    # -- namespace management ------------------------------------------------

    def bind(self, obj: Any, hint: str = "obj") -> str:
        """Store *obj* in the generated module's namespace, return its name."""
        for name, existing in self.namespace.items():
            if existing is obj:
                return name
        # several printers may share one namespace: never reuse a name
        while True:
            name = f"_rt_{hint}_{self._bound_counter}"
            self._bound_counter += 1
            if name not in self.namespace:
                break
        self.namespace[name] = obj
        return name

    # -- dispatch --------------------------------------------------------------

    def emit(self, expr: Expr) -> str:
        if isinstance(expr, Constant):
            return self.emit_constant(expr)
        if isinstance(expr, Param):
            return self._param_render(expr.name)
        if isinstance(expr, Var):
            return self.emit_var(expr)
        if isinstance(expr, Member):
            return self.emit_member(expr)
        if isinstance(expr, Binary):
            return self.emit_binary(expr)
        if isinstance(expr, Unary):
            return self.emit_unary(expr)
        if isinstance(expr, Call):
            return self.emit_call(expr)
        if isinstance(expr, Method):
            return self.emit_method(expr)
        if isinstance(expr, Conditional):
            return self.emit_conditional(expr)
        if isinstance(expr, New):
            return self.emit_new(expr)
        if isinstance(expr, AggCall):
            raise UnsupportedExpressionError(
                "aggregate calls must be rewritten by the translator before printing"
            )
        if isinstance(expr, Lambda):
            raise UnsupportedExpressionError(
                "lambdas must be inlined (substitute their variables) before printing"
            )
        raise UnsupportedExpressionError(f"cannot print node: {type(expr).__name__}")

    # -- node renderers (overridable) -------------------------------------------

    def emit_constant(self, expr: Constant) -> str:
        value = expr.value
        if isinstance(value, (int, float, bool, str, bytes, type(None))):
            return repr(value)
        return self.bind(value, hint="const")

    def emit_var(self, expr: Var) -> str:
        try:
            return self.var_map[expr.name]
        except KeyError:
            raise UnsupportedExpressionError(
                f"variable {expr.name!r} has no code binding; known: "
                f"{sorted(self.var_map)}"
            ) from None

    def emit_member(self, expr: Member) -> str:
        return f"{self.emit(expr.target)}.{expr.name}"

    def emit_binary(self, expr: Binary) -> str:
        if self.guard_divisions and expr.op in _DIVISION_GUARDS:
            name, impl = _DIVISION_GUARDS[expr.op]
            self.namespace.setdefault(name, impl)
            return f"{name}({self.emit(expr.left)}, {self.emit(expr.right)})"
        token = _BINARY_TOKENS[expr.op]
        return f"({self.emit(expr.left)} {token} {self.emit(expr.right)})"

    def emit_unary(self, expr: Unary) -> str:
        if expr.op == "abs":
            return f"abs({self.emit(expr.operand)})"
        return f"({_UNARY_TOKENS[expr.op]}{self.emit(expr.operand)})"

    def emit_call(self, expr: Call) -> str:
        args = ", ".join(self.emit(a) for a in expr.args)
        return f"{expr.name}({args})"

    def emit_method(self, expr: Method) -> str:
        target = self.emit(expr.target)
        args = ", ".join(self.emit(a) for a in expr.args)
        if expr.name == "contains":
            return f"({args} in {target})"
        return f"{target}.{expr.name}({args})"

    def emit_conditional(self, expr: Conditional) -> str:
        return (
            f"({self.emit(expr.then)} if {self.emit(expr.cond)} "
            f"else {self.emit(expr.other)})"
        )

    def emit_new(self, expr: New) -> str:
        from .evaluator import make_record_type

        record_type = make_record_type(expr.field_names, expr.type_name)
        type_name = self.bind(record_type, hint="rowtype")
        args = ", ".join(self.emit(e) for _, e in expr.fields)
        return f"{type_name}({args})"


def expression_to_text(expr: Expr, indent: int = 0) -> str:
    """Render an expression tree one node per line (the paper's Figure 1).

    Debugging/EXPLAIN aid: shows the exact AST the query provider consumes,
    with node kinds and their distinguishing attribute.
    """
    from .nodes import (
        AggCall,
        QueryOp,
        SourceExpr,
        children,
    )

    pad = "  " * indent
    label = type(expr).__name__
    detail = ""
    if isinstance(expr, Constant):
        detail = f" {expr.value!r}"
    elif isinstance(expr, Param):
        detail = f" ${expr.name}"
    elif isinstance(expr, Var):
        detail = f" {expr.name}"
    elif isinstance(expr, Member):
        detail = f" .{expr.name}"
    elif isinstance(expr, (Binary, Unary)):
        detail = f" {expr.op!r}"
    elif isinstance(expr, (Call, Method)):
        detail = f" {expr.name!r}"
    elif isinstance(expr, Lambda):
        detail = f" ({', '.join(expr.params)})"
    elif isinstance(expr, New):
        detail = f" ({', '.join(expr.field_names)})"
    elif isinstance(expr, AggCall):
        detail = f" {expr.kind!r}"
    elif isinstance(expr, QueryOp):
        detail = f" {expr.name!r}"
    elif isinstance(expr, SourceExpr):
        detail = f" source_{expr.ordinal}: {expr.schema_token.split('(')[0]}"
    lines = [f"{pad}{label}{detail}"]
    for child in children(expr):
        lines.append(expression_to_text(child, indent + 1))
    return "\n".join(lines)
