"""Expression-tree type inference (the static half of the provider).

In the paper's C# setting the host compiler type-checks the quoted query
before the provider ever sees it; "Effective Quotation" (Cheney et al.)
makes the same point for language-integrated query in general: *type the
quoted fragment before generating code*.  Our Python reproduction has no
host compiler, so this module fills that role.  Given the element types of
the query's sources it assigns a type to every :class:`Expr` node and
rejects ill-typed queries — unknown members, mixed-type comparisons,
arithmetic on strings, aggregate calls outside a group selector — with a
:class:`~repro.errors.QueryAnalysisError` *before* translation and code
generation, carrying the printed path of the offending sub-expression.

The type language is deliberately small:

* :class:`ScalarType` — one of the schema field kinds
  (``int``/``int32``/``float``/``bool``/``str``/``date``), exactly the
  kinds that map to NumPy dtypes in :mod:`repro.storage.schema`;
* :class:`RecordType` — a named, ordered field map (a source schema, a
  ``new(...)`` result, or a sampled object shape);
* :class:`GroupType` — the value bound inside a ``group_by`` result
  selector (exposes ``.key`` and the aggregate methods);
* :class:`SequenceType` — a nested collection (``select_many`` input,
  ``group_join`` inner sequence);
* :data:`UNKNOWN` — no information; inference never *guesses*, it only
  rejects what is provably wrong, so unknown types flow silently.

Inference is *best effort by construction*: every rule that fires is a
definite error, and anything the checker cannot see (opaque objects,
unbound user parameters) degrades to :data:`UNKNOWN` rather than a false
rejection.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import QueryAnalysisError
from .nodes import (
    ARITHMETIC_OPS,
    AggCall,
    Binary,
    Call,
    COMPARISON_OPS,
    Conditional,
    Constant,
    Expr,
    LOGICAL_OPS,
    Lambda,
    Member,
    Method,
    New,
    Param,
    QueryOp,
    SourceExpr,
    Unary,
    Var,
)

__all__ = [
    "Type",
    "ScalarType",
    "RecordType",
    "GroupType",
    "SequenceType",
    "UNKNOWN",
    "QueryAnalysis",
    "analyze_query",
    "infer_expr",
    "type_from_schema",
    "type_from_token",
    "element_type_of",
    "type_of_value",
    "scalar_kind",
    "kind_resolver",
]


# ---------------------------------------------------------------------------
# The type language
# ---------------------------------------------------------------------------


class Type:
    """Abstract base for inferred types."""

    __slots__ = ()


@dataclass(frozen=True)
class ScalarType(Type):
    """A flat value of one schema kind (maps 1:1 to a NumPy dtype)."""

    kind: str  # int / int32 / float / bool / str / date

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class RecordType(Type):
    """A named record: ordered ``(field, type)`` pairs."""

    name: str
    fields: Tuple[Tuple[str, Type], ...]

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.fields)

    def field_type(self, name: str) -> Optional[Type]:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        return None

    def __str__(self) -> str:
        parts = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"{self.name}({parts})"


@dataclass(frozen=True)
class GroupType(Type):
    """The value bound in a group result selector: ``.key`` + aggregates."""

    key: Type
    element: Type

    def __str__(self) -> str:
        return f"group(key={self.key})"


@dataclass(frozen=True)
class SequenceType(Type):
    """A nested sequence of elements (select_many / group_join inner)."""

    element: Type

    def __str__(self) -> str:
        return f"seq({self.element})"


class _AnyType(Type):
    """No information.  Inference rules treat it as compatible with all."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "UNKNOWN"

    def __str__(self) -> str:
        return "unknown"


UNKNOWN = _AnyType()

#: scalar kinds grouped into comparison families: values of one family are
#: mutually comparable; cross-family comparison is a definite type error
_NUMERIC = frozenset({"int", "int32", "float", "bool"})
_FAMILIES = {
    "int": "numeric",
    "int32": "numeric",
    "float": "numeric",
    "bool": "numeric",
    "str": "str",
    "date": "date",
}

#: attributes usable on a date value (decoded to int on access)
_DATE_MEMBERS = frozenset({"year", "month", "day"})

#: string methods from the trace whitelist, with their result kinds
_STR_METHODS = {
    "startswith": "bool",
    "endswith": "bool",
    "contains": "bool",
    "lower": "str",
    "upper": "str",
    "strip": "str",
}


def scalar_kind(inferred: Type) -> str:
    """The schema kind of an inferred type, or ``'unknown'``."""
    if isinstance(inferred, ScalarType):
        return inferred.kind
    return "unknown"


# ---------------------------------------------------------------------------
# Recovering element types from schemas, tokens and live sources
# ---------------------------------------------------------------------------


def type_from_schema(schema: Any) -> Type:
    """A :class:`RecordType` mirroring a :class:`~repro.storage.schema.Schema`."""
    return RecordType(
        schema.name, tuple((f.name, ScalarType(f.kind)) for f in schema.fields)
    )


def type_from_token(token: str) -> Type:
    """Parse a *parseable* schema token back into a type.

    ``Schema.token`` has the reversible form ``Name(field:kind:size,...)``;
    object-source tokens (``obj:Cls``, ``tpch:name``) carry no field
    information and yield :data:`UNKNOWN`.
    """
    open_paren = token.find("(")
    if open_paren <= 0 or not token.endswith(")"):
        return UNKNOWN
    name = token[:open_paren]
    body = token[open_paren + 1 : -1]
    if not body:
        return UNKNOWN
    fields = []
    for part in body.split(","):
        bits = part.split(":")
        if len(bits) != 3 or bits[1] not in _FAMILIES:
            return UNKNOWN
        fields.append((bits[0], ScalarType(bits[1])))
    return RecordType(name, tuple(fields))


def type_of_value(value: Any) -> Type:
    """The type of a runtime value (constants, parameter bindings)."""
    if isinstance(value, bool):
        return ScalarType("bool")
    if isinstance(value, int):
        return ScalarType("int")
    if isinstance(value, float):
        return ScalarType("float")
    if isinstance(value, (str, bytes)):
        return ScalarType("str")
    if isinstance(value, datetime.date):
        return ScalarType("date")
    names = getattr(value, "_fields", None)  # namedtuples before tuples
    if names is None and isinstance(value, (list, tuple, set, frozenset)):
        return SequenceType(UNKNOWN)
    if names is None and hasattr(type(value), "__getattr__"):
        # dynamic attribute access: the instance dict does not enumerate
        # the members the object actually answers to
        return UNKNOWN
    if names is None and hasattr(value, "__dict__"):
        names = tuple(vars(value))
    if names:
        fields = tuple(
            (n, type_of_value(getattr(value, n)))
            for n in names
            if not n.startswith("_")
        )
        if fields:
            return RecordType(type(value).__name__, fields)
    return UNKNOWN


def element_type_of(source: Any) -> Type:
    """Best-effort element type of a live source collection.

    StructArrays (and any source exposing ``.schema``) are exact; plain
    sequences are *sampled* — the first element's shape stands for all of
    them, mirroring how the hybrid backend's ``infer_object_schema``
    samples.  One-shot iterators are never consumed: no sample, no type.
    """
    schema = getattr(source, "schema", None)
    if schema is not None and hasattr(schema, "fields"):
        try:
            return type_from_schema(schema)
        except Exception:
            return UNKNOWN
    if isinstance(source, (list, tuple)):
        if not source:
            return UNKNOWN
        return type_of_value(source[0])
    return UNKNOWN


def source_types_for(expr: Expr, sources: Sequence[Any]) -> Tuple[Type, ...]:
    """Element types for the source list, refined by in-tree schema tokens."""
    types = [element_type_of(s) for s in sources]
    # a parseable SourceExpr token beats sampling (exact schema, no data)
    from .nodes import walk

    for node in walk(expr):
        if isinstance(node, SourceExpr) and 0 <= node.ordinal < len(types):
            from_token = type_from_token(node.schema_token)
            if from_token is not UNKNOWN:
                types[node.ordinal] = from_token
    return tuple(types)


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


@dataclass
class QueryAnalysis:
    """Result of a successful analysis, cached alongside compiled code."""

    #: element type for sequence queries; value type for scalar terminals
    result: Type
    #: True when the query is a terminal scalar aggregate
    scalar: bool
    #: element type of each source, in ordinal order
    source_types: Tuple[Type, ...]


def analyze_query(
    expr: Expr,
    sources: Sequence[Any] = (),
    params: Optional[Mapping[str, Any]] = None,
    source_types: Optional[Sequence[Type]] = None,
) -> QueryAnalysis:
    """Type-check a full query expression tree.

    Raises :class:`~repro.errors.QueryAnalysisError` for definite type
    errors; anything uncertain flows through as :data:`UNKNOWN`.
    """
    if source_types is None:
        source_types = source_types_for(expr, sources)
    checker = _Checker(tuple(source_types), dict(params or {}))
    result = checker.infer_query(expr, path="query")
    scalar = isinstance(expr, QueryOp) and expr.name in _SCALAR_TERMINALS
    if scalar:
        # infer_query returns the *value* type for scalar terminals
        pass
    return QueryAnalysis(
        result=result, scalar=scalar, source_types=tuple(source_types)
    )


def infer_expr(
    expr: Expr,
    env: Mapping[str, Type],
    params: Optional[Mapping[str, Any]] = None,
) -> Type:
    """Infer the type of a scalar expression under variable bindings *env*.

    The entry point the plan validator and the optimizer's kind resolver
    use; raises on definite errors like the full query checker.
    """
    checker = _Checker((), dict(params or {}))
    return checker.infer_value(expr, dict(env), path="expr")


def kind_resolver(element_type: Type, var_name: str, params=None):
    """A ``kind_of(expr) -> str`` callable over one bound variable.

    Feeds :func:`repro.expressions.analysis.predicate_cost` so predicate
    reordering knows that comparisons against *string-typed fields* (not
    just string constants) are expensive.  Never raises: resolution
    failures report ``'unknown'``.
    """
    env = {var_name: element_type}
    bindings = dict(params or {})

    def kind_of(expr: Expr) -> str:
        try:
            return scalar_kind(infer_expr(expr, env, bindings))
        except QueryAnalysisError:
            return "unknown"

    return kind_of


#: terminal operators producing one value instead of a sequence
_SCALAR_TERMINALS = frozenset(
    {"count", "sum", "min", "max", "average", "any", "all", "contains",
     "first", "first_or_default", "single", "element_at", "aggregate"}
)


class _Checker:
    def __init__(self, source_types: Tuple[Type, ...], params: Dict[str, Any]):
        self._source_types = source_types
        self._params = params

    # -- failure ----------------------------------------------------------------

    def _fail(self, message: str, node: Expr, path: str) -> None:
        from .printer import expression_to_text

        rendered = expression_to_text(node, indent=1)
        raise QueryAnalysisError(
            f"{message}\n  at {path}:\n{rendered}", path=path, expression=node
        )

    # -- query spine ------------------------------------------------------------

    def infer_query(self, expr: Expr, path: str) -> Type:
        """Element type of a query expression (value type for terminals)."""
        if isinstance(expr, SourceExpr):
            if 0 <= expr.ordinal < len(self._source_types):
                return self._source_types[expr.ordinal]
            return UNKNOWN
        if not isinstance(expr, QueryOp):
            # a constant collection or other opaque source
            return UNKNOWN
        handler = getattr(self, f"_op_{expr.name}", None)
        elem = self.infer_query(expr.source, path)
        op_path = f"{path}.{expr.name}"
        if handler is None:
            return self._op_default(expr, elem, op_path)
        return handler(expr, elem, op_path)

    # each handler: (op_expr, child_element_type, path) -> result element type

    def _op_default(self, expr: QueryOp, elem: Type, path: str) -> Type:
        # operators with no special rule: check any lambda args as 1-ary
        # predicates/selectors over the element, keep the element type
        for arg in expr.args:
            if isinstance(arg, Lambda) and len(arg.params) == 1:
                self._check_selector(arg, elem, path)
        return elem

    def _check_selector(self, lam: Lambda, elem: Type, path: str) -> Type:
        env = {lam.params[0]: elem}
        return self.infer_value(lam.body, env, f"{path}.selector")

    def _check_predicate(self, lam: Lambda, elem: Type, path: str) -> None:
        env = {lam.params[0]: elem}
        result = self.infer_value(lam.body, env, f"{path}.predicate")
        kind = scalar_kind(result)
        if kind in ("str", "date") or isinstance(
            result, (RecordType, GroupType, SequenceType)
        ):
            self._fail(
                f"predicate must produce a boolean, got {result}",
                lam.body,
                f"{path}.predicate",
            )

    def _op_where(self, expr: QueryOp, elem: Type, path: str) -> Type:
        self._check_predicate(expr.args[0], elem, path)
        return elem

    def _op_select(self, expr: QueryOp, elem: Type, path: str) -> Type:
        return self._check_selector(expr.args[0], elem, path)

    def _op_select_many(self, expr: QueryOp, elem: Type, path: str) -> Type:
        collection = expr.args[0]
        env = {collection.params[0]: elem}
        coll_type = self.infer_value(
            collection.body, env, f"{path}.collection"
        )
        if isinstance(coll_type, (ScalarType, GroupType)):
            self._fail(
                f"select_many requires a sequence-valued selector, got "
                f"{coll_type}",
                collection.body,
                f"{path}.collection",
            )
        inner = (
            coll_type.element if isinstance(coll_type, SequenceType) else UNKNOWN
        )
        if len(expr.args) > 1:
            result = expr.args[1]
            env2 = {result.params[0]: elem, result.params[1]: inner}
            return self.infer_value(result.body, env2, f"{path}.result")
        return inner

    def _op_join(self, expr: QueryOp, elem: Type, path: str) -> Type:
        inner_src, outer_key, inner_key, result = expr.args
        inner = self.infer_query(inner_src, f"{path}.inner")
        lk = self._check_selector(outer_key, elem, f"{path}.outer_key")
        rk = self._check_selector(inner_key, inner, f"{path}.inner_key")
        self._require_comparable(lk, rk, "eq", result, f"{path}.keys")
        env = {result.params[0]: elem, result.params[1]: inner}
        return self.infer_value(result.body, env, f"{path}.result")

    def _op_left_outer_join(self, expr: QueryOp, elem: Type, path: str) -> Type:
        inner_src, outer_key, inner_key, result, default = expr.args
        inner = self.infer_query(inner_src, f"{path}.inner")
        lk = self._check_selector(outer_key, elem, f"{path}.outer_key")
        rk = self._check_selector(inner_key, inner, f"{path}.inner_key")
        self._require_comparable(lk, rk, "eq", result, f"{path}.keys")
        default_type = self.infer_value(default, {}, f"{path}.default")
        if (
            isinstance(inner, RecordType)
            and isinstance(default_type, RecordType)
            and set(default_type.field_names) - set(inner.field_names)
        ):
            extra = set(default_type.field_names) - set(inner.field_names)
            self._fail(
                f"left join default has fields not in the inner element: "
                f"{', '.join(sorted(extra))}",
                default,
                f"{path}.default",
            )
        env = {result.params[0]: elem, result.params[1]: inner}
        return self.infer_value(result.body, env, f"{path}.result")

    def _existence_join(self, expr: QueryOp, elem: Type, path: str) -> Type:
        inner_src, outer_key, inner_key = expr.args
        inner = self.infer_query(inner_src, f"{path}.inner")
        lk = self._check_selector(outer_key, elem, f"{path}.outer_key")
        rk = self._check_selector(inner_key, inner, f"{path}.inner_key")
        self._require_comparable(lk, rk, "eq", expr, f"{path}.keys")
        return elem

    _op_join_semi = _existence_join
    _op_join_anti = _existence_join

    def _op_group_join(self, expr: QueryOp, elem: Type, path: str) -> Type:
        inner_src, outer_key, inner_key, result = expr.args
        inner = self.infer_query(inner_src, f"{path}.inner")
        lk = self._check_selector(outer_key, elem, f"{path}.outer_key")
        rk = self._check_selector(inner_key, inner, f"{path}.inner_key")
        self._require_comparable(lk, rk, "eq", result, f"{path}.keys")
        env = {result.params[0]: elem, result.params[1]: SequenceType(inner)}
        return self.infer_value(result.body, env, f"{path}.result")

    def _op_group_by(self, expr: QueryOp, elem: Type, path: str) -> Type:
        key = expr.args[0]
        if any(isinstance(n, AggCall) for n in _walk(key)):
            self._fail(
                "aggregate calls cannot appear in a group_by key",
                key,
                f"{path}.key",
            )
        key_type = self._check_selector(key, elem, f"{path}.key")
        group = GroupType(key_type, elem)
        if len(expr.args) == 1:
            return group
        result = expr.args[1]
        env = {result.params[0]: group}
        return self.infer_value(result.body, env, f"{path}.result")

    def _op_order_by(self, expr: QueryOp, elem: Type, path: str) -> Type:
        self._check_order_key(expr.args[0], elem, path)
        return elem

    _op_order_by_desc = _op_order_by
    _op_then_by = _op_order_by
    _op_then_by_desc = _op_order_by

    def _check_order_key(self, lam: Lambda, elem: Type, path: str) -> None:
        key_type = self._check_selector(lam, elem, f"{path}.key")
        if isinstance(key_type, (GroupType, SequenceType)):
            self._fail(
                f"ordering key must be a comparable value, got {key_type}",
                lam.body,
                f"{path}.key",
            )

    def _op_take(self, expr: QueryOp, elem: Type, path: str) -> Type:
        self._check_count(expr.args[0], f"{path}.count")
        return elem

    _op_skip = _op_take

    def _op_element_at(self, expr: QueryOp, elem: Type, path: str) -> Type:
        self._check_count(expr.args[0], f"{path}.index")
        return elem

    def _check_count(self, arg: Expr, path: str) -> None:
        count_type = self.infer_value(arg, {}, path)
        kind = scalar_kind(count_type)
        if count_type is not UNKNOWN and kind not in ("int", "int32", "unknown"):
            self._fail(
                f"take/skip requires an integer count, got {count_type}",
                arg,
                path,
            )

    def _op_concat(self, expr: QueryOp, elem: Type, path: str) -> Type:
        other = self.infer_query(expr.args[0], f"{path}.other")
        if (
            isinstance(elem, RecordType)
            and isinstance(other, RecordType)
            and set(elem.field_names) != set(other.field_names)
        ):
            self._fail(
                f"concat/union of mismatched record shapes: "
                f"{elem} vs {other}",
                expr,
                path,
            )
        return elem if elem is not UNKNOWN else other

    _op_union = _op_concat
    _op_union_all = _op_concat
    _op_intersect = _op_concat
    _op_except_ = _op_concat

    def _op_contains(self, expr: QueryOp, elem: Type, path: str) -> Type:
        value_type = self.infer_value(expr.args[0], {}, f"{path}.value")
        self._require_comparable(elem, value_type, "eq", expr, path)
        return ScalarType("bool")

    # -- scalar terminals ---------------------------------------------------------

    def _op_count(self, expr: QueryOp, elem: Type, path: str) -> Type:
        if expr.args:
            self._check_predicate(expr.args[0], elem, path)
        return ScalarType("int")

    def _agg_value_type(
        self, expr: QueryOp, elem: Type, path: str, kind: str
    ) -> Type:
        if expr.args:
            value = self._check_selector(expr.args[0], elem, path)
        else:
            value = elem
        return self._aggregate_result(kind, value, expr, path)

    def _aggregate_result(
        self, kind: str, value: Type, node: Expr, path: str
    ) -> Type:
        value_kind = scalar_kind(value)
        if kind in ("sum", "avg") and (
            value_kind in ("str", "date")
            or isinstance(value, (RecordType, GroupType, SequenceType))
        ):
            self._fail(
                f"cannot {kind} values of type {value}", node, path
            )
        if kind == "avg":
            return ScalarType("float")
        if kind == "sum":
            if value_kind in ("int", "int32", "bool"):
                return ScalarType("int")
            if value_kind == "float":
                return ScalarType("float")
            return UNKNOWN
        # min / max preserve the value type
        return value

    def _op_sum(self, expr: QueryOp, elem: Type, path: str) -> Type:
        return self._agg_value_type(expr, elem, path, "sum")

    def _op_min(self, expr: QueryOp, elem: Type, path: str) -> Type:
        return self._agg_value_type(expr, elem, path, "min")

    def _op_max(self, expr: QueryOp, elem: Type, path: str) -> Type:
        return self._agg_value_type(expr, elem, path, "max")

    def _op_average(self, expr: QueryOp, elem: Type, path: str) -> Type:
        return self._agg_value_type(expr, elem, path, "avg")

    def _op_any(self, expr: QueryOp, elem: Type, path: str) -> Type:
        if expr.args:
            self._check_predicate(expr.args[0], elem, path)
        return ScalarType("bool")

    _op_all = _op_any

    def _op_first(self, expr: QueryOp, elem: Type, path: str) -> Type:
        if expr.args:
            self._check_predicate(expr.args[0], elem, path)
        return elem

    _op_first_or_default = _op_first
    _op_single = _op_first

    # -- scalar expressions -------------------------------------------------------

    def infer_value(
        self, expr: Expr, env: Dict[str, Type], path: str
    ) -> Type:
        if isinstance(expr, Constant):
            return type_of_value(expr.value)
        if isinstance(expr, Param):
            if expr.name in self._params:
                return type_of_value(self._params[expr.name])
            return UNKNOWN
        if isinstance(expr, Var):
            return env.get(expr.name, UNKNOWN)
        if isinstance(expr, Member):
            return self._member(expr, env, path)
        if isinstance(expr, Binary):
            return self._binary(expr, env, path)
        if isinstance(expr, Unary):
            return self._unary(expr, env, path)
        if isinstance(expr, Conditional):
            return self._conditional(expr, env, path)
        if isinstance(expr, Method):
            return self._method(expr, env, path)
        if isinstance(expr, Call):
            return self._call(expr, env, path)
        if isinstance(expr, New):
            fields = tuple(
                (name, self.infer_value(e, env, f"{path}.{name}"))
                for name, e in expr.fields
            )
            return RecordType(expr.type_name or "record", fields)
        if isinstance(expr, AggCall):
            return self._agg_call(expr, env, path)
        if isinstance(expr, (QueryOp, SourceExpr)):
            return SequenceType(self.infer_query(expr, path))
        if isinstance(expr, Lambda):
            return UNKNOWN
        return UNKNOWN

    def _member(self, expr: Member, env: Dict[str, Type], path: str) -> Type:
        target = self.infer_value(expr.target, env, path)
        if isinstance(target, RecordType):
            field_type = target.field_type(expr.name)
            if field_type is None:
                self._fail(
                    f"record {target.name!r} has no member {expr.name!r}; "
                    f"available: {', '.join(target.field_names)}",
                    expr,
                    path,
                )
            return field_type
        if isinstance(target, GroupType):
            if expr.name == "key":
                return target.key
            self._fail(
                f"groups expose only '.key' and aggregate methods, "
                f"not {expr.name!r}",
                expr,
                path,
            )
        if isinstance(target, ScalarType):
            if target.kind == "date":
                if expr.name in _DATE_MEMBERS:
                    return ScalarType("int")
                self._fail(
                    f"date values have no member {expr.name!r}", expr, path
                )
            self._fail(
                f"cannot access member {expr.name!r} on a value of type "
                f"{target}",
                expr,
                path,
            )
        return UNKNOWN

    def _binary(self, expr: Binary, env: Dict[str, Type], path: str) -> Type:
        left = self.infer_value(expr.left, env, path)
        right = self.infer_value(expr.right, env, path)
        if expr.op in ARITHMETIC_OPS:
            for side in (left, right):
                if scalar_kind(side) == "str":
                    self._fail(
                        f"arithmetic operator {expr.op!r} is not defined on "
                        f"strings",
                        expr,
                        path,
                    )
                if isinstance(side, (RecordType, GroupType, SequenceType)):
                    self._fail(
                        f"arithmetic operator {expr.op!r} is not defined on "
                        f"{side}",
                        expr,
                        path,
                    )
            lk, rk = scalar_kind(left), scalar_kind(right)
            if expr.op == "truediv":
                return ScalarType("float")
            if "float" in (lk, rk):
                return ScalarType("float")
            if lk in _NUMERIC and rk in _NUMERIC:
                return ScalarType("int")
            return UNKNOWN
        if expr.op in COMPARISON_OPS:
            self._require_comparable(left, right, expr.op, expr, path)
            return ScalarType("bool")
        if expr.op in LOGICAL_OPS:
            for side_expr, side in ((expr.left, left), (expr.right, right)):
                kind = scalar_kind(side)
                if kind in ("str", "date") or isinstance(
                    side, (RecordType, GroupType, SequenceType)
                ):
                    self._fail(
                        f"logical operator {expr.op!r} requires boolean "
                        f"operands, got {side}",
                        side_expr,
                        path,
                    )
            return ScalarType("bool")
        return UNKNOWN

    def _require_comparable(
        self, left: Type, right: Type, op: str, node: Expr, path: str
    ) -> None:
        # records compare with records (tuple equality); a record against a
        # scalar, or scalars of different families, is a definite error
        structured = (RecordType, GroupType, SequenceType)
        if isinstance(left, structured) or isinstance(right, structured):
            if isinstance(left, ScalarType) or isinstance(right, ScalarType):
                self._fail(
                    f"cannot compare {left} with {right}", node, path
                )
            return
        lf = _FAMILIES.get(scalar_kind(left))
        rf = _FAMILIES.get(scalar_kind(right))
        if lf is not None and rf is not None and lf != rf:
            self._fail(
                f"mixed-type comparison ({op}): {left} vs {right}",
                node,
                path,
            )

    def _unary(self, expr: Unary, env: Dict[str, Type], path: str) -> Type:
        operand = self.infer_value(expr.operand, env, path)
        if expr.op == "not":
            return ScalarType("bool")
        if scalar_kind(operand) in ("str", "date"):
            self._fail(
                f"unary {expr.op!r} is not defined on {operand}", expr, path
            )
        if expr.op == "abs":
            return operand
        return operand

    def _conditional(
        self, expr: Conditional, env: Dict[str, Type], path: str
    ) -> Type:
        self.infer_value(expr.cond, env, path)
        then = self.infer_value(expr.then, env, path)
        other = self.infer_value(expr.other, env, path)
        then_kind, other_kind = scalar_kind(then), scalar_kind(other)
        if then_kind != "unknown" and other_kind != "unknown":
            lf, rf = _FAMILIES.get(then_kind), _FAMILIES.get(other_kind)
            if lf != rf:
                self._fail(
                    f"conditional branches have incompatible types: "
                    f"{then} vs {other}",
                    expr,
                    path,
                )
            if "float" in (then_kind, other_kind):
                return ScalarType("float")
            return then
        if then is not UNKNOWN:
            return then
        return other

    def _method(self, expr: Method, env: Dict[str, Type], path: str) -> Type:
        target = self.infer_value(expr.target, env, path)
        target_kind = scalar_kind(target)
        for arg in expr.args:
            self.infer_value(arg, env, path)
        if expr.name in _STR_METHODS:
            if expr.name == "contains" and isinstance(target, SequenceType):
                return ScalarType("bool")  # membership test on a collection
            if target_kind not in ("str", "unknown"):
                self._fail(
                    f"string method {expr.name!r} requires a str value, "
                    f"got {target}",
                    expr,
                    path,
                )
            return ScalarType(_STR_METHODS[expr.name])
        if expr.name == "round":
            if target_kind in ("str", "date"):
                self._fail(
                    f"round() is not defined on {target}", expr, path
                )
            return ScalarType("float")
        return UNKNOWN

    def _call(self, expr: Call, env: Dict[str, Type], path: str) -> Type:
        arg_types = [self.infer_value(a, env, path) for a in expr.args]
        if expr.name == "len":
            return ScalarType("int")
        if expr.name in ("int",):
            return ScalarType("int")
        if expr.name in ("float", "round"):
            return ScalarType("float")
        if expr.name == "str":
            return ScalarType("str")
        if expr.name == "abs" and arg_types:
            return arg_types[0]
        return UNKNOWN

    def _agg_call(self, expr: AggCall, env: Dict[str, Type], path: str) -> Type:
        group_type = UNKNOWN
        if isinstance(expr.group, Var):
            group_type = env.get(expr.group.name, UNKNOWN)
        if not isinstance(group_type, GroupType):
            if group_type is UNKNOWN and _has_group_binding(env):
                # aggregate over something other than the group parameter
                self._fail(
                    f"aggregate {expr.kind!r} must be called on the group "
                    f"parameter",
                    expr,
                    path,
                )
            self._fail(
                f"aggregate call {expr.kind!r} outside a group selector; "
                f"aggregates are only valid in selectors over group_by "
                f"results",
                expr,
                path,
            )
        if expr.kind == "count":
            return ScalarType("int")
        selector = expr.arg
        env2 = dict(env)
        env2[selector.params[0]] = group_type.element
        value = self.infer_value(
            selector.body, env2, f"{path}.{expr.kind}"
        )
        return self._aggregate_result(expr.kind, value, expr, path)


def _has_group_binding(env: Dict[str, Type]) -> bool:
    return any(isinstance(t, GroupType) for t in env.values())


def _walk(expr: Expr):
    from .nodes import walk

    return walk(expr)
