"""Visitor and transformer infrastructure for expression trees."""

from __future__ import annotations

from typing import Callable, Dict

from .nodes import (
    AggCall,
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    QueryOp,
    SourceExpr,
    Unary,
    Var,
)

__all__ = ["Transformer", "rewrite_bottom_up", "substitute", "collect"]


class Transformer:
    """Rebuilds an expression tree, dispatching on node type.

    Subclasses override ``visit_<NodeType>`` methods; the default behaviour
    reconstructs each node from transformed children, sharing nodes when
    nothing changed underneath.
    """

    def visit(self, expr: Expr) -> Expr:
        method = getattr(self, f"visit_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        return self.generic_visit(expr)

    def generic_visit(self, expr: Expr) -> Expr:
        if isinstance(expr, (Constant, Param, Var, SourceExpr)):
            return expr
        if isinstance(expr, Member):
            target = self.visit(expr.target)
            return expr if target is expr.target else Member(target, expr.name)
        if isinstance(expr, Binary):
            left, right = self.visit(expr.left), self.visit(expr.right)
            if left is expr.left and right is expr.right:
                return expr
            return Binary(expr.op, left, right)
        if isinstance(expr, Unary):
            operand = self.visit(expr.operand)
            return expr if operand is expr.operand else Unary(expr.op, operand)
        if isinstance(expr, Call):
            args = tuple(self.visit(a) for a in expr.args)
            if all(a is b for a, b in zip(args, expr.args)):
                return expr
            return Call(expr.name, args)
        if isinstance(expr, Method):
            target = self.visit(expr.target)
            args = tuple(self.visit(a) for a in expr.args)
            if target is expr.target and all(a is b for a, b in zip(args, expr.args)):
                return expr
            return Method(target, expr.name, args)
        if isinstance(expr, Conditional):
            cond, then, other = (
                self.visit(expr.cond),
                self.visit(expr.then),
                self.visit(expr.other),
            )
            if cond is expr.cond and then is expr.then and other is expr.other:
                return expr
            return Conditional(cond, then, other)
        if isinstance(expr, New):
            fields = tuple((name, self.visit(e)) for name, e in expr.fields)
            if all(e is f for (_, e), (_, f) in zip(fields, expr.fields)):
                return expr
            return New(fields, expr.type_name)
        if isinstance(expr, Lambda):
            body = self.visit(expr.body)
            if body is expr.body:
                return expr
            return Lambda(expr.params, body, expr.effects)
        if isinstance(expr, AggCall):
            arg = self.visit(expr.arg) if expr.arg is not None else None
            group = self.visit(expr.group)
            if arg is expr.arg and group is expr.group:
                return expr
            return AggCall(expr.kind, arg, group=group)
        if isinstance(expr, QueryOp):
            source = self.visit(expr.source)
            args = tuple(self.visit(a) for a in expr.args)
            if source is expr.source and all(a is b for a, b in zip(args, expr.args)):
                return expr
            return QueryOp(expr.name, source, args)
        raise TypeError(f"not an expression node: {expr!r}")


class _FnTransformer(Transformer):
    """Applies a post-order rewriting function to every node."""

    def __init__(self, fn: Callable[[Expr], Expr]):
        self._fn = fn

    def visit(self, expr: Expr) -> Expr:
        rebuilt = self.generic_visit(expr)
        return self._fn(rebuilt)


def rewrite_bottom_up(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rewrite *expr* by applying *fn* to every node, children first."""
    return _FnTransformer(fn).visit(expr)


class _Substituter(Transformer):
    def __init__(self, mapping: Dict[str, Expr]):
        self._mapping = mapping

    def visit_Var(self, expr: Var) -> Expr:
        return self._mapping.get(expr.name, expr)

    def visit_Lambda(self, expr: Lambda) -> Expr:
        # inner lambdas introduce fresh scopes: shadowed names are not touched
        shadowed = {n: e for n, e in self._mapping.items() if n not in expr.params}
        if not shadowed:
            return expr
        body = _Substituter(shadowed).visit(expr.body)
        if body is expr.body:
            return expr
        return Lambda(expr.params, body, expr.effects)


def substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Replace free :class:`Var` references by name.

    The central tool for *inlining lambdas into generated code*: a traced
    predicate ``Lambda(('s',), body)`` applied to the loop variable
    ``elem_1`` becomes ``substitute(body, {'s': Var('elem_1')})``.
    """
    return _Substituter(mapping).visit(expr)


def collect(expr: Expr, predicate: Callable[[Expr], bool]) -> list:
    """Return all descendant nodes (including *expr*) matching *predicate*."""
    from .nodes import walk

    return [node for node in walk(expr) if predicate(node)]
