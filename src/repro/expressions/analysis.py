"""Static analyses over expression trees.

Used by the canonicalizer (constant detection), the optimizer (predicate
cost estimation, pushdown legality) and the hybrid backend's *source
mapping* construction (§6.2): which members of which input a query touches
determines exactly what gets staged to native memory.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .nodes import (
    AggCall,
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    Param,
    Var,
    children,
    walk,
)

__all__ = [
    "free_vars",
    "used_params",
    "member_usage",
    "contains_aggregate",
    "is_constant",
    "predicate_cost",
    "conjuncts",
]


def free_vars(expr: Expr) -> FrozenSet[str]:
    """Names of variables referenced but not bound by an enclosing lambda."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Lambda):
        return frozenset(free_vars(expr.body) - set(expr.params))
    if isinstance(expr, AggCall):
        inner = free_vars(expr.arg) if expr.arg is not None else frozenset()
        return inner | free_vars(expr.group)
    result: Set[str] = set()
    for child in children(expr):
        result |= free_vars(child)
    return frozenset(result)


def used_params(expr: Expr) -> FrozenSet[str]:
    """Names of all :class:`Param` nodes in *expr*."""
    return frozenset(n.name for n in walk(expr) if isinstance(n, Param))


def member_usage(expr: Expr) -> Dict[str, Set[str]]:
    """Map each free variable to the set of member paths accessed on it.

    Nested access like ``s.shop.city`` is recorded as the dotted path
    ``'shop.city'``.  This is the raw material of the paper's source
    mapping (Figure 6): only members present here are copied when staging.
    """
    usage: Dict[str, Set[str]] = {}

    def record(node: Expr, bound: FrozenSet[str]) -> None:
        if isinstance(node, Member):
            path, target = [node.name], node.target
            while isinstance(target, Member):
                path.append(target.name)
                target = target.target
            if isinstance(target, Var) and target.name not in bound:
                usage.setdefault(target.name, set()).add(".".join(reversed(path)))
                return
            record(target, bound)
            return
        if isinstance(node, Var) and node.name not in bound:
            # bare use of the variable means the whole element is needed
            usage.setdefault(node.name, set()).add("")
            return
        if isinstance(node, Lambda):
            record(node.body, bound | frozenset(node.params))
            return
        if isinstance(node, AggCall):
            if node.arg is not None:
                record(node.arg, bound)
            record(node.group, bound)
            return
        for child in children(node):
            record(child, bound)

    record(expr, frozenset())
    return usage


def contains_aggregate(expr: Expr) -> bool:
    """True when any :class:`AggCall` occurs in *expr*."""
    return any(isinstance(n, AggCall) for n in walk(expr))


def is_constant(expr: Expr) -> bool:
    """True when *expr* depends on no variables and no parameters.

    Such subtrees can be evaluated once at canonicalization time
    (``ConstantEvaluator`` in the paper's Figure 3).
    """
    for node in walk(expr):
        if isinstance(node, (Var, Param, AggCall)):
            return False
        if isinstance(node, Lambda):
            return False
    return True


_OP_COST = {
    "eq": 1.0,
    "ne": 1.0,
    "lt": 1.0,
    "le": 1.0,
    "gt": 1.0,
    "ge": 1.0,
    "add": 1.0,
    "sub": 1.0,
    "mul": 2.0,
    "truediv": 4.0,
    "floordiv": 4.0,
    "mod": 4.0,
    "pow": 8.0,
    "and": 0.5,
    "or": 0.5,
}


def predicate_cost(expr: Expr, kind_of=None) -> float:
    """Heuristic per-element evaluation cost of a predicate.

    Used to reorder conjuncts so cheap comparisons run first (§2.3's
    "reordering selection predicates according to expected processing
    cost").  String operations are assumed an order of magnitude more
    expensive than numeric comparisons.

    *kind_of*, when given, is a ``Expr -> str`` kind resolver built from
    the type-inference pass (see
    :func:`repro.expressions.typing.kind_resolver`); with it, comparisons
    against string-typed *fields* (``l.returnflag == p``) are costed as
    string work even though neither operand is a string constant.
    """
    cost = 0.0
    for node in walk(expr):
        if isinstance(node, Binary):
            base = _OP_COST.get(node.op, 1.0)
            if _is_stringy(node.left, kind_of) or _is_stringy(
                node.right, kind_of
            ):
                base *= 10.0
            cost += base
        elif isinstance(node, Method):
            cost += 10.0
        elif isinstance(node, Call):
            cost += 2.0
        elif isinstance(node, Member):
            cost += 0.5
        elif isinstance(node, Conditional):
            cost += 1.0
    return cost


def _is_stringy(expr: Expr, kind_of=None) -> bool:
    if isinstance(expr, Constant) and isinstance(expr.value, (str, bytes)):
        return True
    if kind_of is not None:
        return kind_of(expr) == "str"
    return False


def conjuncts(expr: Expr) -> list:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(expr, Binary) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]
