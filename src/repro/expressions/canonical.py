"""Canonical query form: constant evaluation and auto-parameterization.

The paper's query provider (Figure 3) first runs a ``ConstantEvaluator``
that collapses data-independent subtrees, then consults the query cache.
Two queries that differ only in embedded constant values (e.g. a selection
threshold driven by a GUI) must share one compiled artifact, so after
folding we *lift* every remaining constant into a named parameter.  The
parameterized tree is the cache key; the lifted values are bound at
execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from .evaluator import interpret
from .nodes import (
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Member,
    Method,
    Param,
    QueryOp,
    Unary,
    structural_key,
)
from .analysis import is_constant
from .visitor import Transformer

__all__ = [
    "CanonicalQuery",
    "fold_constants",
    "parameterize",
    "canonicalize",
    "cache_key",
]

#: prefix for auto-generated parameter names; user parameters never collide
#: because ``P('__cN')`` is reserved.
_AUTO_PREFIX = "__c"


@dataclass(frozen=True)
class CanonicalQuery:
    """A query reduced to its canonical, cache-keyable form."""

    tree: Expr
    #: values for auto-lifted parameters, keyed by generated name
    bindings: Dict[str, Any]

    @property
    def key(self) -> Any:
        return structural_key(self.tree)


class _ConstantFolder(Transformer):
    """Bottom-up partial evaluation of data-independent subtrees."""

    _FOLDABLE = (Binary, Unary, Call, Method, Conditional, Member)

    def visit(self, expr: Expr) -> Expr:
        rebuilt = self.generic_visit(expr)
        if isinstance(rebuilt, self._FOLDABLE) and is_constant(rebuilt):
            try:
                return Constant(interpret(rebuilt))
            except Exception:
                # leave unfoldable expressions intact; they will be
                # evaluated (and fail, if they must) at execution time
                return rebuilt
        return rebuilt


def fold_constants(expr: Expr) -> Expr:
    """Evaluate and collapse every data-independent subtree of *expr*."""
    return _ConstantFolder().visit(expr)


class _Parameterizer(Transformer):
    """Replaces constants with auto-named parameters, collecting values.

    Traversal order is deterministic (the transformer visits children in
    node-definition order), so structurally identical queries always produce
    the same parameter names — a requirement for cache hits.
    """

    def __init__(self) -> None:
        self.bindings: Dict[str, Any] = {}

    def visit_Constant(self, expr: Constant) -> Expr:
        name = f"{_AUTO_PREFIX}{len(self.bindings)}"
        self.bindings[name] = expr.value
        return Param(name)

    def visit_QueryOp(self, expr: QueryOp) -> Expr:
        # operator arguments that are raw constants (e.g. take counts)
        # are parameterized too: `take(10)` and `take(20)` share code
        return self.generic_visit(expr)


def parameterize(expr: Expr) -> Tuple[Expr, Dict[str, Any]]:
    """Lift all constants in *expr* to parameters.

    Returns the rewritten tree and the name → value bindings.
    """
    rewriter = _Parameterizer()
    tree = rewriter.visit(expr)
    return tree, rewriter.bindings


def canonicalize(expr: Expr) -> CanonicalQuery:
    """Fold constants, then lift the survivors into parameters."""
    folded = fold_constants(expr)
    tree, bindings = parameterize(folded)
    return CanonicalQuery(tree=tree, bindings=bindings)


def cache_key(canonical: CanonicalQuery, engine: str, options: Tuple = ()) -> Any:
    """Cache key: engine identity + options + canonical tree structure."""
    return (engine, options, canonical.key)
