"""Deterministic TPC-H data generation (a laptop-scale dbgen).

Generates the eight relations at a given scale factor with a fixed seed —
identical data on every run, so measurements are comparable across
sessions.  Columns are generated vectorized and assembled into
:class:`~repro.storage.struct_array.StructArray` (the §5 row store);
managed-side object lists decode lazily from the same arrays, so the
object and native representations are guaranteed to agree.

Distributions follow the TPC-H specification where our queries are
sensitive to them (key ranges and referential integrity, date windows and
their correlations, uniform quantities/discounts, the mktsegment and
return-flag domains); free-text columns are token fillers.
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, List

import numpy as np

from ..storage.schema import date_to_days
from ..storage.struct_array import StructArray
from .schema import TPCH_SCHEMAS

__all__ = ["TPCHData", "BASE_ROW_COUNTS"]

#: rows per relation at scale factor 1, per the TPC-H spec
BASE_ROW_COUNTS = {
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
}

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
CONTAINERS = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "WRAP JAR",
]
TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan",
]

_MIN_DATE = datetime.date(1992, 1, 1)
_MAX_ORDER_DATE = datetime.date(1998, 8, 2)
_STATUS_SPLIT = datetime.date(1995, 6, 17)


def _scaled(base: int, scale: float, minimum: int = 10) -> int:
    return max(minimum, int(round(base * scale)))


def _choice(rng: np.random.Generator, options: List[str], n: int) -> np.ndarray:
    encoded = np.array([o.encode("utf-8") for o in options])
    return encoded[rng.integers(0, len(options), n)]


def _filler(rng: np.random.Generator, n: int, width: int) -> np.ndarray:
    """Cheap text filler: 'w<number>' tokens, always within width."""
    digits = min(12, max(1, width - 2))
    numbers = rng.integers(0, 10**digits, n)
    return np.array([f"w{v}".encode("utf-8") for v in numbers], dtype=f"S{width}")


class TPCHData:
    """One deterministic TPC-H dataset, generated on first access.

    ``arrays(name)`` returns the native row store; ``objects(name)`` the
    managed-side object list decoded from it.  Both are cached.
    """

    def __init__(self, scale: float = 0.01, seed: int = 42):
        if scale <= 0:
            raise ValueError("scale factor must be positive")
        self.scale = scale
        self.seed = seed
        self._arrays: Dict[str, StructArray] = {}
        self._objects: Dict[str, List[Any]] = {}

    # -- public access -----------------------------------------------------------

    def arrays(self, name: str) -> StructArray:
        if name not in self._arrays:
            self._generate(name)
        return self._arrays[name]

    def objects(self, name: str) -> List[Any]:
        if name not in self._objects:
            self._objects[name] = self.arrays(name).to_objects()
        return self._objects[name]

    def row_count(self, name: str) -> int:
        return len(self.arrays(name))

    # -- generation ------------------------------------------------------------

    def _rng(self, name: str) -> np.random.Generator:
        import zlib

        # crc32, not hash(): str hashes are salted per process and would
        # break the generate-identical-data-every-run guarantee
        return np.random.default_rng([self.seed, zlib.crc32(name.encode())])

    def _store(self, name: str, columns: Dict[str, np.ndarray]) -> None:
        self._arrays[name] = StructArray.from_columns(TPCH_SCHEMAS[name], columns)

    def _generate(self, name: str) -> None:
        generator = getattr(self, f"_gen_{name}")
        generator()

    def _gen_region(self) -> None:
        n = len(REGIONS)
        rng = self._rng("region")
        self._store(
            "region",
            {
                "r_regionkey": np.arange(n, dtype=np.int64),
                "r_name": np.array([r.encode() for r in REGIONS]),
                "r_comment": _filler(rng, n, 20),
            },
        )

    def _gen_nation(self) -> None:
        n = len(NATIONS)
        rng = self._rng("nation")
        self._store(
            "nation",
            {
                "n_nationkey": np.arange(n, dtype=np.int64),
                "n_name": np.array([name.encode() for name, _ in NATIONS]),
                "n_regionkey": np.array([r for _, r in NATIONS], dtype=np.int64),
                "n_comment": _filler(rng, n, 20),
            },
        )

    def _gen_supplier(self) -> None:
        n = _scaled(BASE_ROW_COUNTS["supplier"], self.scale)
        rng = self._rng("supplier")
        keys = np.arange(1, n + 1, dtype=np.int64)
        self._store(
            "supplier",
            {
                "s_suppkey": keys,
                "s_name": np.array([f"Supplier#{k:09d}".encode() for k in keys]),
                "s_address": _filler(rng, n, 24),
                "s_nationkey": rng.integers(0, len(NATIONS), n),
                "s_phone": _filler(rng, n, 15),
                "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n), 2),
                "s_comment": _filler(rng, n, 24),
            },
        )

    def _gen_customer(self) -> None:
        n = _scaled(BASE_ROW_COUNTS["customer"], self.scale)
        rng = self._rng("customer")
        keys = np.arange(1, n + 1, dtype=np.int64)
        self._store(
            "customer",
            {
                "c_custkey": keys,
                "c_name": np.array([f"Customer#{k:09d}".encode() for k in keys]),
                "c_address": _filler(rng, n, 24),
                "c_nationkey": rng.integers(0, len(NATIONS), n),
                "c_phone": _filler(rng, n, 15),
                "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n), 2),
                "c_mktsegment": _choice(rng, SEGMENTS, n),
                "c_comment": _filler(rng, n, 24),
            },
        )

    def _gen_part(self) -> None:
        n = _scaled(BASE_ROW_COUNTS["part"], self.scale)
        rng = self._rng("part")
        keys = np.arange(1, n + 1, dtype=np.int64)
        s1 = rng.integers(0, len(TYPE_SYLL1), n)
        s2 = rng.integers(0, len(TYPE_SYLL2), n)
        s3 = rng.integers(0, len(TYPE_SYLL3), n)
        types = np.array(
            [
                f"{TYPE_SYLL1[a]} {TYPE_SYLL2[b]} {TYPE_SYLL3[c]}".encode()
                for a, b, c in zip(s1, s2, s3)
            ]
        )
        w1 = rng.integers(0, len(NAME_WORDS), n)
        w2 = rng.integers(0, len(NAME_WORDS), n)
        names = np.array(
            [f"{NAME_WORDS[a]} {NAME_WORDS[b]}".encode() for a, b in zip(w1, w2)]
        )
        mfgr = rng.integers(1, 6, n)
        brand = rng.integers(1, 6, n)
        self._store(
            "part",
            {
                "p_partkey": keys,
                "p_name": names,
                "p_mfgr": np.array([f"Manufacturer#{m}".encode() for m in mfgr]),
                "p_brand": np.array(
                    [f"Brand#{m}{b}".encode() for m, b in zip(mfgr, brand)]
                ),
                "p_type": types,
                "p_size": rng.integers(1, 51, n),
                "p_container": _choice(rng, CONTAINERS, n),
                "p_retailprice": np.round(
                    900 + (keys % 1000) / 10 + 100 * (keys % 10), 2
                ).astype(np.float64),
                "p_comment": _filler(rng, n, 14),
            },
        )

    def _gen_partsupp(self) -> None:
        parts = self.row_count("part")
        suppliers = self.row_count("supplier")
        rng = self._rng("partsupp")
        per_part = 4  # spec: 4 suppliers per part
        part_keys = np.repeat(np.arange(1, parts + 1, dtype=np.int64), per_part)
        n = len(part_keys)
        # spread suppliers so the same (part, supplier) pair never repeats
        offsets = np.tile(np.arange(per_part, dtype=np.int64), parts)
        supp_keys = (part_keys + offsets * (suppliers // per_part + 1)) % suppliers + 1
        self._store(
            "partsupp",
            {
                "ps_partkey": part_keys,
                "ps_suppkey": supp_keys,
                "ps_availqty": rng.integers(1, 10_000, n),
                "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, n), 2),
                "ps_comment": _filler(rng, n, 20),
            },
        )

    def _gen_orders(self) -> None:
        n = _scaled(BASE_ROW_COUNTS["orders"], self.scale)
        customers = self.row_count("customer")
        rng = self._rng("orders")
        keys = np.arange(1, n + 1, dtype=np.int64)
        date_lo = date_to_days(_MIN_DATE)
        date_hi = date_to_days(_MAX_ORDER_DATE)
        order_days = rng.integers(date_lo, date_hi + 1, n)
        split = date_to_days(_STATUS_SPLIT)
        status = np.where(order_days < split, b"F", b"O")
        # spec §4.2.3: orders are placed by only two thirds of the
        # customers (custkeys ≡ 0 mod 3 never order) — the population the
        # outer/anti-join queries (Q13, Q22) are defined over
        eligible = np.arange(1, customers + 1, dtype=np.int64)
        eligible = eligible[eligible % 3 != 0]
        self._store(
            "orders",
            {
                "o_orderkey": keys,
                "o_custkey": eligible[rng.integers(0, len(eligible), n)],
                "o_orderstatus": status.astype("S1"),
                "o_totalprice": np.round(rng.uniform(1000.0, 500_000.0, n), 2),
                "o_orderdate": order_days.astype(np.int32),
                "o_orderpriority": _choice(rng, PRIORITIES, n),
                "o_clerk": _filler(rng, n, 15),
                "o_shippriority": np.zeros(n, dtype=np.int64),
                "o_comment": _filler(rng, n, 24),
            },
        )

    def _gen_lineitem(self) -> None:
        orders = self.arrays("orders")
        parts = self.row_count("part")
        suppliers = self.row_count("supplier")
        rng = self._rng("lineitem")
        lines_per_order = rng.integers(1, 8, len(orders))
        order_keys = np.repeat(orders.column("o_orderkey"), lines_per_order)
        order_days = np.repeat(orders.column("o_orderdate"), lines_per_order)
        n = len(order_keys)
        line_numbers = np.concatenate(
            [np.arange(1, c + 1) for c in lines_per_order]
        ).astype(np.int64)
        quantity = rng.integers(1, 51, n).astype(np.float64)
        retail = 900 + rng.integers(0, 2001, n) / 10
        extended = np.round(quantity * retail, 2)
        ship_days = order_days + rng.integers(1, 122, n)
        commit_days = order_days + rng.integers(30, 91, n)
        receipt_days = ship_days + rng.integers(1, 31, n)
        split = date_to_days(_STATUS_SPLIT)
        linestatus = np.where(ship_days > split, b"O", b"F").astype("S1")
        returnflag = np.where(
            receipt_days <= split,
            np.where(rng.random(n) < 0.5, b"R", b"A"),
            b"N",
        ).astype("S1")
        self._store(
            "lineitem",
            {
                "l_orderkey": order_keys,
                "l_partkey": rng.integers(1, parts + 1, n),
                "l_suppkey": rng.integers(1, suppliers + 1, n),
                "l_linenumber": line_numbers,
                "l_quantity": quantity,
                "l_extendedprice": extended,
                "l_discount": np.round(rng.integers(0, 11, n) / 100.0, 2),
                "l_tax": np.round(rng.integers(0, 9, n) / 100.0, 2),
                "l_returnflag": returnflag,
                "l_linestatus": linestatus,
                "l_shipdate": ship_days.astype(np.int32),
                "l_commitdate": commit_days.astype(np.int32),
                "l_receiptdate": receipt_days.astype(np.int32),
                "l_shipinstruct": _choice(rng, SHIP_INSTRUCT, n),
                "l_shipmode": _choice(rng, SHIP_MODES, n),
                "l_comment": _filler(rng, n, 20),
            },
        )
