"""TPC-H workload substrate: schemas, deterministic datagen, queries Q1–Q3."""

from .datagen import BASE_ROW_COUNTS, TPCHData
from .queries import (
    Q1_DEFAULTS,
    Q2_DEFAULTS,
    Q3_DEFAULTS,
    aggregation_micro,
    join_micro,
    q1,
    q2,
    q3,
    relation_query,
    sorting_micro,
)
from .reference import reference_q1, reference_q2, reference_q3, reference_join_micro
from .schema import RELATION_NAMES, TPCH_SCHEMAS

__all__ = [
    "TPCHData",
    "BASE_ROW_COUNTS",
    "TPCH_SCHEMAS",
    "RELATION_NAMES",
    "relation_query",
    "q1",
    "q2",
    "q3",
    "aggregation_micro",
    "sorting_micro",
    "join_micro",
    "Q1_DEFAULTS",
    "Q2_DEFAULTS",
    "Q3_DEFAULTS",
    "reference_q1",
    "reference_q2",
    "reference_q3",
    "reference_join_micro",
]
