"""Straightforward-Python reference results for the TPC-H queries.

Hand-written, engine-free computations used by the test suite to validate
every execution strategy.  Deliberately boring: plain loops and dicts.
"""

from __future__ import annotations

import datetime
from collections import defaultdict
from typing import Dict, List, Tuple

from .datagen import TPCHData
from .queries import (
    Q1_DEFAULTS,
    Q2_DEFAULTS,
    Q3_DEFAULTS,
    Q4_DEFAULTS,
    Q13_DEFAULTS,
    Q16_DEFAULTS,
    Q21_DEFAULTS,
    Q22_DEFAULTS,
)

__all__ = [
    "reference_q1",
    "reference_q2",
    "reference_q3",
    "reference_q4",
    "reference_q13",
    "reference_q16",
    "reference_q21",
    "reference_q22",
    "reference_join_micro",
]


def reference_q1(data: TPCHData, cutoff: datetime.date = None) -> List[Tuple]:
    """(rf, ls, sum_qty, sum_base, sum_disc, sum_charge, avg_qty, avg_price,
    avg_disc, count) rows ordered by (rf, ls)."""
    cutoff = cutoff or Q1_DEFAULTS["cutoff"]
    groups: Dict[Tuple[str, str], List[float]] = {}
    for l in data.objects("lineitem"):
        if l.l_shipdate > cutoff:
            continue
        key = (l.l_returnflag, l.l_linestatus)
        slots = groups.get(key)
        if slots is None:
            slots = groups[key] = [0.0, 0.0, 0.0, 0.0, 0.0, 0]
        disc_price = l.l_extendedprice * (1 - l.l_discount)
        slots[0] += l.l_quantity
        slots[1] += l.l_extendedprice
        slots[2] += disc_price
        slots[3] += disc_price * (1 + l.l_tax)
        slots[4] += l.l_discount
        slots[5] += 1
    rows = []
    for (rf, ls), s in sorted(groups.items()):
        count = s[5]
        rows.append(
            (
                rf,
                ls,
                s[0],
                s[1],
                s[2],
                s[3],
                s[0] / count,
                s[1] / count,
                s[4] / count,
                count,
            )
        )
    return rows


def reference_q2(
    data: TPCHData,
    size: int = None,
    type_suffix: str = None,
    region: str = None,
) -> List[Tuple]:
    """(s_acctbal, s_name, n_name, p_partkey, p_mfgr) top-100 rows."""
    size = size if size is not None else Q2_DEFAULTS["size"]
    type_suffix = type_suffix or Q2_DEFAULTS["type_suffix"]
    region = region or Q2_DEFAULTS["region"]

    region_keys = {
        r.r_regionkey for r in data.objects("region") if r.r_name == region
    }
    nations = {
        n.n_nationkey: n.n_name
        for n in data.objects("nation")
        if n.n_regionkey in region_keys
    }
    suppliers = {
        s.s_suppkey: s
        for s in data.objects("supplier")
        if s.s_nationkey in nations
    }
    costs_by_part: Dict[int, List] = defaultdict(list)
    for ps in data.objects("partsupp"):
        supplier = suppliers.get(ps.ps_suppkey)
        if supplier is not None:
            costs_by_part[ps.ps_partkey].append((ps.ps_supplycost, supplier))
    rows = []
    for p in data.objects("part"):
        if p.p_size != size or not p.p_type.endswith(type_suffix):
            continue
        offers = costs_by_part.get(p.p_partkey)
        if not offers:
            continue
        min_cost = min(cost for cost, _ in offers)
        for cost, supplier in offers:
            if cost == min_cost:
                rows.append(
                    (
                        supplier.s_acctbal,
                        supplier.s_name,
                        nations[supplier.s_nationkey],
                        p.p_partkey,
                        p.p_mfgr,
                    )
                )
    rows.sort(key=lambda r: (-r[0], r[2], r[1], r[3]))
    return rows[:100]


def reference_q3(
    data: TPCHData,
    segment: str = None,
    date: datetime.date = None,
) -> List[Tuple]:
    """(l_orderkey, revenue, o_orderdate, o_shippriority) top-10 rows."""
    segment = segment or Q3_DEFAULTS["segment"]
    date = date or Q3_DEFAULTS["date"]

    building = {
        c.c_custkey for c in data.objects("customer") if c.c_mktsegment == segment
    }
    open_orders = {
        o.o_orderkey: o
        for o in data.objects("orders")
        if o.o_orderdate < date and o.o_custkey in building
    }
    revenue: Dict[int, float] = defaultdict(float)
    for l in data.objects("lineitem"):
        if l.l_shipdate > date and l.l_orderkey in open_orders:
            revenue[l.l_orderkey] += l.l_extendedprice * (1 - l.l_discount)
    rows = [
        (key, rev, open_orders[key].o_orderdate, open_orders[key].o_shippriority)
        for key, rev in revenue.items()
    ]
    rows.sort(key=lambda r: (-r[1], r[2]))
    return rows[:10]


def reference_q4(
    data: TPCHData,
    date_lo: datetime.date = None,
    date_hi: datetime.date = None,
) -> List[Tuple]:
    """(o_orderpriority, order_count) rows ordered by priority."""
    date_lo = date_lo or Q4_DEFAULTS["date_lo"]
    date_hi = date_hi or Q4_DEFAULTS["date_hi"]
    late_orders = {
        l.l_orderkey
        for l in data.objects("lineitem")
        if l.l_commitdate < l.l_receiptdate
    }
    counts: Dict[str, int] = defaultdict(int)
    for o in data.objects("orders"):
        if date_lo <= o.o_orderdate < date_hi and o.o_orderkey in late_orders:
            counts[o.o_orderpriority] += 1
    return sorted(counts.items())


def reference_q13(data: TPCHData, exclude: str = None) -> List[Tuple]:
    """(c_count, custdist) rows ordered by (custdist desc, c_count desc)."""
    exclude = exclude or Q13_DEFAULTS["exclude"]
    per_customer: Dict[int, int] = defaultdict(int)
    for o in data.objects("orders"):
        if o.o_orderpriority != exclude:
            per_customer[o.o_custkey] += 1
    dist: Dict[int, int] = defaultdict(int)
    for c in data.objects("customer"):
        dist[per_customer.get(c.c_custkey, 0)] += 1
    rows = list(dist.items())
    rows.sort(key=lambda r: (-r[1], -r[0]))
    return rows


def reference_q16(
    data: TPCHData,
    brand: str = None,
    max_size: int = None,
    min_bal: float = None,
) -> List[Tuple]:
    """(p_brand, p_type, p_size, supplier_cnt) rows, count-desc then key."""
    brand = brand or Q16_DEFAULTS["brand"]
    max_size = max_size if max_size is not None else Q16_DEFAULTS["max_size"]
    min_bal = min_bal if min_bal is not None else Q16_DEFAULTS["min_bal"]
    flagged = {
        s.s_suppkey for s in data.objects("supplier") if s.s_acctbal < min_bal
    }
    parts = {
        p.p_partkey: p
        for p in data.objects("part")
        if p.p_brand != brand and p.p_size <= max_size
    }
    seen = set()
    for ps in data.objects("partsupp"):
        if ps.ps_suppkey in flagged:
            continue
        p = parts.get(ps.ps_partkey)
        if p is not None:
            seen.add((p.p_brand, p.p_type, p.p_size, ps.ps_suppkey))
    counts: Dict[Tuple, int] = defaultdict(int)
    for b, t, sz, _ in seen:
        counts[(b, t, sz)] += 1
    rows = [(b, t, sz, n) for (b, t, sz), n in counts.items()]
    rows.sort(key=lambda r: (-r[3], r[0], r[1], r[2]))
    return rows


def reference_q21(data: TPCHData, status: str = None) -> List[Tuple]:
    """(s_name, numwait) top-10 rows, numwait-desc then name."""
    status = status or Q21_DEFAULTS["status"]
    f_orders = {
        o.o_orderkey for o in data.objects("orders") if o.o_orderstatus == status
    }
    all_suppliers: Dict[int, set] = defaultdict(set)
    late_suppliers: Dict[int, set] = defaultdict(set)
    for l in data.objects("lineitem"):
        all_suppliers[l.l_orderkey].add(l.l_suppkey)
        if l.l_receiptdate > l.l_commitdate:
            late_suppliers[l.l_orderkey].add(l.l_suppkey)
    numwait: Dict[int, int] = defaultdict(int)
    for l in data.objects("lineitem"):
        if (
            l.l_receiptdate > l.l_commitdate
            and l.l_orderkey in f_orders
            and len(all_suppliers[l.l_orderkey]) > 1
            and len(late_suppliers[l.l_orderkey]) <= 1
        ):
            numwait[l.l_suppkey] += 1
    names = {s.s_suppkey: s.s_name for s in data.objects("supplier")}
    rows = [(names[k], n) for k, n in numwait.items()]
    rows.sort(key=lambda r: (-r[1], r[0]))
    return rows[:10]


def reference_q22(data: TPCHData, nations: int = None) -> List[Tuple]:
    """(cntrycode, numcust, totacctbal) rows ordered by country."""
    nations = nations if nations is not None else Q22_DEFAULTS["nations"]
    balances = [
        c.c_acctbal
        for c in data.objects("customer")
        if c.c_acctbal > 0.0 and c.c_nationkey < nations
    ]
    avg_bal = sum(balances) / len(balances)
    has_orders = {o.o_custkey for o in data.objects("orders")}
    counts: Dict[int, List[float]] = {}
    for c in data.objects("customer"):
        if (
            c.c_nationkey < nations
            and c.c_acctbal > avg_bal
            and c.c_custkey not in has_orders
        ):
            slot = counts.setdefault(c.c_nationkey, [0, 0.0])
            slot[0] += 1
            slot[1] += c.c_acctbal
    return [(k, n, total) for k, (n, total) in sorted(counts.items())]


def reference_join_micro(
    data: TPCHData,
    selectivity: float,
    segment: str = "BUILDING",
) -> int:
    """Row count of the Figure-11 join sub-query at *selectivity*."""
    qmax = 50.0 * selectivity
    date_lo = datetime.date(1992, 1, 1)
    date_hi = datetime.date(1998, 8, 2)
    cutoff = date_lo + datetime.timedelta(
        days=int((date_hi - date_lo).days * selectivity)
    )
    building = {
        c.c_custkey for c in data.objects("customer") if c.c_mktsegment == segment
    }
    open_orders = {
        o.o_orderkey
        for o in data.objects("orders")
        if o.o_orderdate < cutoff and o.o_custkey in building
    }
    return sum(
        1
        for l in data.objects("lineitem")
        if l.l_quantity <= qmax and l.l_orderkey in open_orders
    )
