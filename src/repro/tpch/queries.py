"""TPC-H queries Q1–Q3 and the §7 microbenchmark variants, in the LINQ API.

Each builder takes a :class:`~repro.tpch.datagen.TPCHData`, an engine name
and (optionally) a shared provider, and returns an unexecuted
:class:`~repro.query.queryable.Query`.  Builders choose the source
representation to match the engine: ``native`` reads the struct arrays
(§5's premise), everything else reads the managed object lists.

Q2's nested sub-query is hand-decorrelated into a min-cost join — the same
"hand-optimized query plan that eliminates the nested sub-query" the paper
uses for LINQ-to-objects, applied uniformly so every engine runs the same
logical work.

Default parameter values follow the TPC-H reference parameters.
"""

from __future__ import annotations

import datetime
from typing import Optional

from ..expressions.builder import P, new
from ..query.provider import QueryProvider
from ..query.queryable import Query, from_iterable, from_struct_array
from .datagen import TPCHData

__all__ = [
    "relation_query",
    "q1",
    "q2",
    "q3",
    "q4",
    "q13",
    "q16",
    "q21",
    "q22",
    "aggregation_micro",
    "sorting_micro",
    "join_micro",
    "Q1_DEFAULTS",
    "Q2_DEFAULTS",
    "Q3_DEFAULTS",
    "Q4_DEFAULTS",
    "Q13_DEFAULTS",
    "Q16_DEFAULTS",
    "Q21_DEFAULTS",
    "Q22_DEFAULTS",
]

Q1_DEFAULTS = {"cutoff": datetime.date(1998, 12, 1) - datetime.timedelta(days=90)}
Q2_DEFAULTS = {"size": 15, "type_suffix": "BRASS", "region": "EUROPE"}
Q3_DEFAULTS = {"segment": "BUILDING", "date": datetime.date(1995, 3, 15)}
Q4_DEFAULTS = {
    "date_lo": datetime.date(1993, 7, 1),
    "date_hi": datetime.date(1993, 10, 1),
}
Q13_DEFAULTS = {"exclude": "1-URGENT"}
Q16_DEFAULTS = {"brand": "Brand#45", "max_size": 25, "min_bal": 0.0}
Q21_DEFAULTS = {"status": "F"}
Q22_DEFAULTS = {"nations": 10}


def relation_query(
    data: TPCHData,
    name: str,
    engine: str,
    provider: Optional[QueryProvider] = None,
) -> Query:
    """One TPC-H relation as a queryable source for *engine*."""
    if engine == "native":
        return from_struct_array(data.arrays(name)).using(engine, provider)
    token = f"tpch:{name}"
    return from_iterable(data.objects(name), token=token).using(engine, provider)


# ---------------------------------------------------------------------------
# Q1 — pricing summary report (aggregation-heavy)
# ---------------------------------------------------------------------------


def q1(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q1: eight aggregates over lineitem, grouped by two flags.

    Exercises every §2.3 aggregation inefficiency: shared counts (three
    averages), overlapping sums, and single-pass fusion.
    """
    lineitem = relation_query(data, "lineitem", engine, provider)
    return (
        lineitem.where(lambda l: l.l_shipdate <= P("cutoff"))
        .group_by(
            lambda l: new(rf=l.l_returnflag, ls=l.l_linestatus),
            lambda g: new(
                l_returnflag=g.key.rf,
                l_linestatus=g.key.ls,
                sum_qty=g.sum(lambda l: l.l_quantity),
                sum_base_price=g.sum(lambda l: l.l_extendedprice),
                sum_disc_price=g.sum(
                    lambda l: l.l_extendedprice * (1 - l.l_discount)
                ),
                sum_charge=g.sum(
                    lambda l: l.l_extendedprice
                    * (1 - l.l_discount)
                    * (1 + l.l_tax)
                ),
                avg_qty=g.avg(lambda l: l.l_quantity),
                avg_price=g.avg(lambda l: l.l_extendedprice),
                avg_disc=g.avg(lambda l: l.l_discount),
                count_order=g.count(),
            ),
        )
        .order_by(lambda r: r.l_returnflag)
        .then_by(lambda r: r.l_linestatus)
        .with_params(**Q1_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q2 — minimum-cost supplier (decorrelated)
# ---------------------------------------------------------------------------


def q2(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q2, hand-decorrelated (min supply cost per part in a region)."""
    region = relation_query(data, "region", engine, provider)
    nation = relation_query(data, "nation", engine, provider)
    supplier = relation_query(data, "supplier", engine, provider)
    partsupp = relation_query(data, "partsupp", engine, provider)
    part = relation_query(data, "part", engine, provider)

    target_nations = nation.join(
        region.where(lambda r: r.r_name == P("region")),
        lambda n: n.n_regionkey,
        lambda r: r.r_regionkey,
        lambda n, r: new(nationkey=n.n_nationkey, n_name=n.n_name),
    )
    regional_suppliers = supplier.join(
        target_nations,
        lambda s: s.s_nationkey,
        lambda n: n.nationkey,
        lambda s, n: new(
            suppkey=s.s_suppkey,
            s_name=s.s_name,
            s_acctbal=s.s_acctbal,
            n_name=n.n_name,
        ),
    )
    regional_costs = partsupp.join(
        regional_suppliers,
        lambda ps: ps.ps_suppkey,
        lambda s: s.suppkey,
        lambda ps, s: new(
            partkey=ps.ps_partkey,
            cost=ps.ps_supplycost,
            s_name=s.s_name,
            s_acctbal=s.s_acctbal,
            n_name=s.n_name,
        ),
    )
    # the decorrelated sub-query: cheapest regional cost per part
    min_costs = regional_costs.group_by(
        lambda c: c.partkey,
        lambda g: new(partkey=g.key, min_cost=g.min(lambda c: c.cost)),
    )
    target_parts = part.where(
        lambda p: (p.p_size == P("size")) & p.p_type.endswith(P("type_suffix"))
    )
    candidate = regional_costs.join(
        target_parts,
        lambda c: c.partkey,
        lambda p: p.p_partkey,
        lambda c, p: new(
            partkey=c.partkey,
            cost=c.cost,
            s_name=c.s_name,
            s_acctbal=c.s_acctbal,
            n_name=c.n_name,
            p_mfgr=p.p_mfgr,
        ),
    )
    return (
        candidate.join(
            min_costs,
            lambda c: c.partkey,
            lambda m: m.partkey,
            lambda c, m: new(
                s_acctbal=c.s_acctbal,
                s_name=c.s_name,
                n_name=c.n_name,
                p_partkey=c.partkey,
                p_mfgr=c.p_mfgr,
                cost=c.cost,
                min_cost=m.min_cost,
            ),
        )
        .where(lambda r: r.cost == r.min_cost)
        .select(
            lambda r: new(
                s_acctbal=r.s_acctbal,
                s_name=r.s_name,
                n_name=r.n_name,
                p_partkey=r.p_partkey,
                p_mfgr=r.p_mfgr,
            )
        )
        .order_by_desc(lambda r: r.s_acctbal)
        .then_by(lambda r: r.n_name)
        .then_by(lambda r: r.s_name)
        .then_by(lambda r: r.p_partkey)
        .take(100)
        .with_params(**Q2_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q3 — shipping priority (join-heavy)
# ---------------------------------------------------------------------------


def q3(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q3: customer ⋈ orders ⋈ lineitem, top-10 revenue."""
    customer = relation_query(data, "customer", engine, provider)
    orders = relation_query(data, "orders", engine, provider)
    lineitem = relation_query(data, "lineitem", engine, provider)

    open_orders = orders.where(lambda o: o.o_orderdate < P("date")).join(
        customer.where(lambda c: c.c_mktsegment == P("segment")),
        lambda o: o.o_custkey,
        lambda c: c.c_custkey,
        lambda o, c: new(
            orderkey=o.o_orderkey,
            orderdate=o.o_orderdate,
            shippriority=o.o_shippriority,
        ),
    )
    return (
        lineitem.where(lambda l: l.l_shipdate > P("date"))
        .join(
            open_orders,
            lambda l: l.l_orderkey,
            lambda o: o.orderkey,
            lambda l, o: new(
                orderkey=o.orderkey,
                orderdate=o.orderdate,
                shippriority=o.shippriority,
                revenue=l.l_extendedprice * (1 - l.l_discount),
            ),
        )
        .group_by(
            lambda r: new(
                orderkey=r.orderkey,
                orderdate=r.orderdate,
                shippriority=r.shippriority,
            ),
            lambda g: new(
                l_orderkey=g.key.orderkey,
                revenue=g.sum(lambda r: r.revenue),
                o_orderdate=g.key.orderdate,
                o_shippriority=g.key.shippriority,
            ),
        )
        .order_by_desc(lambda r: r.revenue)
        .then_by(lambda r: r.o_orderdate)
        .take(10)
        .with_params(**Q3_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q4 — order priority checking (semi join / EXISTS)
# ---------------------------------------------------------------------------


def q4(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q4: orders with at least one late lineitem, counted by priority.

    The ``EXISTS`` sub-query is a semi join: each order in the date window
    is kept iff some lineitem of that order committed before it was
    received.
    """
    orders = relation_query(data, "orders", engine, provider)
    lineitem = relation_query(data, "lineitem", engine, provider)
    return (
        orders.where(
            lambda o: (o.o_orderdate >= P("date_lo")) & (o.o_orderdate < P("date_hi"))
        )
        .join_semi(
            lineitem.where(lambda l: l.l_commitdate < l.l_receiptdate),
            lambda o: o.o_orderkey,
            lambda l: l.l_orderkey,
        )
        .group_by(
            lambda o: o.o_orderpriority,
            lambda g: new(o_orderpriority=g.key, order_count=g.count()),
        )
        .order_by(lambda r: r.o_orderpriority)
        .with_params(**Q4_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q13 — customer order-count distribution (left outer join)
# ---------------------------------------------------------------------------


def q13(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q13: how many customers placed 0, 1, 2, … orders.

    Customers with no (qualifying) orders must still appear with a count
    of zero — the defining left-outer-join query.  The matched side
    carries an ``ind=1`` marker and the default record carries ``ind=0``,
    so the per-customer order count is a plain sum (the same trick the
    ``count(o_orderkey)`` null-skipping aggregate plays in SQL).  The
    reference query excludes a comment pattern; our datagen comments are
    fillers, so the exclusion predicate is an order priority instead.
    """
    customer = relation_query(data, "customer", engine, provider)
    orders = relation_query(data, "orders", engine, provider)
    qualifying = orders.where(lambda o: o.o_orderpriority != P("exclude")).select(
        lambda o: new(cust=o.o_custkey, ind=1)
    )
    return (
        customer.left_outer_join(
            qualifying,
            lambda c: c.c_custkey,
            lambda o: o.cust,
            lambda c, o: new(custkey=c.c_custkey, ind=o.ind),
            default={"cust": 0, "ind": 0},
        )
        .group_by(
            lambda r: r.custkey,
            lambda g: new(custkey=g.key, c_count=g.sum(lambda r: r.ind)),
        )
        .group_by(
            lambda r: r.c_count,
            lambda g: new(c_count=g.key, custdist=g.count()),
        )
        .order_by_desc(lambda r: r.custdist)
        .then_by_desc(lambda r: r.c_count)
        .with_params(**Q13_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q16 — parts/supplier relationship (anti join / NOT IN + distinct)
# ---------------------------------------------------------------------------


def q16(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q16: distinct supplier counts per (brand, type, size).

    The ``NOT IN (select s_suppkey …)`` is an anti join against the
    flagged suppliers, and ``count(distinct ps_suppkey)`` is a distinct
    over projected records followed by a group count.  The reference
    query flags suppliers by a comment pattern; our datagen comments are
    fillers, so suppliers in arrears (negative balance) stand in.
    """
    partsupp = relation_query(data, "partsupp", engine, provider)
    part = relation_query(data, "part", engine, provider)
    supplier = relation_query(data, "supplier", engine, provider)
    flagged = supplier.where(lambda s: s.s_acctbal < P("min_bal"))
    return (
        partsupp.join_anti(
            flagged,
            lambda ps: ps.ps_suppkey,
            lambda s: s.s_suppkey,
        )
        .join(
            part.where(
                lambda p: (p.p_brand != P("brand")) & (p.p_size <= P("max_size"))
            ),
            lambda ps: ps.ps_partkey,
            lambda p: p.p_partkey,
            lambda ps, p: new(
                brand=p.p_brand, type=p.p_type, size=p.p_size, suppkey=ps.ps_suppkey
            ),
        )
        .distinct()
        .group_by(
            lambda r: new(brand=r.brand, type=r.type, size=r.size),
            lambda g: new(
                p_brand=g.key.brand,
                p_type=g.key.type,
                p_size=g.key.size,
                supplier_cnt=g.count(),
            ),
        )
        .order_by_desc(lambda r: r.supplier_cnt)
        .then_by(lambda r: r.p_brand)
        .then_by(lambda r: r.p_type)
        .then_by(lambda r: r.p_size)
        .with_params(**Q16_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q21 — suppliers who kept orders waiting (semi + anti join)
# ---------------------------------------------------------------------------


def q21(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q21: suppliers whose late delivery alone held up an order.

    Hand-decorrelated like Q2: the correlated ``EXISTS l2`` (another
    supplier contributed to the order) becomes a semi join against the
    orders with more than one distinct supplier, and ``NOT EXISTS l3``
    (no *other* supplier was late) becomes an anti join against the
    orders with more than one distinct *late* supplier — a late lineitem
    surviving both is the sole late supplier of a multi-supplier order.
    """
    lineitem = relation_query(data, "lineitem", engine, provider)
    orders = relation_query(data, "orders", engine, provider)
    supplier = relation_query(data, "supplier", engine, provider)

    late = lineitem.where(lambda l: l.l_receiptdate > l.l_commitdate)

    def supplier_counts(source: Query) -> Query:
        return (
            source.select(lambda l: new(okey=l.l_orderkey, skey=l.l_suppkey))
            .distinct()
            .group_by(
                lambda r: r.okey,
                lambda g: new(okey=g.key, nsupp=g.count()),
            )
            .where(lambda r: r.nsupp > 1)
        )

    multi_supplier = supplier_counts(lineitem)
    multi_late = supplier_counts(late)
    return (
        late.join_semi(
            orders.where(lambda o: o.o_orderstatus == P("status")),
            lambda l: l.l_orderkey,
            lambda o: o.o_orderkey,
        )
        .join_semi(multi_supplier, lambda l: l.l_orderkey, lambda m: m.okey)
        .join_anti(multi_late, lambda l: l.l_orderkey, lambda m: m.okey)
        .group_by(
            lambda l: l.l_suppkey,
            lambda g: new(skey=g.key, numwait=g.count()),
        )
        .join(
            supplier,
            lambda r: r.skey,
            lambda s: s.s_suppkey,
            lambda r, s: new(s_name=s.s_name, numwait=r.numwait),
        )
        .order_by_desc(lambda r: r.numwait)
        .then_by(lambda r: r.s_name)
        .take(10)
        .with_params(**Q21_DEFAULTS)
    )


# ---------------------------------------------------------------------------
# Q22 — global sales opportunity (anti join + prepared scalar sub-query)
# ---------------------------------------------------------------------------


def q22(data: TPCHData, engine: str, provider: Optional[QueryProvider] = None) -> Query:
    """TPC-H Q22: well-funded customers who never ordered, by country.

    The scalar sub-query (average positive account balance) runs first as
    its own prepared query and feeds the outer query as a parameter —
    composition through ``with_params`` rather than a nested plan.  The
    ``NOT EXISTS (select … from orders)`` is an anti join.  Country codes
    are phone-prefix substrings in the reference query; our datagen keys
    country on ``c_nationkey``, so a nation-key range stands in.
    """
    customer = relation_query(data, "customer", engine, provider)
    orders = relation_query(data, "orders", engine, provider)
    nations = Q22_DEFAULTS["nations"]
    avg_bal = (
        customer.where(
            lambda c: (c.c_acctbal > 0.0) & (c.c_nationkey < P("nations"))
        )
        .with_params(nations=nations)
        .average(lambda c: c.c_acctbal)
    )
    return (
        customer.where(
            lambda c: (c.c_nationkey < P("nations")) & (c.c_acctbal > P("avg_bal"))
        )
        .join_anti(orders, lambda c: c.c_custkey, lambda o: o.o_custkey)
        .group_by(
            lambda c: c.c_nationkey,
            lambda g: new(
                cntrycode=g.key,
                numcust=g.count(),
                totacctbal=g.sum(lambda c: c.c_acctbal),
            ),
        )
        .order_by(lambda r: r.cntrycode)
        .with_params(nations=nations, avg_bal=avg_bal)
    )


# ---------------------------------------------------------------------------
# §7.1–7.3 microbenchmarks (selectivity sweeps)
# ---------------------------------------------------------------------------


def _quantity_threshold(selectivity: float) -> float:
    """l_quantity is uniform on 1..50: threshold = 50·selectivity."""
    return max(0.0, min(50.0, 50.0 * selectivity))


def aggregation_micro(
    data: TPCHData,
    engine: str,
    selectivity: float = 1.0,
    provider: Optional[QueryProvider] = None,
) -> Query:
    """§7.1 / Figure 7: the Q1 aggregation over a selectivity-varied filter."""
    lineitem = relation_query(data, "lineitem", engine, provider)
    return (
        lineitem.where(lambda l: l.l_quantity <= P("qmax"))
        .group_by(
            lambda l: new(rf=l.l_returnflag, ls=l.l_linestatus),
            lambda g: new(
                rf=g.key.rf,
                ls=g.key.ls,
                sum_qty=g.sum(lambda l: l.l_quantity),
                sum_disc_price=g.sum(
                    lambda l: l.l_extendedprice * (1 - l.l_discount)
                ),
                avg_qty=g.avg(lambda l: l.l_quantity),
                count_order=g.count(),
            ),
        )
        .with_params(qmax=_quantity_threshold(selectivity))
    )


def sorting_micro(
    data: TPCHData,
    engine: str,
    selectivity: float = 1.0,
    provider: Optional[QueryProvider] = None,
) -> Query:
    """§7.2 / Figure 9: sort (filtered) lineitem on extendedprice.

    Results are whole lineitem elements, so the only applicable hybrid
    variant is Min (return references), exactly as in the paper.
    """
    lineitem = relation_query(data, "lineitem", engine, provider)
    return (
        lineitem.where(lambda l: l.l_quantity <= P("qmax"))
        .order_by(lambda l: l.l_extendedprice)
        .with_params(qmax=_quantity_threshold(selectivity))
    )


def join_micro(
    data: TPCHData,
    engine: str,
    selectivity: float = 1.0,
    provider: Optional[QueryProvider] = None,
) -> Query:
    """§7.3 / Figure 11: the Q3 join sub-query with varied selectivities.

    Selections on lineitem and orders scale with *selectivity*; the
    mktsegment selection on customer stays constant (as in the paper).
    """
    customer = relation_query(data, "customer", engine, provider)
    orders = relation_query(data, "orders", engine, provider)
    lineitem = relation_query(data, "lineitem", engine, provider)

    date_lo = datetime.date(1992, 1, 1)
    date_hi = datetime.date(1998, 8, 2)
    cutoff = date_lo + datetime.timedelta(
        days=int((date_hi - date_lo).days * selectivity)
    )
    open_orders = orders.where(lambda o: o.o_orderdate < P("odate")).join(
        customer.where(lambda c: c.c_mktsegment == P("segment")),
        lambda o: o.o_custkey,
        lambda c: c.c_custkey,
        lambda o, c: new(
            orderkey=o.o_orderkey,
            orderdate=o.o_orderdate,
            shippriority=o.o_shippriority,
        ),
    )
    return (
        lineitem.where(lambda l: l.l_quantity <= P("qmax"))
        .join(
            open_orders,
            lambda l: l.l_orderkey,
            lambda o: o.orderkey,
            lambda l, o: new(
                orderkey=o.orderkey,
                orderdate=o.orderdate,
                shippriority=o.shippriority,
                extendedprice=l.l_extendedprice,
                discount=l.l_discount,
            ),
        )
        .with_params(
            qmax=_quantity_threshold(selectivity),
            odate=cutoff,
            segment="BUILDING",
        )
    )
