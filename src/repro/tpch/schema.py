"""TPC-H relation schemas.

The eight relations of the TPC-H benchmark, §7's workload ("All queries
are run over a ... TPC-H dataset loaded into the memory space of the
application").  One :class:`~repro.storage.schema.Schema` per relation
serves both worlds: ``record_type()`` gives the managed-side element class
(value-semantics named tuples, like the paper's C# records), and
``numpy_dtype()`` gives the §5 array-of-structs layout.

String widths follow the TPC-H spec, trimmed where our queries never read
the column (comments) to keep the in-memory footprint proportionate.
"""

from __future__ import annotations

from typing import Dict

from ..storage.schema import Field, Schema

__all__ = ["TPCH_SCHEMAS", "RELATION_NAMES"]


REGION = Schema(
    [
        Field("r_regionkey", "int"),
        Field("r_name", "str", 12),
        Field("r_comment", "str", 20),
    ],
    name="Region",
)

NATION = Schema(
    [
        Field("n_nationkey", "int"),
        Field("n_name", "str", 16),
        Field("n_regionkey", "int"),
        Field("n_comment", "str", 20),
    ],
    name="Nation",
)

SUPPLIER = Schema(
    [
        Field("s_suppkey", "int"),
        Field("s_name", "str", 18),
        Field("s_address", "str", 24),
        Field("s_nationkey", "int"),
        Field("s_phone", "str", 15),
        Field("s_acctbal", "float"),
        Field("s_comment", "str", 24),
    ],
    name="Supplier",
)

CUSTOMER = Schema(
    [
        Field("c_custkey", "int"),
        Field("c_name", "str", 18),
        Field("c_address", "str", 24),
        Field("c_nationkey", "int"),
        Field("c_phone", "str", 15),
        Field("c_acctbal", "float"),
        Field("c_mktsegment", "str", 10),
        Field("c_comment", "str", 24),
    ],
    name="Customer",
)

PART = Schema(
    [
        Field("p_partkey", "int"),
        Field("p_name", "str", 36),
        Field("p_mfgr", "str", 25),
        Field("p_brand", "str", 10),
        Field("p_type", "str", 25),
        Field("p_size", "int"),
        Field("p_container", "str", 10),
        Field("p_retailprice", "float"),
        Field("p_comment", "str", 14),
    ],
    name="Part",
)

PARTSUPP = Schema(
    [
        Field("ps_partkey", "int"),
        Field("ps_suppkey", "int"),
        Field("ps_availqty", "int"),
        Field("ps_supplycost", "float"),
        Field("ps_comment", "str", 20),
    ],
    name="Partsupp",
)

ORDERS = Schema(
    [
        Field("o_orderkey", "int"),
        Field("o_custkey", "int"),
        Field("o_orderstatus", "str", 1),
        Field("o_totalprice", "float"),
        Field("o_orderdate", "date"),
        Field("o_orderpriority", "str", 15),
        Field("o_clerk", "str", 15),
        Field("o_shippriority", "int"),
        Field("o_comment", "str", 24),
    ],
    name="Orders",
)

LINEITEM = Schema(
    [
        Field("l_orderkey", "int"),
        Field("l_partkey", "int"),
        Field("l_suppkey", "int"),
        Field("l_linenumber", "int"),
        Field("l_quantity", "float"),
        Field("l_extendedprice", "float"),
        Field("l_discount", "float"),
        Field("l_tax", "float"),
        Field("l_returnflag", "str", 1),
        Field("l_linestatus", "str", 1),
        Field("l_shipdate", "date"),
        Field("l_commitdate", "date"),
        Field("l_receiptdate", "date"),
        Field("l_shipinstruct", "str", 17),
        Field("l_shipmode", "str", 10),
        Field("l_comment", "str", 20),
    ],
    name="Lineitem",
)

TPCH_SCHEMAS: Dict[str, Schema] = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}

RELATION_NAMES = tuple(TPCH_SCHEMAS)
