"""Deadline-bounded query execution with cooperative cancellation.

Generated query code cannot be preempted — it is straight-line Python or
one long NumPy expression — so a deadline needs two cooperating halves:

* the **caller half** waits at most the remaining deadline and raises
  :class:`~repro.errors.QueryTimeoutError` the moment it expires, which
  bounds the caller-visible latency for *every* engine (including the
  native one, whose vectorized kernels have no interruptible loops);
* the **query half** — the shared :class:`~repro.runtime.cancellation.
  CancellationToken` travelling in the parameter dictionary — stops the
  abandoned worker at its next checkpoint (pipeline head, morsel
  boundary, or result-drain stride), releasing its admission slot from
  the worker's ``finally``.

Nothing in the provider needs unwinding on a timeout: the compile
per-key locks are released by the ``finally`` blocks the provider
already has, the query cache only ever stores *completed* artifacts, and
the recycler materializes before storing (an aborted execution stores
nothing).  A query with no deadline runs inline on the caller's thread —
no thread hop, exactly the pre-service behaviour.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterable, Iterator, List, Optional

from ..errors import QueryCancelled, QueryTimeoutError
from ..observability.metrics import METRICS
from ..observability.tracer import TRACER
from ..runtime.cancellation import CancellationToken

__all__ = ["QueryExecutor", "UNSET", "drain", "query_timeout_from_env"]

#: sentinel distinguishing "argument omitted" from an explicit ``None``
#: (None means *no deadline*, omitted means *use the session default*)
UNSET: Any = object()

#: token checks while draining a lazy result iterator happen every this
#: many rows — frequent enough to stop an interpreted (linq) query
#: promptly, rare enough to be invisible in the row loop
DRAIN_CHECK_STRIDE = 256


def query_timeout_from_env() -> Optional[float]:
    """Default per-request deadline from ``REPRO_QUERY_TIMEOUT`` seconds.

    Unset, empty, zero, or unparsable → no default deadline.
    """
    env = os.environ.get("REPRO_QUERY_TIMEOUT", "").strip()
    if not env:
        return None
    try:
        seconds = float(env)
    except ValueError:
        return None
    return seconds if seconds > 0 else None


def drain(
    iterator: Iterable[Any],
    token: Optional[CancellationToken],
    stride: int = DRAIN_CHECK_STRIDE,
) -> List[Any]:
    """Materialize *iterator*, checking the token every *stride* rows.

    The interpreted ``linq`` engine (and the compiled engine's lazy
    generators) produce rows one at a time; this is their cancellation
    checkpoint.
    """
    if token is None:
        return list(iterator)
    rows: List[Any] = []
    for i, row in enumerate(iterator):
        if not i % stride:
            token.check()
        rows.append(row)
    token.check()
    return rows


class QueryExecutor:
    """Runs one request under a deadline, with slot-safe cleanup.

    ``run()`` takes the request body as a zero-argument callable plus the
    request's :class:`CancellationToken` and an optional *cleanup*
    callable (the admission ticket's ``release``).  Cleanup runs exactly
    once, on the thread that actually executed the query — so a
    timed-out worker holds its slot until it really stops.
    """

    def __init__(self, default_timeout: Optional[float] = None):
        self.default_timeout = (
            default_timeout
            if default_timeout is not None
            else query_timeout_from_env()
        )

    def run(
        self,
        invoke: Callable[[], Any],
        token: Optional[CancellationToken] = None,
        cleanup: Optional[Callable[[], None]] = None,
    ) -> Any:
        """Execute *invoke*; enforce the token's deadline if it has one."""
        if token is None:
            token = CancellationToken.with_timeout(self.default_timeout)
        if token.deadline is None:
            try:
                with TRACER.span("service.execute"):
                    return self._observed(invoke, token)
            finally:
                if cleanup is not None:
                    cleanup()

        # deadline path: run on a worker, wait at most the remaining
        # budget, and leave the worker to stop at its next checkpoint
        done = threading.Event()
        outcome: dict = {}

        def work() -> None:
            try:
                with TRACER.span("service.execute"):
                    outcome["result"] = self._observed(invoke, token)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome["error"] = exc
            finally:
                if cleanup is not None:
                    cleanup()
                done.set()

        worker = threading.Thread(
            target=work, name="repro-service-worker", daemon=True
        )
        worker.start()
        if not done.wait(timeout=token.remaining()):
            token.cancel("deadline")
            # give the worker one checkpoint's grace to finish anyway
            # (it may have been a hair from done); then abandon it
            if not done.wait(timeout=0.001):
                METRICS.counter("service.timeouts").add()
                raise QueryTimeoutError()
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]

    def _observed(
        self, invoke: Callable[[], Any], token: CancellationToken
    ) -> Any:
        """Run the body, translating self-observed expiry into metrics."""
        METRICS.counter("service.executions").add()
        try:
            return invoke()
        except QueryTimeoutError:
            METRICS.counter("service.timeouts").add()
            raise
        except QueryCancelled:
            METRICS.counter("service.cancelled").add()
            raise


def iter_with_checks(
    iterator: Iterator[Any],
    token: CancellationToken,
    stride: int = DRAIN_CHECK_STRIDE,
) -> Iterator[Any]:
    """Lazy variant of :func:`drain` for callers that stream results."""
    for i, row in enumerate(iterator):
        if not i % stride:
            token.check()
        yield row
