"""Query sessions: per-client defaults, lifecycle, and the serving path.

A :class:`QuerySession` is one client's view of the serving subsystem.
It carries the client's defaults (engine, parallelism, tracing, deadline,
priority), shares a :class:`~repro.query.provider.QueryProvider` (and
therefore the compiled-plan cache) with every other session, and routes
each execution through the shared :class:`~repro.service.admission.
AdmissionController` and :class:`~repro.service.executor.QueryExecutor`:

    session → admission (slot + priority queue) → executor (deadline,
    cancellation token) → provider (cache → codegen → execute)

Sessions are context managers; a closed session refuses further work
with :class:`~repro.errors.SessionClosed`.  ``prepare()`` returns a
:class:`~repro.service.prepared.PreparedStatement` whose executions skip
the whole compile path while still passing through admission.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ExecutionError, SessionClosed
from ..observability.metrics import METRICS
from ..observability.tracer import TRACER
from ..query.provider import default_provider
from ..query.queryable import DEFAULT_ENGINE, Query, from_iterable
from ..runtime.cancellation import CANCEL_PARAM, CancellationToken
from .admission import AdmissionController, ingest_slots_from_env
from .executor import UNSET as _UNSET
from .executor import QueryExecutor, drain
from .prepared import PreparedStatement

__all__ = ["QuerySession", "QueryService"]


class QueryService:
    """The shared serving backplane: provider + admission + executor.

    One service typically exists per process; every session opened on it
    shares the compiled-plan cache and competes for the same run slots.
    """

    def __init__(
        self,
        provider: Any = None,
        admission: Optional[AdmissionController] = None,
        executor: Optional[QueryExecutor] = None,
        ingest_admission: Optional[AdmissionController] = None,
    ):
        self.provider = provider if provider is not None else default_provider()
        self.admission = admission if admission is not None else AdmissionController()
        self.executor = executor if executor is not None else QueryExecutor()
        #: a separate, smaller slot pool for writes: ingest competes with
        #: ingest, never with queries (REPRO_INGEST_SLOTS, default 2)
        self.ingest_admission = (
            ingest_admission
            if ingest_admission is not None
            else AdmissionController(slots=ingest_slots_from_env())
        )

    def session(self, **defaults: Any) -> "QuerySession":
        """Open a session against this service (kwargs = session defaults)."""
        return QuerySession(service=self, **defaults)


class QuerySession:
    """One client's defaults and lifecycle over the shared service."""

    def __init__(
        self,
        service: Optional[QueryService] = None,
        provider: Any = None,
        engine: str = DEFAULT_ENGINE,
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
        trace: Optional[bool] = None,
        adaptive: Any = None,
        timeout: Any = _UNSET,
        priority: int = 0,
    ):
        if service is None:
            service = QueryService(provider=provider)
        elif provider is not None and provider is not service.provider:
            raise ValueError(
                "pass either a service or a provider, not conflicting both"
            )
        self._service = service
        self.engine = engine
        self.parallelism = parallelism
        self.morsel_size = morsel_size
        self.trace = trace
        #: session default for adaptive execution (None = REPRO_ADAPTIVE)
        self.adaptive = adaptive
        #: session default deadline in seconds; UNSET defers to the
        #: executor's REPRO_QUERY_TIMEOUT default, None disables
        self.timeout = (
            service.executor.default_timeout if timeout is _UNSET else timeout
        )
        self.priority = priority
        self._closed = False
        self._lock = threading.Lock()
        #: tokens of in-flight requests, for close() to cancel
        self._inflight: set = set()
        METRICS.counter("service.sessions_opened").add()

    # -- plumbing accessors --------------------------------------------------------

    @property
    def service(self) -> QueryService:
        return self._service

    @property
    def provider(self) -> Any:
        return self._service.provider

    @property
    def admission(self) -> AdmissionController:
        return self._service.admission

    @property
    def executor(self) -> QueryExecutor:
        return self._service.executor

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Close the session; cancel whatever it still has in flight."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            inflight = list(self._inflight)
        for token in inflight:
            token.cancel("session closed")
        METRICS.counter("service.sessions_closed").add()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionClosed("session is closed")

    # -- building queries with session defaults --------------------------------------

    def query(
        self,
        items: Sequence[Any],
        token: Optional[str] = None,
        schema: Any = None,
    ) -> Query:
        """Wrap a collection as a Query carrying this session's defaults."""
        self._ensure_open()
        return from_iterable(items, token=token, schema=schema)._replace(
            engine=self.engine,
            provider=self.provider,
            parallelism=self.parallelism,
            morsel_size=self.morsel_size,
            trace=self.trace,
            adaptive=self.adaptive,
        )

    # -- serving path ----------------------------------------------------------------

    def execute(
        self,
        query: Query,
        timeout: Any = _UNSET,
        priority: Optional[int] = None,
        parallelism: Optional[int] = None,
    ) -> List[Any]:
        """Run *query* through admission and the deadline executor.

        Returns the materialized rows.  Raises
        :class:`~repro.errors.AdmissionRejected` under backpressure,
        :class:`~repro.errors.QueryTimeoutError` past the deadline
        (which covers queue wait *plus* execution), and
        :class:`~repro.errors.QueryCancelled` after an explicit cancel.
        """
        self._ensure_open()
        requested = (
            parallelism
            if parallelism is not None
            else (
                query.parallelism
                if query.parallelism is not None
                else self.parallelism
            )
        )

        adaptive = query.adaptive if query.adaptive is not None else self.adaptive

        def invoke(token: CancellationToken, granted: Optional[int]) -> List[Any]:
            params = {**query.params, CANCEL_PARAM: token}
            iterator = self.provider.execute(
                query.expr,
                list(query.sources),
                query.engine,
                params,
                parallelism=granted,
                morsel_size=query.morsel_size or self.morsel_size,
                **({} if adaptive is None else {"adaptive": adaptive}),
            )
            return drain(iterator, token)

        return self._admit_and_run(invoke, requested, timeout, priority)

    def ingest(
        self,
        table: Any,
        rows: Sequence[Any],
        timeout: Any = _UNSET,
        priority: Optional[int] = None,
    ) -> int:
        """Append *rows* to a versioned table under a write slot.

        *rows* holds positional value sequences (tuples/lists in schema
        field order) or record objects exposing the schema's fields —
        the two encodings of :meth:`StructArray.append_rows` /
        :meth:`~StructArray.append_objects`.  Returns the table's new
        version.

        Writes pass through a **separate** admission pool
        (``REPRO_INGEST_SLOTS`` write slots): a burst of ingest never
        occupies query slots, and vice versa.  The append itself
        publishes buffer-then-watermark atomically, so cancellation (or
        session close) between admission and append aborts cleanly, and
        cancelling *queries* mid-ingest is always safe — in-flight
        readers keep iterating the snapshot prefix they pinned, never a
        torn length.  An empty batch admits, appends nothing, and
        returns the current version.
        """
        self._ensure_open()
        if not hasattr(table, "append_rows"):
            raise ExecutionError(
                "ingest requires a versioned StructArray table "
                f"(got {type(table).__name__})"
            )
        batch = list(rows)
        seconds = self.timeout if timeout is _UNSET else timeout
        priority = self.priority if priority is None else priority
        token = CancellationToken.with_timeout(seconds)
        METRICS.counter("ingest.requests").add()
        # register before queueing: close() must be able to doom a write
        # that is still waiting for a slot, not only one already granted
        with self._lock:
            self._inflight.add(token)
        try:
            with TRACER.span("ingest.queue_wait", priority=priority) as span:
                ticket = self.service.ingest_admission.acquire(
                    priority=priority, timeout=token.remaining()
                )
                span.set(wait_seconds=ticket.wait_seconds)
            try:
                # last cancellation point before mutating: past here the
                # append either publishes completely or raises having
                # published nothing — there is no partial state to cancel
                token.check()
                with TRACER.span("ingest.append", rows=len(batch)) as span:
                    if batch and not isinstance(batch[0], (tuple, list)):
                        version = table.append_objects(batch)
                    else:
                        version = table.append_rows(batch)
                    span.set(version=version, total=len(table))
                METRICS.counter("ingest.rows").add(len(batch))
                return version
            finally:
                ticket.release()
        finally:
            with self._lock:
                self._inflight.discard(token)

    def prepare(self, query: Query) -> PreparedStatement:
        """Compile now; execute later (many times) with fresh bindings."""
        self._ensure_open()
        return PreparedStatement(self, query)

    def explain_analyze(self, query: Query) -> Any:
        """Execute through the serving path and fold the span evidence.

        Identical to ``Query.explain_analyze`` plus the serving phases:
        the report's table gains ``service.queue_wait`` (time spent in
        the admission queue) and ``service.execute`` rows.
        """
        self._ensure_open()
        from ..observability.explain import explain_analyze

        return explain_analyze(
            self.provider,
            query.expr,
            list(query.sources),
            query.engine,
            query.params,
            parallelism=query.parallelism,
            morsel_size=query.morsel_size,
            adaptive=query.adaptive,
            runner=lambda: self.execute(query),
        )

    # -- shared serving internals ------------------------------------------------------

    def _run_prepared(
        self,
        statement: PreparedStatement,
        params: Dict[str, Any],
        timeout: Any = _UNSET,
        priority: Optional[int] = None,
    ) -> Any:
        self._ensure_open()

        def invoke(token: CancellationToken, granted: Optional[int]) -> Any:
            return statement._invoke(params, token, granted)

        return self._admit_and_run(
            invoke, statement._parallelism, timeout, priority
        )

    def _admit_and_run(
        self,
        invoke: Any,
        requested_parallelism: Optional[int],
        timeout: Any,
        priority: Optional[int],
    ) -> Any:
        seconds = self.timeout if timeout is _UNSET else timeout
        priority = self.priority if priority is None else priority
        token = CancellationToken.with_timeout(seconds)
        with TRACER.span("service.queue_wait", priority=priority) as span:
            ticket = self.admission.acquire(
                priority=priority,
                parallelism=requested_parallelism,
                timeout=token.remaining(),
            )
            span.set(
                wait_seconds=ticket.wait_seconds,
                granted_parallelism=ticket.parallelism,
            )
        with self._lock:
            self._inflight.add(token)

        def cleanup() -> None:
            ticket.release()
            with self._lock:
                self._inflight.discard(token)

        return self.executor.run(
            lambda: invoke(token, ticket.parallelism),
            token=token,
            cleanup=cleanup,
        )
