"""Prepared statements: pay the Figure-3 pipeline once, execute many.

The canonicalizer already lifts every constant to a parameter, so two
executions of the same query shape share one cache entry — but each
execution still walks canonicalize → cache-lookup → (analysis) on the
hot path.  A :class:`PreparedStatement` hoists all of that to *prepare*
time: it captures the compiled artifact, the canonical parameter
bindings, and (when requested) the morsel-parallel artifact, and its
``execute()`` jumps straight to the generated code with the merged
bindings.  Re-executing with new bindings therefore skips canonicalize,
analyze, lower, *and* compile entirely — ``compile.<engine>.count``
moves exactly once per prepare, never per execute.

``prepare`` → ``bind`` → ``execute``::

    session = QuerySession()
    stmt = session.prepare(
        session.query(orders).where(lambda o: o.total > P("floor"))
    )
    big = stmt.bind(floor=1000).execute()
    small = stmt.bind(floor=10).execute()      # no second compilation

Executions still pass through the session's admission controller and
deadline executor — preparation skips compilation, not workload
management.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ExecutionError
from ..expressions.canonical import canonicalize
from ..query.enumerable import enumerate_query
from ..query.provider import pin_sources
from ..runtime.cancellation import CANCEL_PARAM, CancellationToken
from .executor import UNSET as _UNSET
from .executor import drain

__all__ = ["PreparedStatement", "BoundStatement"]


class PreparedStatement:
    """A query compiled once, executable many times with fresh bindings."""

    def __init__(self, session: Any, query: Any):
        self._session = session
        self._engine = query.engine
        self._sources = list(query.sources)
        self._base_params = dict(query.params)
        self._morsel_size = query.morsel_size
        provider = session.provider
        requested = (
            query.parallelism
            if query.parallelism is not None
            else session.parallelism
        )
        self._parallelism = requested
        if self._engine == "linq":
            # the baseline never compiles, but preparation still hoists
            # canonicalization and static analysis out of execute()
            self._canonical = canonicalize(query.expr)
            provider._analysis_for(self._canonical, self._sources)
            self._expr = query.expr
            self._compiled = None
            self._bindings = self._canonical.bindings
            self._parallel = None
        else:
            self._compiled, self._bindings = provider._compiled_for(
                query.expr, self._sources, self._engine
            )
            self._expr = query.expr
            # the morsel artifact is worker-count independent; build it
            # once here when parallel execution was requested
            self._parallel = (
                provider._parallel_plan(
                    query.expr,
                    self._sources,
                    self._engine,
                    requested,
                    scalar=self._compiled.scalar,
                )
                if requested is not None and requested > 1
                else None
            )

    # -- introspection ------------------------------------------------------------

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def scalar(self) -> bool:
        return bool(self._compiled is not None and self._compiled.scalar)

    @property
    def bind_names(self) -> tuple:
        """Bindable parameter names, sorted: the canonicalizer's lifted
        constants (``__c0``, ``__c1``, ...) — user ``P(...)`` names pass
        through ``execute(**params)`` as well."""
        return tuple(sorted(self._bindings))

    @property
    def source_code(self) -> str:
        """The generated module (empty for the interpreted baseline)."""
        return self._compiled.source_code if self._compiled else ""

    def explain(self) -> str:
        if self._compiled is None:
            return "(linq engine: interpreted operator chain, no plan)"
        return self._compiled.plan_text

    # -- the prepare/bind/execute surface ----------------------------------------

    def bind(self, **params: Any) -> "BoundStatement":
        """Fix parameter values; returns an executable bound statement."""
        return BoundStatement(self, params)

    def execute(
        self,
        timeout: Any = _UNSET,
        priority: Optional[int] = None,
        **params: Any,
    ) -> Any:
        """Run with *params* through the session's admission + executor."""
        return self._session._run_prepared(
            self, dict(params), timeout=timeout, priority=priority
        )

    # -- the compile-free execution body (called by the session) -------------------

    def _invoke(
        self,
        params: Dict[str, Any],
        token: Optional[CancellationToken],
        parallelism: Optional[int],
    ) -> Any:
        merged = {**self._bindings, **self._base_params, **params}
        if token is not None:
            merged[CANCEL_PARAM] = token
        # pin live versioned arrays at one watermark for the whole
        # execution: readers on prepared statements never observe a
        # torn length while ingest appends concurrently
        sources = pin_sources(self._sources)
        if self._compiled is None:  # linq: interpret, but skip re-analysis
            return drain(
                enumerate_query(self._expr, sources, merged), token
            )
        workers = parallelism if parallelism is not None else 1
        if self._parallel is not None and workers > 1:
            requested_workers, morsel_rows, artifact = self._parallel
            rows = artifact.execute(
                sources,
                merged,
                min(workers, requested_workers),
                self._morsel_size or morsel_rows,
            )
            if artifact.scalar:
                return rows
            return drain(iter(rows), token)
        result = self._compiled.execute(sources, merged)
        if self._compiled.scalar:
            return result
        return drain(iter(result), token)


class BoundStatement:
    """A prepared statement plus a fixed set of parameter bindings."""

    __slots__ = ("_statement", "_params")

    def __init__(self, statement: PreparedStatement, params: Dict[str, Any]):
        self._statement = statement
        self._params = dict(params)

    def bind(self, **params: Any) -> "BoundStatement":
        """Layer further bindings on top (later bindings win)."""
        return BoundStatement(self._statement, {**self._params, **params})

    def execute(
        self, timeout: Any = _UNSET, priority: Optional[int] = None
    ) -> Any:
        return self._statement.execute(
            timeout=timeout, priority=priority, **self._params
        )

    def to_list(self) -> List[Any]:
        result = self.execute()
        if not isinstance(result, list):
            raise ExecutionError("bound statement is scalar; use execute()")
        return result
