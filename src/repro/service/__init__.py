"""The in-process query serving subsystem.

Layers workload management over the compile-and-cache machinery:

* :class:`QueryService` — the shared backplane (provider + admission +
  executor); usually one per process;
* :class:`QuerySession` — per-client defaults and lifecycle;
* :class:`PreparedStatement` — prepare/bind/execute, compiling once;
* :class:`AdmissionController` — run slots, priority queue,
  backpressure, graceful parallelism degradation;
* :class:`QueryExecutor` — per-request deadlines and cooperative
  cancellation via :class:`~repro.runtime.cancellation.CancellationToken`.

See DESIGN.md §11 for the architecture and README "Serving queries" for
a runnable example.
"""

from .admission import AdmissionController, AdmissionTicket, service_slots_from_env
from .executor import QueryExecutor, drain, query_timeout_from_env
from .prepared import BoundStatement, PreparedStatement
from .session import QueryService, QuerySession

__all__ = [
    "QueryService",
    "QuerySession",
    "PreparedStatement",
    "BoundStatement",
    "AdmissionController",
    "AdmissionTicket",
    "QueryExecutor",
    "drain",
    "service_slots_from_env",
    "query_timeout_from_env",
]
