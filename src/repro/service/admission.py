"""Admission control: bounded run slots, priority queue, backpressure.

The provider compiles and caches plans for *any* number of callers, but
nothing so far decided how many of them may actually run at once.  The
admission controller is that decision point:

* a fixed pool of **run slots** (``REPRO_SERVICE_SLOTS``, default 4)
  bounds concurrent executions;
* requests that find no free slot wait in a **priority queue** (higher
  priority first, FIFO within a priority);
* a **bounded queue** provides backpressure: when it is full the request
  fast-fails with :class:`~repro.errors.AdmissionRejected` instead of
  piling up — the caller learns *immediately* that the service is
  saturated;
* **graceful degradation**: a request admitted while others are still
  queued has its requested morsel parallelism downgraded, so an
  overloaded service spends its threads admitting more queries rather
  than making a few queries faster.

Everything is condition-variable based — no dedicated scheduler thread —
and every decision is mirrored into the ``service.*`` metrics.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from typing import Any, Optional

from ..errors import AdmissionRejected, QueryTimeoutError
from ..observability.metrics import METRICS, MetricsRegistry

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "service_slots_from_env",
    "ingest_slots_from_env",
]

DEFAULT_SLOTS = 4

#: writers contend on each table's append lock anyway, so a small write
#: pool keeps ingest from starving query slots without serializing it
DEFAULT_INGEST_SLOTS = 2


def service_slots_from_env() -> int:
    """Run-slot count from ``REPRO_SERVICE_SLOTS`` (default 4)."""
    env = os.environ.get("REPRO_SERVICE_SLOTS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return DEFAULT_SLOTS
    return DEFAULT_SLOTS


def ingest_slots_from_env() -> int:
    """Write-slot count from ``REPRO_INGEST_SLOTS`` (default 2)."""
    env = os.environ.get("REPRO_INGEST_SLOTS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return DEFAULT_INGEST_SLOTS
    return DEFAULT_INGEST_SLOTS


class AdmissionTicket:
    """A granted run slot: holds the (possibly degraded) parallelism grant.

    ``release()`` is idempotent and must run exactly when the query stops
    occupying the engine — the executor calls it from the worker's
    ``finally`` so a timed-out query frees its slot when it actually
    stops, not when its caller gave up.
    """

    __slots__ = ("parallelism", "wait_seconds", "_controller", "_released")

    def __init__(
        self,
        controller: "AdmissionController",
        parallelism: Optional[int],
        wait_seconds: float,
    ):
        self._controller = controller
        self._released = False
        self.parallelism = parallelism
        self.wait_seconds = wait_seconds

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()


class AdmissionController:
    """Bounded slots + priority wait queue + backpressure + degradation."""

    def __init__(
        self,
        slots: Optional[int] = None,
        max_queue: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        adaptive_controller: Optional[Any] = None,
    ):
        #: explicit adaptive controller for degradation feedback (tests);
        #: None defers to the process-wide, env-gated controller
        self.adaptive_controller = adaptive_controller
        self.slots = slots if slots is not None else service_slots_from_env()
        if self.slots <= 0:
            raise ValueError("slot count must be positive")
        # default queue bound: one full round of waiters per slot
        self.max_queue = max_queue if max_queue is not None else 4 * self.slots
        if self.max_queue < 0:
            raise ValueError("queue bound must be non-negative")
        self._cond = threading.Condition()
        self._running = 0
        #: waiting requests as a heap of (-priority, seq) — higher
        #: priority first, FIFO within one priority
        self._waiting: list = []
        self._seq = itertools.count()
        registry = metrics if metrics is not None else METRICS
        self._m_admitted = registry.counter("service.admitted")
        self._m_rejected = registry.counter("service.rejected")
        self._m_degraded = registry.counter("service.degraded")
        self._m_wait = registry.histogram("service.queue_wait_seconds")
        self._m_depth = registry.histogram("service.queue_depth")
        self._m_running = registry.histogram("service.running")

    # -- introspection ------------------------------------------------------------

    @property
    def running(self) -> int:
        with self._cond:
            return self._running

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._waiting)

    # -- the admission decision ----------------------------------------------------

    def acquire(
        self,
        priority: int = 0,
        parallelism: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> AdmissionTicket:
        """Wait for a run slot; returns an :class:`AdmissionTicket`.

        Raises :class:`~repro.errors.AdmissionRejected` immediately when
        the wait queue is full (backpressure), and
        :class:`~repro.errors.QueryTimeoutError` when *timeout* seconds
        elapse before a slot frees up — queue wait counts against a
        request's deadline.
        """
        started = time.monotonic()
        with self._cond:
            if self._running < self.slots and not self._waiting:
                self._running += 1
                depth = 0
            else:
                if len(self._waiting) >= self.max_queue:
                    self._m_rejected.add()
                    raise AdmissionRejected(
                        f"admission queue full ({self.max_queue} waiting, "
                        f"{self._running}/{self.slots} running)"
                    )
                entry = (-priority, next(self._seq))
                heapq.heappush(self._waiting, entry)
                self._m_depth.observe(len(self._waiting))
                try:
                    while not (
                        self._running < self.slots
                        and self._waiting[0] == entry
                    ):
                        remaining = None
                        if timeout is not None:
                            remaining = timeout - (time.monotonic() - started)
                            if remaining <= 0:
                                raise QueryTimeoutError(
                                    "deadline expired in the admission queue"
                                )
                        self._cond.wait(remaining)
                except BaseException:
                    self._waiting.remove(entry)
                    heapq.heapify(self._waiting)
                    self._cond.notify_all()
                    raise
                heapq.heappop(self._waiting)
                depth = len(self._waiting)
                self._running += 1
                # the popped head may not have been the next-eligible
                # waiter's wake-up; let the rest re-evaluate
                self._cond.notify_all()
            self._m_running.observe(self._running)
        waited = time.monotonic() - started
        self._m_admitted.add()
        self._m_wait.observe(waited)
        granted = self._degrade(parallelism, depth)
        if parallelism is not None and granted != parallelism:
            self._m_degraded.add()
            self._note_adaptive_degrade(parallelism, granted)
        return AdmissionTicket(self, granted, waited)

    def _note_adaptive_degrade(
        self, requested: int, granted: Optional[int]
    ) -> None:
        """Feed a parallelism downgrade into the adaptive profile.

        The chooser learns to request less fan-out while the service is
        saturated.  Strictly advisory: any failure here (no controller,
        a broken store) must never affect admission itself.
        """
        try:
            controller = self.adaptive_controller
            if controller is None:
                from ..adaptive.controller import default_controller

                controller = default_controller()
            if controller is not None:
                controller.note_degradation(requested, granted or 1)
        except Exception:  # noqa: BLE001 - advisory by contract
            pass

    def _degrade(
        self, requested: Optional[int], depth: int
    ) -> Optional[int]:
        """Downgrade parallelism in proportion to the queue behind us.

        An idle service grants the full request; with *d* requests still
        waiting the grant shrinks to ``requested // (1 + d)`` (never below
        1) — saturated services favour admitting queries over making
        individual queries faster.
        """
        if requested is None or requested <= 1 or depth <= 0:
            return requested
        return max(1, requested // (1 + depth))

    def _release(self) -> None:
        with self._cond:
            self._running -= 1
            self._cond.notify_all()
