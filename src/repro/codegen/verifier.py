"""AST verifier for generated query modules.

Every backend emits a Python module as a string and ``exec``s it.  The C#
original got a safety net for free — the host compiler type-checks the
generated source (§4.2).  ``exec`` checks nothing, so a printer bug
surfaces as a ``NameError`` deep inside query execution.  This module is
the replacement net: before a generated module is executed, its AST is
checked for

* **module shape** — a docstring plus exactly one top-level
  ``def execute(sources, _params)`` with two positional parameters;
* **no unbound names** — every ``Name`` load resolves to a function
  parameter, a local binding, a namespace binding supplied by the
  printer, or a whitelisted builtin;
* **hygiene** — no local binding shadows a namespace binding (printers
  emit counter-suffixed locals precisely so this cannot happen);
* **no escape hatches** — no ``import``/``global``/``nonlocal`` and no
  calls to ``eval``/``exec``/``compile``/``__import__``/``open`` & co.
  Generated code must be a closed straight-line program over the
  namespace the printer bound.

:func:`verify_source` returns a :class:`VerifierReport`;
:func:`check_generated` raises
:class:`~repro.errors.GeneratedCodeViolation` on any finding.  The gate
is wired into :func:`repro.codegen.compiler.compile_source` and is on by
default (set ``REPRO_VERIFY_GENERATED=0`` to skip it in benchmarks).

The same net covers the layer *above* the printers: :func:`verify_ir`
checks the pipeline IR every backend lowers from (every breaker
materializes exactly once and is consumed downstream exactly once, the
schedule is topologically ordered, and no pipeline reads a source field
outside its required-field annotation).

``python -m repro.codegen.verifier --selftest`` generates TPC-H Q1–Q3 on
every codegen engine, verifies each emitted module, and exercises the IR
invariants (including deliberately corrupted IRs that must be caught).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import GeneratedCodeViolation
from ..plans.logical import (
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Project,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
)
from .ir import PipelineBreaker, lambda_fields, merge_fields

__all__ = [
    "VerifierReport",
    "verify_source",
    "verify_ir",
    "verify_facts",
    "check_generated",
    "check_ir",
    "check_facts",
    "verification_enabled",
    "SAFE_BUILTINS",
]

#: builtins generated code may legitimately reference
SAFE_BUILTINS = frozenset(
    {
        "abs", "bool", "bytes", "dict", "divmod", "enumerate", "float",
        "frozenset", "getattr", "hasattr", "int", "isinstance", "iter",
        "len", "list", "max", "min", "next", "range", "repr", "reversed",
        "round", "set", "sorted", "str", "sum", "tuple", "zip",
        # exception types generated guards may raise or catch
        "StopIteration", "ValueError", "TypeError", "KeyError",
        "IndexError", "ZeroDivisionError",
    }
)

#: names whose *call* (or mere load) is an escape hatch out of the sandbox
_FORBIDDEN_NAMES = frozenset(
    {
        "eval", "exec", "compile", "__import__", "open", "input",
        "globals", "locals", "vars", "breakpoint", "exit", "quit",
    }
)

_ENV_FLAG = "REPRO_VERIFY_GENERATED"


def verification_enabled() -> bool:
    """The default for the compile-time gate (env-overridable)."""
    return os.environ.get(_ENV_FLAG, "1") not in ("0", "false", "no")


@dataclass
class VerifierReport:
    """Result of verifying one generated module."""

    violations: Tuple[str, ...] = ()
    entry_point: str = "execute"
    source: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return "generated module passed verification"
        lines = [f"generated module failed verification "
                 f"({len(self.violations)} violation(s)):"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def verify_source(
    source: str,
    namespace: Optional[Dict[str, Any]] = None,
    entry_point: str = "execute",
) -> VerifierReport:
    """Verify a generated module; never raises, returns the report."""
    violations: List[str] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return VerifierReport(
            (f"generated source does not parse: {exc}",), entry_point, source
        )
    _check_module_shape(tree, entry_point, violations)
    _check_forbidden_nodes(tree, violations)
    namespace_names = set(namespace or ())
    _ScopeChecker(namespace_names, entry_point, violations).check_module(tree)
    return VerifierReport(tuple(violations), entry_point, source)


def check_generated(
    source: str,
    namespace: Optional[Dict[str, Any]] = None,
    entry_point: str = "execute",
) -> VerifierReport:
    """Verify and raise :class:`GeneratedCodeViolation` on any finding."""
    report = verify_source(source, namespace, entry_point)
    if not report.ok:
        raise GeneratedCodeViolation(
            f"{report.describe()}\n--- generated source ---\n{source}",
            violations=report.violations,
            source=source,
        )
    return report


# ---------------------------------------------------------------------------
# Pipeline IR invariants
# ---------------------------------------------------------------------------


def _pipeline_reads(pipeline: Any, cse: Any) -> Optional[Set[str]]:
    """Fields *pipeline* reads from its driver scan's elements.

    ``None`` means the whole element is used.  Collection stops at the
    first element-transforming operator (Project/FlatMap/Join probe) —
    beyond it the stream no longer carries driver elements — so this is
    a sound under-approximation of the pipeline's true driver demand.
    """
    reads: Optional[Set[str]] = set()

    def add(lam: Any, param_index: int = 0) -> None:
        nonlocal reads
        if lam is None:
            return
        reads = merge_fields(reads, lambda_fields(lam, param_index, cse))

    for op in pipeline.operators:
        if isinstance(op, Filter):
            add(op.predicate)
            continue
        if isinstance(op, Limit):
            continue
        if isinstance(op, Project):
            add(op.selector)
            return reads
        if isinstance(op, Join):  # probe: driver elements are the left side
            add(op.left_key)
            if op.kind in ("semi", "anti"):
                continue  # existence probes keep streaming driver elements
            add(op.result, 0)
            return reads
        if isinstance(op, SetOp):
            continue  # bag probe passes driver elements through verbatim
        if isinstance(op, FlatMap):
            add(op.collection)
            return reads
        return reads  # unknown operator: stop collecting
    sink = pipeline.sink
    if sink is None:
        return reads
    node = sink.node
    if isinstance(node, Join):  # build: driver elements are the right side
        add(node.right_key)
        if node.result is not None:
            add(node.result, 1)
    elif isinstance(node, SetOp):
        reads = None  # the multiset build keys on whole elements
    elif isinstance(node, GroupAggregate):
        add(node.key)
        for spec in node.aggregates:
            add(spec.selector)
    elif isinstance(node, ScalarAggregate):
        for spec in node.aggregates:
            add(spec.selector)
    elif isinstance(node, (Sort, TopN)):
        for key in node.keys:
            add(key)
    elif isinstance(node, GroupBy):
        reads = None  # group-materialize keeps whole elements
    return reads


def verify_ir(ir: Any) -> VerifierReport:
    """Check the structural invariants of a lowered :class:`QueryIR`.

    * every breaker is materialized exactly once: it is the sink of the
      pipelines its ``producers`` list names (at least one), and its
      materialized output is read by exactly one downstream pipeline;
    * the schedule is topological — every producer runs before the
      consumer that re-reads the materialization;
    * field closure — no scan-driven pipeline reads a field of its
      driver's elements outside its ``required_fields`` annotation.
    """
    violations: List[str] = []
    pids = {p.pid for p in ir.pipelines}

    sink_of: Dict[int, List[int]] = {}
    for pipeline in ir.pipelines:
        if pipeline.sink is not None:
            sink_of.setdefault(pipeline.sink.bid, []).append(pipeline.pid)

    driver_consumers: Dict[int, List[int]] = {}
    for pipeline in ir.pipelines:
        if isinstance(pipeline.driver, PipelineBreaker):
            driver_consumers.setdefault(
                pipeline.driver.bid, []
            ).append(pipeline.pid)

    for breaker in ir.breakers:
        producers = sorted(sink_of.get(breaker.bid, []))
        if not producers:
            violations.append(
                f"breaker {breaker.label()} is never materialized: no "
                f"pipeline has it as sink"
            )
        if producers != sorted(breaker.producers):
            violations.append(
                f"breaker {breaker.label()} claims producers "
                f"{sorted(breaker.producers)} but is the sink of "
                f"{producers}"
            )
        read_by = driver_consumers.get(breaker.bid, [])
        if len(read_by) > 1:
            violations.append(
                f"breaker {breaker.label()} drives multiple pipelines "
                f"{read_by}; a materialization is consumed exactly once"
            )
        if breaker.consumer is None:
            if not (ir.scalar and breaker.node is ir.plan):
                violations.append(
                    f"breaker {breaker.label()} has no consumer pipeline "
                    f"(only the root breaker of a scalar query may)"
                )
        elif breaker.consumer not in pids:
            violations.append(
                f"breaker {breaker.label()} names unknown consumer "
                f"p{breaker.consumer}"
            )
        else:
            late = [pid for pid in producers if pid >= breaker.consumer]
            if late:
                violations.append(
                    f"breaker {breaker.label()} is consumed by "
                    f"p{breaker.consumer} before producer(s) "
                    f"{late} have run (schedule is not topological)"
                )

    for pipeline in ir.pipelines:
        if pipeline.driver_ordinal is None:
            continue
        if pipeline.required_fields is None:
            continue  # whole elements: everything is in the required set
        reads = _pipeline_reads(pipeline, ir.cse)
        if reads is None:
            violations.append(
                f"pipeline p{pipeline.pid} uses whole elements of "
                f"source_{pipeline.driver_ordinal} but its required-field "
                f"set is {sorted(pipeline.required_fields)}"
            )
        else:
            extra = reads - pipeline.required_fields
            if extra:
                violations.append(
                    f"pipeline p{pipeline.pid} reads fields "
                    f"{sorted(extra)} of source_{pipeline.driver_ordinal} "
                    f"outside its required set "
                    f"{sorted(pipeline.required_fields)}"
                )

    return VerifierReport(tuple(violations), entry_point="<ir>")


def check_ir(ir: Any) -> VerifierReport:
    """Verify and raise :class:`GeneratedCodeViolation` on any finding."""
    report = verify_ir(ir)
    if not report.ok:
        details = "\n".join(f"  - {v}" for v in report.violations)
        raise GeneratedCodeViolation(
            f"pipeline IR failed verification "
            f"({len(report.violations)} violation(s)):\n{details}",
            violations=report.violations,
            source="",
        )
    return report


# ---------------------------------------------------------------------------
# Dataflow-fact invariants
# ---------------------------------------------------------------------------

#: DataflowFacts fields compared during re-derivation (everything the
#: backends act on; ``notes`` rides along for exactness)
_FACT_FIELDS = (
    "effects",
    "division_sites",
    "divisions_proven",
    "avg_guards",
    "scalar_guards",
    "dead_pipelines",
    "proven_filters",
    "notes",
)


def verify_facts(
    ir: Any,
    param_values: Optional[Dict[str, Any]] = None,
    statistics: Any = None,
    facts: Any = None,
) -> VerifierReport:
    """Independently re-derive the dataflow facts attached to *ir*.

    Guard elision trusts the analysis pass completely: an optimistic
    fact removes a runtime check from generated code.  This gate fails
    closed — the facts must be present (on ``ir.facts`` or passed
    explicitly) and must match a fresh derivation over the same IR,
    bindings, and statistics field for field.
    """
    from ..analysis import analyze_ir

    violations: List[str] = []
    if facts is None:
        facts = getattr(ir, "facts", None)
    if facts is None:
        violations.append(
            "IR carries no dataflow facts; the provider must attach them "
            "before backends make elision decisions"
        )
        return VerifierReport(tuple(violations), entry_point="<facts>")
    rederived = analyze_ir(
        ir, param_values=param_values, statistics=statistics
    )
    for name in _FACT_FIELDS:
        attached = getattr(facts, name)
        fresh = getattr(rederived, name)
        if attached != fresh:
            violations.append(
                f"dataflow facts disagree on {name}: attached "
                f"{attached!r}, re-derived {fresh!r}"
            )
    return VerifierReport(tuple(violations), entry_point="<facts>")


def check_facts(
    ir: Any,
    param_values: Optional[Dict[str, Any]] = None,
    statistics: Any = None,
    facts: Any = None,
) -> VerifierReport:
    """Verify facts and raise :class:`GeneratedCodeViolation` on mismatch."""
    report = verify_facts(ir, param_values, statistics, facts)
    if not report.ok:
        details = "\n".join(f"  - {v}" for v in report.violations)
        raise GeneratedCodeViolation(
            f"dataflow facts failed verification "
            f"({len(report.violations)} violation(s)):\n{details}",
            violations=report.violations,
            source="",
        )
    return report


# ---------------------------------------------------------------------------
# Module shape
# ---------------------------------------------------------------------------


def _check_module_shape(
    tree: ast.Module, entry_point: str, violations: List[str]
) -> None:
    entries = []
    for i, stmt in enumerate(tree.body):
        if (
            i == 0
            and isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            continue  # module docstring
        if isinstance(stmt, ast.FunctionDef):
            entries.append(stmt)
            continue
        violations.append(
            f"top-level statement {type(stmt).__name__} at line "
            f"{stmt.lineno}; generated modules may only contain a "
            f"docstring and function definitions"
        )
    named = [f for f in entries if f.name == entry_point]
    if not named:
        violations.append(
            f"generated module defines no {entry_point!r} entry point"
        )
        return
    entry = named[0]
    args = entry.args
    if (
        len(args.args) != 2
        or args.vararg is not None
        or args.kwarg is not None
        or args.kwonlyargs
        or args.posonlyargs
        or args.defaults
    ):
        got = [a.arg for a in args.posonlyargs + args.args]
        violations.append(
            f"entry point must take exactly (sources, params); got "
            f"parameters {got}"
        )
    if entry.decorator_list:
        violations.append("entry point must not be decorated")


# ---------------------------------------------------------------------------
# Forbidden constructs
# ---------------------------------------------------------------------------


def _check_forbidden_nodes(tree: ast.Module, violations: List[str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            violations.append(
                f"import statement at line {node.lineno}; generated code "
                f"must receive every runtime object through its namespace"
            )
        elif isinstance(node, ast.Global):
            violations.append(
                f"'global' declaration at line {node.lineno} breaks "
                f"hygiene of generated locals"
            )
        elif isinstance(node, ast.Nonlocal):
            violations.append(
                f"'nonlocal' declaration at line {node.lineno} breaks "
                f"hygiene of generated locals"
            )
        elif isinstance(node, ast.Name) and node.id in _FORBIDDEN_NAMES:
            violations.append(
                f"reference to forbidden builtin {node.id!r} at line "
                f"{node.lineno}"
            )


# ---------------------------------------------------------------------------
# Scope analysis: unbound names and namespace shadowing
# ---------------------------------------------------------------------------


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.bound: Set[str] = set()

    def resolves(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.bound:
                return True
            scope = scope.parent
        return False


class _ScopeChecker:
    """Resolve every Name load against locals, namespace, or builtins.

    Python scoping is flat per function (a name assigned anywhere in a
    function is local throughout), so bindings are collected per function
    scope in a first pass, then loads are checked.  Comprehensions get
    their own scope for their targets, matching Python 3 semantics.
    """

    def __init__(
        self,
        namespace: Set[str],
        entry_point: str,
        violations: List[str],
    ):
        self.namespace = namespace
        self.entry_point = entry_point
        self.violations = violations

    def check_module(self, tree: ast.Module) -> None:
        module_scope = _Scope()
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                module_scope.bound.add(stmt.name)
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                self._check_function(stmt, module_scope)

    # -- binding collection ------------------------------------------------

    def _collect_bindings(
        self, body: Sequence[ast.stmt], scope: _Scope
    ) -> None:
        """Names bound anywhere in *body*, not descending into nested
        function/lambda/comprehension scopes."""
        for stmt in body:
            self._collect_stmt(stmt, scope)

    def _collect_stmt(self, stmt: ast.stmt, scope: _Scope) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._bind(stmt.name, scope, stmt.lineno)
            return  # nested scope handled separately
        if isinstance(stmt, ast.ClassDef):
            self._bind(stmt.name, scope, stmt.lineno)
            return
        for node in ast.iter_child_nodes(stmt):
            self._collect_node(node, scope)

    def _collect_node(self, node: ast.AST, scope: _Scope) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self._bind(node.id, scope, node.lineno)
            return
        if isinstance(node, ast.ExceptHandler):
            if node.name:
                self._bind(node.name, scope, node.lineno)
        if isinstance(node, ast.NamedExpr):
            self._bind(node.target.id, scope, node.lineno)
            self._collect_node(node.value, scope)
            return
        if isinstance(
            node,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.Lambda,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
            ),
        ):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._bind(node.name, scope, node.lineno)
            return  # their bindings live in their own scope
        if isinstance(node, ast.stmt):
            self._collect_stmt(node, scope)
            return
        for child in ast.iter_child_nodes(node):
            self._collect_node(child, scope)

    def _bind(self, name: str, scope: _Scope, lineno: int) -> None:
        if name in self.namespace:
            self.violations.append(
                f"local binding {name!r} at line {lineno} shadows a "
                f"namespace binding; generated locals must be hygienic"
            )
        scope.bound.add(name)

    # -- load checking -----------------------------------------------------

    def _check_function(
        self, fn: ast.FunctionDef, parent: _Scope
    ) -> None:
        scope = _Scope(parent)
        args = fn.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            scope.bound.add(arg.arg)
        if args.vararg:
            scope.bound.add(args.vararg.arg)
        if args.kwarg:
            scope.bound.add(args.kwarg.arg)
        self._collect_bindings(fn.body, scope)
        for stmt in fn.body:
            self._check_node(stmt, scope)

    def _check_lambda(self, node: ast.Lambda, parent: _Scope) -> None:
        scope = _Scope(parent)
        for arg in list(node.args.posonlyargs) + list(node.args.args):
            scope.bound.add(arg.arg)
        self._check_node(node.body, scope)

    def _check_comprehension(self, node: ast.AST, parent: _Scope) -> None:
        scope = _Scope(parent)
        for comp in node.generators:
            self._collect_node(comp.target, scope)
        # first iterable evaluates in the enclosing scope
        first = True
        for comp in node.generators:
            self._check_node(comp.iter, parent if first else scope)
            first = False
            for cond in comp.ifs:
                self._check_node(cond, scope)
        if isinstance(node, ast.DictComp):
            self._check_node(node.key, scope)
            self._check_node(node.value, scope)
        else:
            self._check_node(node.elt, scope)

    def _check_node(self, node: ast.AST, scope: _Scope) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._check_load(node, scope)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(node, scope)
            return
        if isinstance(node, ast.Lambda):
            self._check_lambda(node, scope)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            self._check_comprehension(node, scope)
            return
        if isinstance(node, ast.Attribute):
            self._check_node(node.value, scope)
            return
        for child in ast.iter_child_nodes(node):
            self._check_node(child, scope)

    def _check_load(self, node: ast.Name, scope: _Scope) -> None:
        name = node.id
        if (
            scope.resolves(name)
            or name in self.namespace
            or name in SAFE_BUILTINS
            or name == self.entry_point
        ):
            return
        self.violations.append(
            f"unbound name {name!r} at line {node.lineno}: it is not a "
            f"parameter, a local, a namespace binding, or a safe builtin"
        )


# ---------------------------------------------------------------------------
# Self-test CLI: verify every backend's TPC-H output
# ---------------------------------------------------------------------------


def _ir_selftest() -> int:
    """Verify the lowered IR of Q1–Q3 and catch deliberately broken IRs."""
    from ..codegen.lower import lower_plan
    from ..expressions.canonical import canonicalize
    from ..plans.optimizer import optimize
    from ..plans.translate import translate
    from ..query.provider import QueryProvider
    from ..tpch.datagen import TPCHData
    from ..tpch import queries as tpch_queries

    data = TPCHData(scale=0.01, seed=7)
    provider = QueryProvider()
    failures = 0
    irs = []
    for label, builder in (
        ("Q1", tpch_queries.q1),
        ("Q2", tpch_queries.q2),
        ("Q3", tpch_queries.q3),
    ):
        query = builder(data, "native", provider=provider)
        canonical = canonicalize(query.expr)
        plan = optimize(
            translate(canonical.tree, provider.translate_options),
            provider.optimize_options,
            statistics=provider._statistics,
            param_values=canonical.bindings,
        )
        ir = lower_plan(
            plan,
            statistics=provider._statistics,
            param_values=canonical.bindings,
        )
        report = verify_ir(ir)
        status = "ok" if report.ok else "FAIL"
        print(f"{label} IR invariants       {status}")
        if not report.ok:
            failures += 1
            for violation in report.violations:
                print(f"    {violation}")
        irs.append((label, ir))

    # corrupted IRs must be caught: mutate one invariant at a time, check,
    # then restore the original value
    label, ir = irs[0]
    cases = []

    breaker = ir.breakers[0]
    saved_producers = breaker.producers
    breaker.producers = list(saved_producers) + [99]
    cases.append(("phantom producer", verify_ir(ir)))
    breaker.producers = saved_producers

    saved_consumer = breaker.consumer
    breaker.consumer = None
    cases.append(("missing consumer", verify_ir(ir)))
    breaker.consumer = saved_consumer

    scan_pipe = next(
        p for p in ir.pipelines
        if p.driver_ordinal is not None and p.required_fields
    )
    saved_fields = scan_pipe.required_fields
    scan_pipe.required_fields = set()
    cases.append(("field read outside required set", verify_ir(ir)))
    scan_pipe.required_fields = saved_fields

    for name, report in cases:
        caught = not report.ok
        status = "ok" if caught else "FAIL"
        print(f"{label} IR corruption: {name:32s} {status}")
        if not caught:
            failures += 1
            print("    corrupted IR passed verification")

    # dataflow facts: honest facts must verify, doctored facts must not
    import dataclasses

    from ..analysis import analyze_ir

    for label, ir in irs:
        ir.facts = analyze_ir(ir)
        report = verify_facts(ir)
        status = "ok" if report.ok else "FAIL"
        print(f"{label} dataflow facts       {status}")
        if not report.ok:
            failures += 1
            for violation in report.violations:
                print(f"    {violation}")

    label, ir = irs[0]
    honest = ir.facts
    fact_cases = (
        (
            "divisions claimed proven",
            dataclasses.replace(
                honest, division_sites=3, divisions_proven=3
            ),
        ),
        (
            "phantom dead pipeline",
            dataclasses.replace(
                honest, dead_pipelines=((0, "fabricated"),)
            ),
        ),
        (
            "phantom proven filter",
            dataclasses.replace(honest, proven_filters=((0, 0),)),
        ),
        ("facts missing entirely", None),
    )
    for name, doctored in fact_cases:
        ir.facts = doctored
        report = verify_facts(ir)
        caught = not report.ok
        status = "ok" if caught else "FAIL"
        print(f"{label} facts corruption: {name:29s} {status}")
        if not caught:
            failures += 1
            print("    doctored facts passed verification")
    ir.facts = honest
    return failures


def _selftest() -> int:
    """Generate TPC-H Q1–Q3 on every codegen engine and verify each module."""
    from ..query.provider import QueryProvider
    from ..tpch.datagen import TPCHData
    from ..tpch import queries as tpch_queries

    data = TPCHData(scale=0.01, seed=7)
    engines = ("compiled", "native", "hybrid", "hybrid_buffered")
    builders = (
        ("Q1", tpch_queries.q1),
        ("Q2", tpch_queries.q2),
        ("Q3", tpch_queries.q3),
    )
    failures = 0
    for engine in engines:
        provider = QueryProvider()
        for label, builder in builders:
            query = builder(data, engine, provider=provider)
            compiled = provider.compile_info(
                query.expr, query.sources, engine
            )
            report = verify_source(
                compiled.source_code,
                getattr(compiled.fn, "__globals__", {}),
            )
            status = "ok" if report.ok else "FAIL"
            print(f"{label} × {engine:16s} {status}")
            if not report.ok:
                failures += 1
                for violation in report.violations:
                    print(f"    {violation}")
    failures += _ir_selftest()
    if failures:
        print(f"selftest: {failures} check(s) failed verification")
        return 1
    print("selftest: all generated modules and IR invariants verified clean")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.codegen.verifier",
        description="Verify generated query modules.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="generate TPC-H Q1-Q3 on every codegen engine and verify",
    )
    options = parser.parse_args(argv)
    if options.selftest:
        return _selftest()
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
