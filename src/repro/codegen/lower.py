"""Lowering: optimized logical plan → pipeline IR.

:func:`lower_plan` runs the passes every backend used to re-implement
privately, once, in a fixed order:

1. **predicate reordering** — re-applies the optimizer's conjunct
   ordering (cheapest/most-selective first, reusing ``predicate_cost``).
   Idempotent over already-optimized plans; plans handed directly to a
   backend get the ordering here.
2. **common-subexpression elimination** — repeated subexpressions inside
   filter predicates and projection selectors hoist into per-lambda
   ``__cse<N>`` bindings (see :mod:`repro.codegen.ir`), evaluated once
   per element by every backend.
3. **predicate decomposition** — multi-conjunct filters split into a
   cascade of single-conjunct filters (order preserved from pass 1), so
   vectorized backends evaluate later conjuncts over already-shrunk
   intermediates.  Scan-adjacent filters stay fused: their conjunction
   participates in access-path selection (index/cluster fast paths) and
   forms the hybrid staging predicate; filters that gained CSE bindings
   also stay fused so the binding spans its conjuncts.
4. **segmentation** — the plan splits into :class:`~repro.codegen.ir.
   Pipeline` objects at blocking operators, in dependency order (the
   paper's "each loop either produces the final result of a query or an
   intermediate result of a blocking operation").
5. **annotation** — each pipeline gets its required-fields set (the
   shared field-usage pass of ``ir``), parallel-eligibility (subsuming the old
   ``plans/validate.parallel_split`` capability logic, which now
   delegates here) and its morsel-slice point.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..analysis.effects import plan_effects
from ..errors import CodegenError
from ..expressions.analysis import conjuncts, contains_aggregate
from ..expressions.nodes import Lambda
from ..plans.logical import (
    Concat,
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
    is_blocking,
    plan_children,
)
from ..plans.optimizer import OptimizeOptions, _Context, _reorder_predicates
from ..plans.validate import PARALLEL_MERGEABLE_AGGREGATES, ParallelSplit
from .ir import (
    CseAllocator,
    Pipeline,
    PipelineBreaker,
    QueryIR,
    breaker_kind,
    eliminate_common_subexpressions,
    rebuild_plan,
    required_source_fields,
    strip_scan_filters,
)

__all__ = ["lower_plan", "decide_parallel", "hybrid_placements"]

#: every plan node kind the lowering passes understand
_KNOWN_NODES = (
    Scan,
    Filter,
    Project,
    FlatMap,
    Join,
    GroupBy,
    GroupAggregate,
    ScalarAggregate,
    Sort,
    TopN,
    Limit,
    Distinct,
    Concat,
    SetOp,
)


def _check_known(node: Plan) -> None:
    if not isinstance(node, _KNOWN_NODES):
        raise CodegenError(
            f"no pipeline lowering for plan node {type(node).__name__}"
        )


def lower_plan(
    plan: Plan,
    morsel_ordinal: Optional[int] = None,
    statistics: Optional[Dict[str, Any]] = None,
    param_values: Optional[Dict[str, Any]] = None,
) -> QueryIR:
    """Lower an optimized plan into the pipeline IR all backends consume."""
    plan = _reorder_filters(plan, statistics, param_values)
    split = decide_parallel(plan)
    plan, cse = _eliminate_subexpressions(plan)
    plan = _decompose_filters(plan, cse)
    pipelines, breakers = _segment(plan)
    source_fields = required_source_fields(plan, cse)
    stripped, _ = strip_scan_filters(plan)
    staging_fields = required_source_fields(stripped, cse)
    for pipeline in pipelines:
        # every pipeline head is a cancellation checkpoint: the coarsest
        # granularity that still bounds how long a cancelled query keeps
        # running (one fused loop) without touching any per-element path
        pipeline.cancel_checkpoint = True
        if isinstance(pipeline.driver, Scan):
            ordinal = pipeline.driver.ordinal
            pipeline.driver_ordinal = ordinal
            pipeline.required_fields = source_fields.get(ordinal)
            pipeline.morsel_driver = (
                morsel_ordinal is not None and ordinal == morsel_ordinal
            )
            pipeline.parallel_ok = (
                split.parallel and ordinal == split.morsel_ordinal
            )
    return QueryIR(
        plan=plan,
        pipelines=tuple(pipelines),
        breakers=tuple(breakers),
        cse=cse,
        source_fields=source_fields,
        staging_fields=staging_fields,
        split=split,
        morsel_ordinal=morsel_ordinal,
        scalar=isinstance(plan, ScalarAggregate),
    )


# ---------------------------------------------------------------------------
# Pass 1: predicate reordering (reuses the optimizer's machinery)
# ---------------------------------------------------------------------------


def _reorder_filters(
    plan: Plan,
    statistics: Optional[Dict[str, Any]],
    param_values: Optional[Dict[str, Any]],
) -> Plan:
    """Sort every filter's conjuncts cheapest-first.

    Delegates to :func:`repro.plans.optimizer._reorder_predicates` with
    the same statistics/parameters the optimizer saw, so re-sorting an
    already-optimized plan is a stable no-op (statistics-driven orderings
    are preserved, not clobbered).
    """
    context = _Context(OptimizeOptions(), statistics or {}, param_values or {})

    def visit(node: Plan) -> Plan:
        _check_known(node)
        rebuilt = (
            node
            if isinstance(node, Scan)
            else rebuild_plan(node, [visit(c) for c in plan_children(node)])
        )
        if isinstance(rebuilt, Filter):
            rebuilt = _reorder_predicates(rebuilt, context)
        return rebuilt

    return visit(plan)


# ---------------------------------------------------------------------------
# Pass 2: common-subexpression elimination
# ---------------------------------------------------------------------------


def _eliminate_subexpressions(plan: Plan) -> Tuple[Plan, Dict[int, tuple]]:
    """Hoist repeated subexpressions in predicates and selectors.

    Applied to filter predicates and aggregate-free projection selectors
    (the 1-ary lambdas every backend inlines per element).  Returns the
    rewritten plan plus the binding table keyed by the identity of the
    rewritten lambdas.
    """
    allocator = CseAllocator()
    cse: Dict[int, tuple] = {}

    def rewrite(lam: Lambda) -> Lambda:
        new_lam, bindings = eliminate_common_subexpressions(lam, allocator)
        if bindings:
            cse[id(new_lam)] = bindings
        return new_lam

    def visit(node: Plan) -> Plan:
        children = [visit(c) for c in plan_children(node)]
        if isinstance(node, Filter):
            return Filter(children[0], rewrite(node.predicate))
        if isinstance(node, Project) and not contains_aggregate(
            node.selector.body
        ):
            return Project(children[0], rewrite(node.selector))
        if isinstance(node, Scan):
            return node
        return rebuild_plan(node, children)

    return visit(plan), cse


# ---------------------------------------------------------------------------
# Pass 3: predicate decomposition
# ---------------------------------------------------------------------------


def _decompose_filters(plan: Plan, cse: Dict[int, tuple]) -> Plan:
    """Split multi-conjunct filters into single-conjunct cascades.

    Conjunct order (established by pass 1) is preserved: the first
    conjunct becomes the innermost filter.  Scan-adjacent filters and
    filters carrying CSE bindings stay fused (see module docstring).
    """

    def visit(node: Plan) -> Plan:
        if isinstance(node, Scan):
            return node
        node = rebuild_plan(node, [visit(c) for c in plan_children(node)])
        if (
            isinstance(node, Filter)
            and not isinstance(node.child, Scan)
            and id(node.predicate) not in cse
        ):
            parts = conjuncts(node.predicate.body)
            if len(parts) > 1:
                rebuilt = node.child
                for part in parts:
                    rebuilt = Filter(
                        rebuilt,
                        Lambda(
                            node.predicate.params,
                            part,
                            node.predicate.effects,
                        ),
                    )
                return rebuilt
        return node

    return visit(plan)


# ---------------------------------------------------------------------------
# Pass 4: segmentation into pipelines
# ---------------------------------------------------------------------------

#: non-blocking operators that fuse into a pipeline's operator chain
_CHAIN_OPS = (Filter, Project, FlatMap, Limit)


def _segment(
    plan: Plan,
) -> Tuple[List[Pipeline], List[PipelineBreaker]]:
    """Split *plan* into pipelines at blocking operators.

    Pipelines are created in dependency order (producers before their
    consumer), which is also the schedule every backend emits: pipeline
    ids are a topological order of the DAG.
    """
    pipelines: List[Pipeline] = []
    breakers: List[PipelineBreaker] = []
    breaker_of: Dict[int, PipelineBreaker] = {}

    def new_breaker(node: Plan) -> PipelineBreaker:
        breaker = PipelineBreaker(
            bid=len(breakers), kind=breaker_kind(node), node=node
        )
        breakers.append(breaker)
        breaker_of[id(node)] = breaker
        return breaker

    def make_pipeline(
        driver: Any,
        ops: List[Plan],
        sink: Optional[PipelineBreaker],
        inputs: List[int],
    ) -> Pipeline:
        if isinstance(driver, PipelineBreaker):
            inputs = inputs + driver.producers
        pipeline = Pipeline(
            pid=len(pipelines),
            driver=driver,
            operators=tuple(ops),
            sink=sink,
            inputs=tuple(sorted(set(inputs))),
        )
        pipelines.append(pipeline)
        if sink is not None:
            sink.producers.append(pipeline.pid)
        if isinstance(driver, PipelineBreaker):
            driver.consumer = pipeline.pid
        for op in ops:
            if isinstance(op, (Join, SetOp)):
                breaker_of[id(op)].consumer = pipeline.pid
        return pipeline

    def chains(node: Plan) -> List[Tuple[Any, List[Plan], List[int]]]:
        """(driver, operator chain innermost-first, dependency pids)."""
        if isinstance(node, Scan):
            return [(node, [], [])]
        if isinstance(node, ScalarAggregate):
            raise CodegenError(
                "scalar aggregates must be the plan root; found one mid-plan"
            )
        if is_blocking(node):
            breaker = breaker_of.get(id(node))
            if breaker is None:
                breaker = new_breaker(node)
                for driver, ops, inputs in chains(node.child):
                    make_pipeline(driver, ops, breaker, inputs)
            return [(breaker, [], [])]
        if isinstance(node, (Join, SetOp)):
            # both build their right side into a breaker and fuse the
            # probe into the left chain
            breaker = breaker_of.get(id(node))
            if breaker is None:
                breaker = new_breaker(node)
                for driver, ops, inputs in chains(node.right):
                    make_pipeline(driver, ops, breaker, inputs)
            build_pids = list(breaker.producers)
            return [
                (driver, ops + [node], inputs + build_pids)
                for driver, ops, inputs in chains(node.left)
            ]
        if isinstance(node, Concat):
            return chains(node.left) + chains(node.right)
        if isinstance(node, _CHAIN_OPS):
            return [
                (driver, ops + [node], inputs)
                for driver, ops, inputs in chains(node.child)
            ]
        raise CodegenError(
            f"no pipeline lowering for plan node {type(node).__name__}"
        )

    if isinstance(plan, ScalarAggregate):
        breaker = new_breaker(plan)
        for driver, ops, inputs in chains(plan.child):
            make_pipeline(driver, ops, breaker, inputs)
    else:
        for driver, ops, inputs in chains(plan):
            make_pipeline(driver, ops, None, inputs)
    return pipelines, breakers


# ---------------------------------------------------------------------------
# Parallel eligibility (moved here from plans/validate.py, which delegates)
# ---------------------------------------------------------------------------


def decide_parallel(plan: Plan):
    """Classify *plan* for morsel-driven execution, operator by operator.

    The morselized scan is the driver: the leftmost-deepest scan of the
    core pipeline, which must occur exactly once in the whole plan.
    Pipelined operators (filter/project/flat-map) are trivially
    parallel-safe; blocking roots are safe when their partials merge
    deterministically (group/scalar aggregation); everything else —
    order-sensitive operators without a merge, joins (build side not yet
    shared across morsels), direct group materialization, concatenation —
    falls back to sequential execution.
    """
    return _decide_split(plan, distributed=False)


def decide_distributed(plan: Plan):
    """Classify *plan* for sharded multi-process execution.

    Same decomposition as :func:`decide_parallel` — the shard is just a
    very large morsel, and the merge algebra is identical — with one
    extra allowance: **inner joins** distribute under the broadcast-build
    strategy.  The build side ships whole to every worker and is built
    exactly once per worker process (not once per morsel, the cost that
    keeps inner joins sequential on the thread tier), while the probe
    side is sharded; per-shard probe outputs concatenate in shard order,
    reproducing the sequential probe order.  Left/outer joins and set
    operations still fall back, with reasons surfaced on ``explain()``.
    """
    return _decide_split(plan, distributed=True)


def _decide_split(plan: Plan, distributed: bool):
    effects = plan_effects(plan)
    if effects.impure:
        return ParallelSplit(
            False,
            reasons=(f"impure lambda: {effects.describe()}",),
        )

    #: order-sensitive root operators with a deterministic managed-side
    #: merge: peeled off the morsel kernel, re-applied after concatenation
    post_op_types = (Sort, TopN, Limit, Distinct)

    post_ops: List[Plan] = []
    node = plan
    while isinstance(node, post_op_types):
        post_ops.append(node)
        node = node.child

    if isinstance(node, ScalarAggregate):
        mode, pipeline = "scalar", node.child
    elif isinstance(node, GroupAggregate):
        if not node.fused:
            return ParallelSplit(
                False,
                reasons=(
                    "unfused group aggregation re-scans materialized groups; "
                    "no deterministic partial merge",
                ),
            )
        mode, pipeline = "group", node.child
    else:
        mode, pipeline = "rows", node

    if mode in ("scalar", "group"):
        for spec in node.aggregates:
            if spec.kind not in PARALLEL_MERGEABLE_AGGREGATES:
                return ParallelSplit(
                    False,
                    reasons=(
                        f"aggregate {spec.kind!r} has no deterministic "
                        f"partial merge",
                    ),
                )

    blocker = _pipeline_blocker(pipeline, distributed=distributed)
    if blocker is not None:
        if isinstance(blocker, Join):
            detail = (
                f"{blocker.kind} join has no distributed merge "
                f"(unmatched-row accounting spans shards)"
                if distributed
                else f"{blocker.kind} join rebuilds its hash state per "
                f"morsel; no shared build phase"
            )
        elif isinstance(blocker, SetOp):
            detail = (
                f"set operation {blocker.op!r} compares whole inputs; "
                f"no per-{'shard' if distributed else 'morsel'} "
                f"decomposition"
            )
        else:
            detail = (
                f"plan node {type(blocker).__name__} inside the "
                f"{'shard' if distributed else 'morsel'} pipeline is "
                f"order-sensitive or blocking; no per-"
                f"{'shard' if distributed else 'morsel'} decomposition"
            )
        return ParallelSplit(False, reasons=(detail,))

    ordinal = _driver_ordinal(pipeline)
    occurrences = sum(
        1
        for n in _walk_plan(plan)
        if isinstance(n, Scan) and n.ordinal == ordinal
    )
    if occurrences != 1:
        return ParallelSplit(
            False,
            reasons=(
                f"source {ordinal} is scanned {occurrences} times; "
                f"morselizing one scan would desynchronize the others",
            ),
        )
    return ParallelSplit(
        True,
        mode=mode,
        core=node,
        post_ops=tuple(post_ops),
        morsel_ordinal=ordinal,
    )


def _walk_plan(plan: Plan):
    yield plan
    for child in plan_children(plan):
        yield from _walk_plan(child)


def _pipeline_blocker(node: Plan, distributed: bool = False) -> Optional[Plan]:
    """First operator on the morsel path that cannot run per-morsel.

    Joins are correct to morselize (probe side sliced, build side
    recomputed per morsel) but a morsel kernel is monolithic, so every
    invocation would rebuild the build-side hash state from scratch —
    measured 3–20× slower than one sequential pass.  Until the build
    phase is shared across morsels, inner joins fall back to sequential
    on the thread tier.  The distributed tier runs one kernel invocation
    per *shard*, so the build side is built exactly once per worker
    (broadcast-build) and inner joins distribute; left joins stay
    blocked everywhere — their unmatched-row default handling is still
    per-probe-row, but keeping the thread and process tiers' join
    surfaces aligned with the documented capability matrix matters more
    than one extra operator.
    """
    if isinstance(node, Scan):
        return None
    if isinstance(node, (Filter, Project, FlatMap)):
        return _pipeline_blocker(node.child, distributed)
    if isinstance(node, Join) and node.kind in ("semi", "anti"):
        # existence probes are stateless row masks over the probe side;
        # the build-side key set is rebuilt per morsel (kernels receive
        # full sources — only the morsel scan is sliced), so per-morsel
        # results concatenate deterministically
        return _pipeline_blocker(node.left, distributed)
    if distributed and isinstance(node, Join) and node.kind == "inner":
        # broadcast-build: the probe (left) side is sharded, the build
        # side ships whole to each worker and is built once per worker
        return _pipeline_blocker(node.left, distributed)
    return node


def _driver_ordinal(node: Plan) -> int:
    """Ordinal of the leftmost-deepest scan: the morselized driver."""
    while not isinstance(node, Scan):
        node = node.left if isinstance(node, (Join, SetOp)) else node.child
    return node.ordinal


# ---------------------------------------------------------------------------
# Hybrid placement assignment (used by the hybrid backend and EXPLAIN)
# ---------------------------------------------------------------------------


def hybrid_placements(ir: QueryIR) -> Dict[int, str]:
    """Per-pipeline managed/native placement for the hybrid engine (§6).

    Scan-driven pipelines start managed: their driver is the staging loop
    copying objects into native memory (scan-adjacent predicates run
    managed-side), while the fused operator chain runs over staged
    arrays.  Breaker-driven pipelines consume already-native
    intermediates and stay native end to end.
    """
    placements: Dict[int, str] = {}
    for pipeline in ir.pipelines:
        if isinstance(pipeline.driver, Scan):
            placements[pipeline.pid] = "managed staging -> native"
        else:
            placements[pipeline.pid] = "native"
    return placements
