"""Object ↔ native layout mappings — paper §6.2.

The hybrid engine must copy object data into flat native memory.  Three
questions decide what the staging code looks like, answered here:

1. **Which fields does the query actually touch?** (`source_field_usage`)
   Only those are copied — the paper's *implicit projection* driven by the
   source mapping of Figure 6.
2. **What are their native types?** (`infer_object_schema`) C# answers by
   reflection; Python objects carry no static types, so we sample the
   collection and derive dtypes (string widths are measured over the
   sample with headroom; overflow at staging time raises
   :class:`~repro.errors.SchemaError` rather than truncating silently).
3. **Which filters run managed-side, before staging?** (`split_staging`)
   "We apply all filtering operations in C#" — filters sitting directly on
   a scan move into the staging loop; the remaining plan runs natively
   over the staged arrays.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SchemaError, UnsupportedQueryError
from ..expressions.nodes import Lambda
from ..plans.logical import Plan
from ..storage.schema import Field, Schema
from ..storage.struct_array import StructArray
from .ir import required_source_fields, strip_scan_filters

__all__ = [
    "infer_object_schema",
    "source_field_usage",
    "StagedSource",
    "split_staging",
]

#: how many elements to examine when deriving a schema from objects
_SAMPLE_SIZE = 1000
#: headroom multiplier for sampled string widths
_WIDTH_MARGIN = 2
_MIN_WIDTH = 8


def infer_object_schema(
    items: Sequence[Any],
    fields: Optional[Set[str]] = None,
    name: str = "Inferred",
) -> Schema:
    """Derive a flat native schema from a sample of *items*.

    ``fields`` restricts inference to the named attributes (the source
    mapping); None infers every public attribute of the first element.
    """
    iterator = iter(items)
    try:
        first = next(iterator)
    except StopIteration:
        if fields:
            # nothing will ever be staged from an empty collection, so any
            # layout works; C# would know the real one by reflection
            return Schema([Field(n, "float") for n in sorted(fields)], name=name)
        raise SchemaError(
            "cannot infer a schema from an empty collection; supply one "
            "explicitly (QList(items, schema=...))"
        ) from None
    if fields is None:
        fields = {
            n for n in _attribute_names(first) if not n.startswith("_")
        }
    ordered = sorted(fields)
    kinds: Dict[str, str] = {}
    widths: Dict[str, int] = {}
    for name_ in ordered:
        value = _attr(first, name_)
        kinds[name_] = _kind_of(value, name_)
        if kinds[name_] == "str":
            widths[name_] = len(value.encode("utf-8"))
    examined = 1
    for item in iterator:
        if examined >= _SAMPLE_SIZE:
            break
        examined += 1
        for name_ in ordered:
            if kinds[name_] == "str":
                widths[name_] = max(
                    widths[name_], len(_attr(item, name_).encode("utf-8"))
                )
            elif kinds[name_] == "int" and isinstance(_attr(item, name_), float):
                kinds[name_] = "float"
    schema_fields = []
    for name_ in ordered:
        if kinds[name_] == "str":
            width = max(_MIN_WIDTH, widths[name_] * _WIDTH_MARGIN)
            schema_fields.append(Field(name_, "str", width))
        else:
            schema_fields.append(Field(name_, kinds[name_]))
    return Schema(schema_fields, name=name)


def _attribute_names(obj: Any) -> List[str]:
    if hasattr(obj, "_fields"):  # namedtuple
        return list(obj._fields)
    if hasattr(obj, "__dict__"):
        return list(vars(obj))
    if hasattr(obj, "__slots__"):
        return list(obj.__slots__)
    raise SchemaError(f"cannot infer attributes of {type(obj).__name__}")


def _attr(obj: Any, name: str) -> Any:
    try:
        return getattr(obj, name)
    except AttributeError:
        raise SchemaError(
            f"element of type {type(obj).__name__} lacks attribute {name!r} "
            f"required by the query"
        ) from None


def _kind_of(value: Any, name: str) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, datetime.date):
        return "date"
    raise SchemaError(
        f"attribute {name!r} of type {type(value).__name__} has no flat "
        f"native representation (the §5/§6 value-type restriction)"
    )


# -- which fields of which source does the plan touch? -------------------------


def source_field_usage(plan: Plan) -> Dict[int, Optional[Set[str]]]:
    """Map scan ordinal → fields used above it (None = whole element).

    The per-source *source mapping* of Figure 6: staging copies exactly
    these fields.  This is the shared required-fields pass of the pipeline
    IR (:func:`repro.codegen.ir.required_source_fields`); kept here as the
    schema-facing entry point.
    """
    return required_source_fields(plan)


# -- staging split ----------------------------------------------------------------


@dataclass
class StagedSource:
    """Everything the staging loop for one source needs to know."""

    ordinal: int
    #: managed-side filters, applied before copying (paper: selection in C#)
    predicates: Tuple[Lambda, ...]
    #: the implicit projection: fields copied to native memory
    fields: Tuple[str, ...]
    #: native layout of the staged rows
    schema: Schema = field(default=None)  # type: ignore[assignment]


def split_staging(plan: Plan) -> Tuple[Plan, Dict[int, StagedSource]]:
    """Peel scan-adjacent filters off the plan into staging specs.

    Returns the remaining (native) plan, whose Scans now refer to staged
    arrays, plus one :class:`StagedSource` per input.  Both the peel and
    the field lists come from the shared IR passes
    (:func:`repro.codegen.ir.strip_scan_filters` /
    :func:`~repro.codegen.ir.required_source_fields` of the *stripped*
    plan — after stripping, predicate-only fields no longer force
    staging).
    """
    stripped, peeled = strip_scan_filters(plan)
    usage = required_source_fields(stripped)
    staged: Dict[int, StagedSource] = {}
    for ordinal, predicates in peeled.items():
        fields = usage.get(ordinal, set())
        if fields is None:
            raise UnsupportedQueryError(
                f"the query uses whole elements of source_{ordinal} beyond "
                f"the staging boundary; the hybrid engine requires flat "
                f"field access (use the compiled engine)"
            )
        staged[ordinal] = StagedSource(
            ordinal=ordinal,
            predicates=predicates,
            fields=tuple(sorted(fields)),
        )
    return stripped, staged


def staged_schema_for(
    source: Any, spec: StagedSource, token: str = ""
) -> Schema:
    """Native layout of one staged source (derived or copied)."""
    if isinstance(source, StructArray):
        base = source.schema
        names = [n for n in spec.fields if n in base]
        missing = [n for n in spec.fields if n not in base]
        if missing:
            raise SchemaError(f"source schema lacks staged fields {missing}")
        return base.project(names, name=f"staged_{spec.ordinal}")
    declared = getattr(source, "schema", None)
    if isinstance(declared, Schema):
        return declared.project(
            [n for n in spec.fields], name=f"staged_{spec.ordinal}"
        )
    return infer_object_schema(
        source, set(spec.fields), name=f"staged_{spec.ordinal}"
    )
