"""§5 — substituting native (vectorized NumPy) code for the host language.

When the source data lives in :class:`~repro.storage.struct_array.StructArray`
(fixed-layout arrays of structs, no references), the entire query can run
in the native runtime.  The generated source is straight-line NumPy: inline
vectorized expressions plus calls into the compiled kernels of
:mod:`repro.runtime.vectorized` — no per-element Python between kernel
calls, mirroring "all query processing is performed in C without any data
staging".

The paper restricts this engine (§5): only supported flat value types, no
calls to application methods, no references in intermediate results.  The
same restrictions hold here and are enforced at code-generation time with
:class:`~repro.errors.UnsupportedQueryError` — queries outside the fragment
must use the compiled or hybrid engines.

Codegen model: the backend lowers the shared pipeline IR
(:mod:`repro.codegen.ir`).  Every pipeline maps to a frame/kernel
sequence: the driver yields a *frame* — a set of named, symbolic column
expressions plus a row-count expression — the chain operators transform
it, and the sink either materializes a :class:`~repro.codegen.ir.
PipelineBreaker` (one kernel call: sort/top-N/distinct indexes, grouped
aggregation, join build) or delivers the terminal result.  Materializing
operators produce exactly the columns their consumers need — the demand
sets are propagated over the IR DAG with the shared required-fields
analysis (the same pass that drives §6's implicit projection).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from functools import reduce
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis import analyze_ir, elision_enabled
from ..errors import ExecutionError, UnsupportedQueryError
from ..observability.tracer import TRACER
from ..runtime.guards import ensure_nonzero_array
from ..expressions.analysis import conjuncts
from ..expressions.nodes import (
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
)
from ..expressions.evaluator import make_record_type
from ..plans.logical import (
    AggregateSpec,
    Concat,
    Distinct,
    Filter,
    GroupAggregate,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
    plan_children,
)
from ..runtime import vectorized as _vec
from ..runtime.cancellation import cancel_check
from ..runtime.parallel import MORSEL_START as _MORSEL_START
from ..runtime.parallel import MORSEL_STOP as _MORSEL_STOP
from ..storage.schema import Schema, date_to_days, days_to_date
from ..storage.struct_array import StructArray
from .compiler import CompiledQuery, compile_source, timed
from .ir import (
    Pipeline,
    PipelineBreaker,
    QueryIR,
    lambda_fields,
    lambda_usage,
    merge_fields,
    paths_to_fields,
)
from .lower import lower_plan
from .source import NameAllocator, SourceWriter

__all__ = ["NativeBackend", "VectorPrinter", "ColumnRef", "Frame", "schema_for_sources"]

_BOOL_OPS = {"eq", "ne", "lt", "le", "gt", "ge", "and", "or"}

#: kinds whose numpy arithmetic widens to int64
_INT_FAMILY = {"int", "int32", "bool"}
_NUMERIC_RESULT = {"add", "sub", "mul", "truediv", "floordiv", "mod", "pow"}


@dataclass
class ColumnRef:
    """One symbolic column: a NumPy source expression plus a value kind."""

    code: str
    kind: str  # int / int32 / float / bool / str / date / unknown


@dataclass
class Frame:
    """Symbolic result of a plan stage: named columns + a row count."""

    columns: Dict[str, ColumnRef]
    length_code: str

    SINGLE = "__value"

    @property
    def is_single(self) -> bool:
        return list(self.columns) == [Frame.SINGLE]

    def column(self, name: str) -> ColumnRef:
        try:
            return self.columns[name]
        except KeyError:
            raise UnsupportedQueryError(
                f"native frame has no column {name!r}; available: "
                f"{sorted(self.columns)}"
            ) from None


def schema_for_sources(sources: Sequence[Any]) -> List[Schema]:
    """Validate that every source is a StructArray and collect schemas."""
    schemas = []
    for i, source in enumerate(sources):
        if not isinstance(source, StructArray):
            raise UnsupportedQueryError(
                f"the native engine requires StructArray sources; source_{i} "
                f"is {type(source).__name__} (use the compiled or hybrid "
                f"engine for object collections)"
            )
        schemas.append(source.schema)
    return schemas


class VectorPrinter:
    """Renders scalar expressions as vectorized NumPy source.

    ``env`` maps lambda variable names to ``(frame, index_code)``: member
    access becomes a column expression, optionally gathered through an
    index array (used on join outputs).  Comparisons against ``str`` /
    ``date`` columns coerce the scalar operand to the native representation
    (bytes / days-since-epoch), at codegen time for constants and via
    ``_coerce_*`` helpers for parameters.
    """

    #: wrap divisors in ``_nz`` (raises on any zero) unless the dataflow
    #: pass proved every divisor in the query nonzero
    guard_divisions = True

    def __init__(
        self,
        env: Dict[str, Tuple[Frame, Optional[str]]],
        param_render,
        namespace: Dict[str, Any],
    ):
        self.env = env
        self._param_render = param_render
        self.namespace = namespace

    # -- kinds ------------------------------------------------------------------

    def kind_of(self, expr: Expr) -> str:
        if isinstance(expr, Member):
            frame, _ = self._resolve_var(expr)
            return frame.column(expr.name).kind
        if isinstance(expr, Var):
            frame, _ = self.env.get(expr.name, (None, None))
            if frame is not None and frame.is_single:
                return frame.column(Frame.SINGLE).kind
            return "unknown"
        if isinstance(expr, Constant):
            return _kind_of_value(expr.value)
        if isinstance(expr, Binary):
            if expr.op in _BOOL_OPS:
                return "bool"
            left, right = self.kind_of(expr.left), self.kind_of(expr.right)
            if expr.op == "truediv" or "float" in (left, right):
                return "float"
            if left in _INT_FAMILY and right in _INT_FAMILY:
                # int32 + int32 etc. widen to int64 under numpy arithmetic
                return "int"
            if left == "int" or right == "int":
                return "int"
            return "unknown"
        if isinstance(expr, Unary):
            return "bool" if expr.op == "not" else self.kind_of(expr.operand)
        if isinstance(expr, Conditional):
            then = self.kind_of(expr.then)
            return then if then != "unknown" else self.kind_of(expr.other)
        if isinstance(expr, Method):
            if expr.name in ("lower", "upper", "strip"):
                return "str"
            return "bool"
        if isinstance(expr, Call):
            return "float" if expr.name in ("float", "round") else "unknown"
        return "unknown"

    # -- emission -----------------------------------------------------------------

    def emit(self, expr: Expr, coerce_to: Optional[str] = None) -> str:
        code = self._emit(expr)
        if coerce_to in ("str", "date") and not self._already_native(expr):
            code = self._wrap_coercion(expr, code, coerce_to)
        return code

    @staticmethod
    def _already_native(expr: Expr) -> bool:
        """Columns and vectorized string-method results are already in the
        native representation (bytes / days); everything else — constants,
        parameters, computed scalars — needs coercion."""
        return isinstance(expr, (Member, Method))

    def _wrap_coercion(self, expr: Expr, code: str, target_kind: str) -> str:
        if isinstance(expr, Constant):
            return repr(_encode_constant(expr.value, target_kind))
        helper = "_coerce_str" if target_kind == "str" else "_coerce_date"
        return f"{helper}({code})"

    def _emit(self, expr: Expr) -> str:
        if isinstance(expr, Constant):
            value = expr.value
            if isinstance(value, (int, float, bool, str, bytes)):
                return repr(value)
            if isinstance(value, datetime.date):
                return repr(date_to_days(value))
            raise UnsupportedQueryError(
                f"constant of type {type(value).__name__} is not representable "
                f"in native code"
            )
        if isinstance(expr, Param):
            return self._param_render(expr.name)
        if isinstance(expr, Var):
            frame, index = self.env.get(expr.name, (None, None))
            if frame is None:
                raise UnsupportedQueryError(f"unbound variable {expr.name!r}")
            if frame.is_single:
                return self._gather(frame.column(Frame.SINGLE).code, index)
            raise UnsupportedQueryError(
                "native code cannot manipulate whole records as values; "
                "access their fields instead (the §5 'no references' rule)"
            )
        if isinstance(expr, Member):
            frame, index = self._resolve_var(expr)
            return self._gather(frame.column(expr.name).code, index)
        if isinstance(expr, Binary):
            return self._emit_binary(expr)
        if isinstance(expr, Unary):
            if expr.op == "not":
                return f"(~({self._emit(expr.operand)}))"
            if expr.op == "abs":
                return f"_np.abs({self._emit(expr.operand)})"
            token = "-" if expr.op == "neg" else "+"
            return f"({token}{self._emit(expr.operand)})"
        if isinstance(expr, Conditional):
            return (
                f"_np.where({self._emit(expr.cond)}, "
                f"{self._emit(expr.then)}, {self._emit(expr.other)})"
            )
        if isinstance(expr, Method):
            return self._emit_method(expr)
        if isinstance(expr, Call):
            if expr.name == "abs":
                return f"_np.abs({self._emit(expr.args[0])})"
            raise UnsupportedQueryError(
                f"function {expr.name!r} has no vectorized form"
            )
        if isinstance(expr, New):
            raise UnsupportedQueryError(
                "record construction must be handled by the frame builder, "
                "not the vector printer"
            )
        raise UnsupportedQueryError(
            f"cannot vectorize expression node {type(expr).__name__}"
        )

    def _emit_binary(self, expr: Binary) -> str:
        left_kind = self.kind_of(expr.left)
        right_kind = self.kind_of(expr.right)
        coerce = None
        if left_kind in ("str", "date") or right_kind in ("str", "date"):
            coerce = left_kind if left_kind in ("str", "date") else right_kind
        left = self.emit(expr.left, coerce_to=coerce)
        right = self.emit(expr.right, coerce_to=coerce)
        token = {
            "and": "&",
            "or": "|",
            "eq": "==",
            "ne": "!=",
            "lt": "<",
            "le": "<=",
            "gt": ">",
            "ge": ">=",
            "add": "+",
            "sub": "-",
            "mul": "*",
            "truediv": "/",
            "floordiv": "//",
            "mod": "%",
            "pow": "**",
        }[expr.op]
        if self.guard_divisions and expr.op in ("truediv", "floordiv", "mod"):
            self.namespace.setdefault("_nz", ensure_nonzero_array)
            return f"({left} {token} _nz({right}))"
        return f"({left} {token} {right})"

    def _emit_method(self, expr: Method) -> str:
        target = self._emit(expr.target)
        target_kind = self.kind_of(expr.target)
        args = [
            self.emit(a, coerce_to="str" if target_kind == "str" else None)
            for a in expr.args
        ]
        if expr.name == "startswith":
            return f"_np.char.startswith({target}, {args[0]})"
        if expr.name == "endswith":
            return f"_np.char.endswith({target}, {args[0]})"
        if expr.name == "contains":
            return f"(_np.char.find({target}, {args[0]}) >= 0)"
        if expr.name in ("lower", "upper", "strip"):
            return f"_np.char.{expr.name}({target})"
        raise UnsupportedQueryError(f"method {expr.name!r} has no vectorized form")

    def _resolve_var(self, expr: Member) -> Tuple[Frame, Optional[str]]:
        target = expr.target
        if isinstance(target, Member):
            raise UnsupportedQueryError(
                f"nested member access {expr.name!r} is not representable in "
                f"the flat native layout (the §5 'no references' rule)"
            )
        if not isinstance(target, Var):
            raise UnsupportedQueryError(
                "member access on a computed value is not supported natively"
            )
        frame_index = self.env.get(target.name)
        if frame_index is None:
            raise UnsupportedQueryError(f"unbound variable {target.name!r}")
        return frame_index

    @staticmethod
    def _gather(code: str, index: Optional[str]) -> str:
        return f"{code}[{index}]" if index else code


def _kind_of_value(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, (str, bytes)):
        return "str"
    if isinstance(value, datetime.date):
        return "date"
    return "unknown"


def _encode_constant(value: Any, target_kind: str) -> Any:
    if target_kind == "str" and isinstance(value, str):
        return value.encode("utf-8")
    if target_kind == "date" and isinstance(value, datetime.date):
        return date_to_days(value)
    return value


class NativeBackend:
    """Lowers the pipeline IR into vectorized NumPy source."""

    name = "native"

    def compile(
        self,
        plan: Plan,
        sources: Sequence[Any],
        morsel_ordinal: Optional[int] = None,
        ir: Optional[QueryIR] = None,
    ) -> CompiledQuery:
        schemas = schema_for_sources(sources)
        with TRACER.span("codegen.generate", engine=self.name):
            with timed() as gen_time:
                if ir is None:
                    ir = lower_plan(plan, morsel_ordinal=morsel_ordinal)
                if ir.facts is None:
                    ir.facts = analyze_ir(ir)
                emitter = _VectorEmitter(schemas, exemplars=sources, ir=ir)
                source_code, namespace, scalar = emitter.emit_module()
        entry, compile_seconds = compile_source(source_code, namespace)
        return CompiledQuery(
            source_code=source_code,
            fn=entry,
            engine=self.name,
            codegen_seconds=gen_time.seconds,
            compile_seconds=compile_seconds,
            scalar=scalar,
        )


class _VectorEmitter:
    """Walks the IR pipelines in schedule order, one frame sequence each."""

    def __init__(
        self,
        schemas,
        exemplars: Sequence[Any] = (),
        ir: Optional[QueryIR] = None,
    ):
        self._schemas = schemas
        self._exemplars = exemplars
        self.ir = ir
        self._morsel_ordinal = ir.morsel_ordinal if ir is not None else None
        self.names = NameAllocator()
        self.writer = SourceWriter()
        self.namespace: Dict[str, Any] = {}
        self._param_names: Dict[str, str] = {}
        #: breaker bid → frames fed by its producer pipelines
        self._feeds: Dict[int, List[Frame]] = {}
        #: breaker bid → materialized output frame (memoized)
        self._breaker_frames: Dict[int, Frame] = {}
        #: frames of terminal (sink-less) pipelines, concatenated at the end
        self._terminal_frames: List[Frame] = []
        self._demand_cache: Dict[int, List[Optional[Set[str]]]] = {}
        facts = ir.facts if ir is not None else None
        self._elide_division_guards = (
            facts is not None
            and facts.division_sites > 0
            and facts.all_divisions_proven
            and elision_enabled()
        )

    # -- module assembly ----------------------------------------------------------

    def emit_module(self) -> Tuple[str, Dict[str, Any], bool]:
        body = SourceWriter()
        self.writer = body
        for pipeline in self.ir.pipelines:
            self._emit_pipeline(pipeline)
        if self.ir.scalar:
            body.line(f"return {self._scalar_result(self.ir.plan)}")
        else:
            frame = self._concat_frames(self._terminal_frames)
            body.line(
                f"return {self._emit_result(frame, _preserves_rows(self.ir.plan))}"
            )

        header = SourceWriter()
        header.line('"""Query code generated by repro.codegen.native_backend."""')
        header.line()
        with header.block("def execute(sources, _params):"):
            for param_name, code_name in self._param_names.items():
                header.line(f"{code_name} = _params[{param_name!r}]")
            for line in body.text().splitlines():
                header.line(line) if line.strip() else header.line()

        namespace = dict(self.namespace)
        namespace.update(
            _np=np,
            _group_aggregate=_vec.group_aggregate,
            _hash_join=_vec.hash_join_indexes,
            _left_join=_vec.left_join_indexes,
            _semi_mask=_vec.semi_join_mask,
            _gather_defaulted=_vec.gather_defaulted,
            _multiset_mask=_vec.multiset_mask,
            _sort_indexes=_vec.sort_indexes,
            _topn_indexes=_vec.topn_indexes,
            _distinct_indexes=_vec.distinct_indexes,
            _decode_rows=_vec.decode_rows,
            _decode_values=_vec.decode_values,
            _view_rows=_vec.view_rows,
            _coerce_str=_vec.coerce_str,
            _coerce_date=_vec.coerce_date,
            _EmptyAggregateError=_empty_aggregate_error,
            _days_to_date=days_to_date,
            _cancel_check=cancel_check,
        )
        return header.text(), namespace, self.ir.scalar

    def _render_param(self, name: str) -> str:
        code_name = self._param_names.get(name)
        if code_name is None:
            sanitized = "".join(c if c.isalnum() else "_" for c in name)
            code_name = f"_param_{sanitized}"
            self._param_names[name] = code_name
        return code_name

    def _printer(self, env: Dict[str, Tuple[Frame, Optional[str]]]) -> VectorPrinter:
        printer = VectorPrinter(env, self._render_param, self.namespace)
        printer.guard_divisions = not self._elide_division_guards
        return printer

    def _bind(self, obj: Any, hint: str) -> str:
        for name, existing in self.namespace.items():
            if existing is obj:
                return name
        name = f"_rt_{hint}_{len(self.namespace)}"
        self.namespace[name] = obj
        return name

    # -- frame helpers -------------------------------------------------------------

    def _materialize(
        self, frame: Frame, suffix: str, needed: Optional[Set[str]]
    ) -> Frame:
        """Apply an index/mask/slice to the needed columns, assigning vars."""
        columns = {}
        for name, col in frame.columns.items():
            if needed is not None and name not in needed:
                continue
            var = self.names.fresh("col")
            self.writer.line(f"{var} = {col.code}{suffix}")
            columns[name] = ColumnRef(var, col.kind)
        if columns:
            first = next(iter(columns.values()))
            length = f"{first.code}.shape[0]"
        else:
            length = frame.length_code  # caller must override when it shrinks
        return Frame(columns, length)

    def _vector(self, code: str) -> str:
        var = self.names.fresh("vec")
        self.writer.line(f"{var} = {code}")
        return var

    def _concat_frames(self, frames: List[Frame]) -> Frame:
        """Merge producer frames column-wise (the Concat path of the IR)."""
        if not frames:
            raise UnsupportedQueryError("pipeline produced no native frame")
        if len(frames) == 1:
            return frames[0]
        columns: Dict[str, ColumnRef] = {}
        for name, col in frames[0].columns.items():
            parts = ", ".join(f.column(name).code for f in frames)
            var = self.names.fresh("col")
            self.writer.line(f"{var} = _np.concatenate([{parts}])")
            columns[name] = ColumnRef(var, col.kind)
        if not columns:
            raise UnsupportedQueryError("concat of empty projections")
        first = next(iter(columns.values()))
        return Frame(columns, f"{first.code}.shape[0]")

    # -- demand propagation (shared required-fields pass over the IR DAG) -----------

    def _fields_of(
        self, lam: Lambda, param_index: int = 0
    ) -> Optional[Set[str]]:
        return lambda_fields(lam, param_index, self.ir.cse)

    def _demands(self, pipeline: Pipeline) -> List[Optional[Set[str]]]:
        """``demands[i]`` = fields needed of the frame entering operator *i*
        (``demands[0]`` is the demand on the driver frame, the last entry
        the demand on the pipeline's output)."""
        cached = self._demand_cache.get(pipeline.pid)
        if cached is not None:
            return cached
        need = self._sink_demand(pipeline)
        out: List[Optional[Set[str]]] = [need]
        for op in reversed(pipeline.operators):
            need = self._op_demand(op, need)
            out.append(need)
        out.reverse()
        self._demand_cache[pipeline.pid] = out
        return out

    def _op_demand(
        self, op: Plan, need: Optional[Set[str]]
    ) -> Optional[Set[str]]:
        if isinstance(op, Filter):
            return merge_fields(need, self._fields_of(op.predicate))
        if isinstance(op, Project):
            return self._fields_of(op.selector)
        if isinstance(op, Join):
            if op.kind in ("semi", "anti"):
                # existence probes pass the element through: keep the
                # downstream demand and add the probe key's fields
                return merge_fields(need, self._fields_of(op.left_key))
            usage = lambda_usage(op.result, self.ir.cse)
            left_fields = paths_to_fields(usage.get(op.result.params[0], set()))
            return merge_fields(left_fields, self._fields_of(op.left_key))
        if isinstance(op, SetOp):
            return None  # bag equality compares whole rows
        if isinstance(op, Limit):
            return need
        return None

    def _sink_demand(self, pipeline: Pipeline) -> Optional[Set[str]]:
        breaker = pipeline.sink
        if breaker is None:
            return None  # terminal results may take the whole-row path
        node = breaker.node
        if breaker.kind == "join-build":
            if node.kind in ("semi", "anti"):
                return self._fields_of(node.right_key)
            usage = lambda_usage(node.result, self.ir.cse)
            right_fields = paths_to_fields(
                usage.get(node.result.params[1], set())
            )
            return merge_fields(right_fields, self._fields_of(node.right_key))
        if breaker.kind == "setop-build":
            return None  # bag equality compares whole rows
        if breaker.kind == "group-aggregate":
            fields = self._fields_of(node.key)
            for spec in node.aggregates:
                if spec.selector is not None:
                    fields = merge_fields(fields, self._fields_of(spec.selector))
            return fields
        if breaker.kind == "scalar-aggregate":
            fields: Optional[Set[str]] = set()
            for spec in node.aggregates:
                if spec.selector is not None:
                    fields = merge_fields(fields, self._fields_of(spec.selector))
            return fields
        if breaker.kind in ("sort", "topn"):
            need = self._consumer_demand(breaker)
            for key in node.keys:
                need = merge_fields(need, self._fields_of(key))
            return need
        if breaker.kind == "distinct-materialize":
            return None  # distinct compares whole rows: every column participates
        raise UnsupportedQueryError(
            f"plan node {type(node).__name__} is outside the native "
            f"fragment (§5 restrictions); use the compiled engine"
        )

    def _consumer_demand(self, breaker: PipelineBreaker) -> Optional[Set[str]]:
        if breaker.consumer is None:
            return None
        return self._demands(self.ir.pipelines[breaker.consumer])[0]

    # -- pipeline emission ----------------------------------------------------------

    def _emit_pipeline(self, pipeline: Pipeline) -> None:
        if self._skip_pipeline(pipeline):
            return
        self.writer.line(f"# pipeline p{pipeline.pid}: {pipeline.describe()}")
        if pipeline.cancel_checkpoint:
            self.writer.line("_cancel_check(_params)")
        demands = self._demands(pipeline)
        start, frame = self._pipeline_head(pipeline, demands)
        for i in range(start, len(pipeline.operators)):
            frame = self._apply_op(pipeline.operators[i], frame, demands[i + 1])
        self._deliver(pipeline, frame)

    def _skip_pipeline(self, pipeline: Pipeline) -> bool:
        return False  # hook for the hybrid streaming feeds

    def _pipeline_head(
        self, pipeline: Pipeline, demands: List[Optional[Set[str]]]
    ) -> Tuple[int, Frame]:
        """Emit the driver (plus any fused scan-adjacent fast path)."""
        ops = pipeline.operators
        if (
            isinstance(pipeline.driver, Scan)
            and ops
            and isinstance(ops[0], Filter)
            and isinstance(ops[0].child, Scan)
            and not pipeline.morsel_driver
        ):
            # the index/cluster fast paths re-read the whole source, so they
            # are disabled on the morsel-sliced driver scan
            opportunity = self._index_opportunity(ops[0])
            if opportunity is not None:
                return 1, self._emit_index_filter(ops[0], opportunity, demands[1])
            clustered = self._cluster_opportunity(ops[0])
            if clustered is not None:
                return 1, self._emit_cluster_filter(ops[0], clustered, demands[1])
        if isinstance(pipeline.driver, Scan):
            return 0, self._scan_frame(pipeline.driver, pipeline, demands[0])
        return 0, self._breaker_output(pipeline.driver, demands[0])

    def _deliver(self, pipeline: Pipeline, frame: Frame) -> None:
        if pipeline.sink is None:
            self._terminal_frames.append(frame)
        else:
            self._feeds.setdefault(pipeline.sink.bid, []).append(frame)

    def _scan_frame(
        self, scan: Scan, pipeline: Pipeline, needed: Optional[Set[str]]
    ) -> Frame:
        schema = self._schemas[scan.ordinal]
        src = self.names.fresh("src")
        if pipeline.morsel_driver:
            lo = self._render_param(_MORSEL_START)
            hi = self._render_param(_MORSEL_STOP)
            self.writer.line(f"{src} = sources[{scan.ordinal}].data[{lo}:{hi}]")
        else:
            self.writer.line(f"{src} = sources[{scan.ordinal}].data")
        columns = {
            f.name: ColumnRef(f"{src}[{f.name!r}]", f.kind)
            for f in schema.fields
            if needed is None or f.name in needed
        }
        return Frame(columns, f"{src}.shape[0]")

    # -- pipelined (chain) operators -------------------------------------------------

    def _apply_op(
        self, op: Plan, frame: Frame, need: Optional[Set[str]]
    ) -> Frame:
        handler = getattr(self, f"_apply_{type(op).__name__}", None)
        if handler is None:
            raise UnsupportedQueryError(
                f"plan node {type(op).__name__} is outside the native "
                f"fragment (§5 restrictions); use the compiled engine"
            )
        return handler(op, frame, need)

    def _bind_cse(
        self, lam: Lambda, env: Dict[str, Tuple[Frame, Optional[str]]]
    ) -> Dict[str, Tuple[Frame, Optional[str]]]:
        """Emit this lambda's CSE bindings as vectors and extend the env."""
        for binding in self.ir.bindings_for(lam):
            printer = self._printer(env)
            var = self._vector(printer.emit(binding.expr))
            single = Frame(
                {Frame.SINGLE: ColumnRef(var, printer.kind_of(binding.expr))},
                f"{var}.shape[0]",
            )
            env = {**env, binding.name: (single, None)}
        return env

    def _apply_Filter(
        self, op: Filter, frame: Frame, need: Optional[Set[str]]
    ) -> Frame:
        (param,) = op.predicate.params
        env = self._bind_cse(op.predicate, {param: (frame, None)})
        printer = self._printer(env)
        mask = self._vector(printer.emit(op.predicate.body))
        out = self._materialize(frame, f"[{mask}]", need)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    def _apply_Project(
        self, op: Project, frame: Frame, need: Optional[Set[str]]
    ) -> Frame:
        (param,) = op.selector.params
        env = self._bind_cse(op.selector, {param: (frame, None)})
        printer = self._printer(env)
        return self._build_output_frame(
            op.selector.body, printer, frame.length_code, need
        )

    def _apply_Join(
        self, op: Join, frame: Frame, need: Optional[Set[str]]
    ) -> Frame:
        """Probe the hash table materialized by this join's build pipeline."""
        breaker = self.ir.breaker_for(op)
        right = self._join_build_frame(breaker)
        lk = self._vector(
            self._printer({op.left_key.params[0]: (frame, None)}).emit(
                op.left_key.body
            )
        )
        rk = self._vector(
            self._printer({op.right_key.params[0]: (right, None)}).emit(
                op.right_key.body
            )
        )
        if op.kind in ("semi", "anti"):
            # existence probe: a boolean mask over the probe frame
            mask = self.names.fresh("mask")
            code = f"_semi_mask({lk}, {rk})"
            if op.kind == "anti":
                code = f"(~{code})"
            self.writer.line(f"{mask} = {code}")
            out = self._materialize(frame, f"[{mask}]", need)
            if not out.columns:
                out.length_code = f"int({mask}.sum())"
            return out
        left_var, right_var = op.result.params
        usage = lambda_usage(op.result, self.ir.cse)
        right_needed = paths_to_fields(usage.get(right_var, set()))
        if paths_to_fields(usage.get(left_var, set())) is None or (
            right_needed is None
        ):
            raise UnsupportedQueryError(
                "native join results cannot embed whole input records "
                "(the §5 'no references' rule); project explicit fields"
            )
        if op.kind == "left":
            li = self.names.fresh("li")
            ri = self.names.fresh("ri")
            matched = self.names.fresh("matched")
            self.writer.line(
                f"{li}, {ri}, {matched} = _left_join({lk}, {rk})"
            )
            defaults = self._default_codes(op, right, right_needed)
            gathered: Dict[str, ColumnRef] = {}
            for name in sorted(right_needed):
                col = right.column(name)
                var = self.names.fresh("col")
                self.writer.line(
                    f"{var} = _gather_defaulted({col.code}, {ri}, {matched}, "
                    f"{defaults[name]}, {col.kind!r})"
                )
                gathered[name] = ColumnRef(var, col.kind)
            right_frame = Frame(gathered, f"{li}.shape[0]")
            printer = self._printer(
                {left_var: (frame, li), right_var: (right_frame, None)}
            )
            return self._build_output_frame(
                op.result.body, printer, f"{li}.shape[0]", need
            )
        li = self.names.fresh("li")
        ri = self.names.fresh("ri")
        self.writer.line(f"{li}, {ri} = _hash_join({lk}, {rk})")
        printer = self._printer({left_var: (frame, li), right_var: (right, ri)})
        return self._build_output_frame(
            op.result.body, printer, f"{li}.shape[0]", need
        )

    def _default_codes(
        self, op: Join, right: Frame, right_needed: Set[str]
    ) -> Dict[str, str]:
        """Scalar code for each needed right column's unmatched default."""
        printer = self._printer({})
        body = op.default
        if not isinstance(body, New):
            raise UnsupportedQueryError(
                "native left joins need a record-shaped default (a dict of "
                "field defaults) matching the build side's columns"
            )
        fields = dict(body.fields)
        codes: Dict[str, str] = {}
        for name in sorted(right_needed):
            expr = fields.get(name)
            if expr is None:
                raise UnsupportedQueryError(
                    f"native left join default does not provide field "
                    f"{name!r} used by the result selector"
                )
            codes[name] = printer.emit(expr)
        return codes

    def _apply_SetOp(
        self, op: SetOp, frame: Frame, need: Optional[Set[str]]
    ) -> Frame:
        """Mask the probe frame by bag membership in the build frame."""
        breaker = self.ir.breaker_for(op)
        right = self._join_build_frame(breaker)
        names = list(frame.columns)
        left_cols = ", ".join(frame.columns[n].code for n in names)
        right_cols = ", ".join(right.column(n).code for n in names)
        mask = self.names.fresh("mask")
        keep = repr(op.op == "intersect")
        self.writer.line(
            f"{mask} = _multiset_mask(({left_cols},), ({right_cols},), {keep})"
        )
        out = self._materialize(frame, f"[{mask}]", need)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    def _join_build_frame(self, breaker: PipelineBreaker) -> Frame:
        frame = self._breaker_frames.get(breaker.bid)
        if frame is None:
            frame = self._concat_frames(self._feeds.get(breaker.bid, []))
            self._breaker_frames[breaker.bid] = frame
        return frame

    def _apply_Limit(
        self, op: Limit, frame: Frame, need: Optional[Set[str]]
    ) -> Frame:
        printer = self._printer({})
        start = printer.emit(op.offset) if op.offset is not None else "0"
        if op.count is not None:
            stop = f"({start}) + ({printer.emit(op.count)})"
        else:
            stop = ""
        out = self._materialize(
            frame, f"[{start}:{stop}]" if stop else f"[{start}:]", need
        )
        if not out.columns:
            # e.g. take(n).count(): compute the surviving row count directly
            length = self.names.fresh("n")
            child_len = frame.length_code
            if op.count is not None:
                self.writer.line(
                    f"{length} = max(0, min(({child_len}) - ({start}), "
                    f"{printer.emit(op.count)}))"
                )
            else:
                self.writer.line(f"{length} = max(0, ({child_len}) - ({start}))")
            out.length_code = length
        return out

    def _build_output_frame(
        self,
        body: Expr,
        printer: VectorPrinter,
        length_code: str,
        needed: Optional[Set[str]],
    ) -> Frame:
        if isinstance(body, New):
            columns = {}
            for name, expr in body.fields:
                if needed is not None and name not in needed:
                    continue
                var = self._vector(printer.emit(expr))
                columns[name] = ColumnRef(var, printer.kind_of(expr))
            return Frame(columns, length_code)
        var = self._vector(printer.emit(body))
        return Frame(
            {Frame.SINGLE: ColumnRef(var, printer.kind_of(body))}, length_code
        )

    # -- index-accelerated point selection (§9 extension) -------------------------

    def _index_opportunity(self, plan: Filter):
        """Find an equality conjunct on an indexed column of the scan.

        Returns (field_name, value_expr, remaining_conjuncts) or None.
        The value side must be data-independent (Param/Constant) so the
        lookup can run once per execution.
        """
        scan: Scan = plan.child  # type: ignore[assignment]
        if scan.ordinal >= len(self._exemplars):
            return None
        exemplar = self._exemplars[scan.ordinal]
        get_index = getattr(exemplar, "get_index", None)
        if get_index is None:
            return None
        (var,) = plan.predicate.params
        parts = conjuncts(plan.predicate.body)
        for i, part in enumerate(parts):
            if not (isinstance(part, Binary) and part.op == "eq"):
                continue
            for member, value in ((part.left, part.right), (part.right, part.left)):
                is_column = (
                    isinstance(member, Member)
                    and member.target == Var(var)
                    and get_index(member.name) is not None
                )
                if is_column and isinstance(value, (Constant, Param)):
                    remaining = parts[:i] + parts[i + 1 :]
                    return member.name, value, remaining
        return None

    def _cluster_opportunity(self, plan: Filter):
        """Find a comparison on the scan's clustering column (§9).

        Returns (field, op, value_expr, remaining_conjuncts) or None; the
        comparison compiles to binary-search bounds on the physically
        ordered data instead of a full mask.
        """
        scan: Scan = plan.child  # type: ignore[assignment]
        if scan.ordinal >= len(self._exemplars):
            return None
        clustering = getattr(self._exemplars[scan.ordinal], "clustering", None)
        if clustering is None:
            return None
        comparisons = {"lt", "le", "gt", "ge", "eq"}
        flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}
        (var,) = plan.predicate.params
        parts = conjuncts(plan.predicate.body)
        for i, part in enumerate(parts):
            if not (isinstance(part, Binary) and part.op in comparisons):
                continue
            for member, value, op in (
                (part.left, part.right, part.op),
                (part.right, part.left, flipped[part.op]),
            ):
                is_clustered_column = (
                    isinstance(member, Member)
                    and member.target == Var(var)
                    and member.name == clustering
                )
                if is_clustered_column and isinstance(value, (Constant, Param)):
                    remaining = parts[:i] + parts[i + 1 :]
                    return clustering, op, value, remaining
        return None

    def _emit_cluster_filter(
        self, plan: Filter, opportunity, needed: Optional[Set[str]]
    ) -> Frame:
        field_name, op, value_expr, remaining = opportunity
        scan: Scan = plan.child  # type: ignore[assignment]
        schema = self._schemas[scan.ordinal]
        field_kind = schema[field_name].kind
        src = self.names.fresh("src")
        self.writer.line(f"{src} = sources[{scan.ordinal}].data")
        if isinstance(value_expr, Param):
            value_code = self._render_param(value_expr.name)
            if field_kind == "str":
                value_code = f"_coerce_str({value_code})"
            elif field_kind == "date":
                value_code = f"_coerce_date({value_code})"
        else:
            value_code = repr(_encode_constant(value_expr.value, field_kind))
        column = f"{src}[{field_name!r}]"
        start = self.names.fresh("lo")
        stop = self.names.fresh("hi")
        if op in ("lt", "le"):
            side = "left" if op == "lt" else "right"
            self.writer.line(f"{start} = 0")
            self.writer.line(
                f"{stop} = int(_np.searchsorted({column}, {value_code}, side={side!r}))"
            )
        elif op in ("gt", "ge"):
            side = "right" if op == "gt" else "left"
            self.writer.line(
                f"{start} = int(_np.searchsorted({column}, {value_code}, side={side!r}))"
            )
            self.writer.line(f"{stop} = {column}.shape[0]")
        else:  # eq: both bounds
            self.writer.line(
                f"{start} = int(_np.searchsorted({column}, {value_code}, side='left'))"
            )
            self.writer.line(
                f"{stop} = int(_np.searchsorted({column}, {value_code}, side='right'))"
            )
        child_needed = merge_fields(needed, self._fields_of(plan.predicate))
        columns = {
            f.name: ColumnRef(f"{src}[{f.name!r}][{start}:{stop}]", f.kind)
            for f in schema.fields
            if child_needed is None or f.name in child_needed
        }
        frame = Frame(columns, f"({stop} - {start})")
        if not remaining:
            out = self._materialize(frame, "", needed)
            if not out.columns:
                out.length_code = f"({stop} - {start})"
            return out
        (var,) = plan.predicate.params
        rest = reduce(lambda a, b: Binary("and", a, b), remaining)
        env = self._bind_cse(plan.predicate, {var: (frame, None)})
        mask = self._vector(self._printer(env).emit(rest))
        out = self._materialize(frame, f"[{mask}]", needed)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    def _emit_index_filter(
        self, plan: Filter, opportunity, needed: Optional[Set[str]]
    ) -> Frame:
        field_name, value_expr, remaining = opportunity
        scan: Scan = plan.child  # type: ignore[assignment]
        schema = self._schemas[scan.ordinal]
        src = self.names.fresh("src")
        self.writer.line(f"{src} = sources[{scan.ordinal}].data")
        if isinstance(value_expr, Param):
            value_code = self._render_param(value_expr.name)
        else:
            value_code = repr(value_expr.value)
        sel = self.names.fresh("sel")
        self.writer.line(
            f"{sel} = sources[{scan.ordinal}].get_index({field_name!r})"
            f".lookup({value_code})"
        )
        child_needed = merge_fields(needed, self._fields_of(plan.predicate))
        columns = {
            f.name: ColumnRef(f"{src}[{f.name!r}][{sel}]", f.kind)
            for f in schema.fields
            if child_needed is None or f.name in child_needed
        }
        frame = Frame(columns, f"{sel}.shape[0]")
        if not remaining:
            out = self._materialize(frame, "", needed)
            if not out.columns:
                out.length_code = f"{sel}.shape[0]"
            return out
        (var,) = plan.predicate.params
        rest = reduce(lambda a, b: Binary("and", a, b), remaining)
        env = self._bind_cse(plan.predicate, {var: (frame, None)})
        mask = self._vector(self._printer(env).emit(rest))
        out = self._materialize(frame, f"[{mask}]", needed)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    # -- breaker materialization ----------------------------------------------------

    def _breaker_output(
        self, breaker: PipelineBreaker, need: Optional[Set[str]]
    ) -> Frame:
        frame = self._breaker_frames.get(breaker.bid)
        if frame is None:
            handler = getattr(self, f"_out_{breaker.kind.replace('-', '_')}", None)
            if handler is None:
                raise UnsupportedQueryError(
                    f"plan node {type(breaker.node).__name__} is outside the "
                    f"native fragment (§5 restrictions); use the compiled engine"
                )
            fed = self._concat_frames(self._feeds.get(breaker.bid, []))
            frame = handler(breaker.node, fed, need)
            self._breaker_frames[breaker.bid] = frame
        return frame

    def _out_sort(
        self, node: Sort, fed: Frame, need: Optional[Set[str]]
    ) -> Frame:
        key_vars = []
        for key in node.keys:
            printer = self._printer({key.params[0]: (fed, None)})
            key_vars.append(self._vector(printer.emit(key.body)))
        order = self.names.fresh("order")
        dirs = repr(tuple(node.descending))
        self.writer.line(
            f"{order} = _sort_indexes(({', '.join(key_vars)},), {dirs})"
        )
        out = self._materialize(fed, f"[{order}]", need)
        if not out.columns:
            out.length_code = f"{order}.shape[0]"
        return out

    def _out_topn(
        self, node: TopN, fed: Frame, need: Optional[Set[str]]
    ) -> Frame:
        key_vars = []
        for key in node.keys:
            printer = self._printer({key.params[0]: (fed, None)})
            key_vars.append(self._vector(printer.emit(key.body)))
        count_code = self._printer({}).emit(node.count)
        idx = self.names.fresh("topidx")
        dirs = repr(tuple(node.descending))
        self.writer.line(
            f"{idx} = _topn_indexes(({', '.join(key_vars)},), {dirs}, {count_code})"
        )
        out = self._materialize(fed, f"[{idx}]", need)
        if not out.columns:
            out.length_code = f"{idx}.shape[0]"
        return out

    def _out_distinct_materialize(
        self, node: Distinct, fed: Frame, need: Optional[Set[str]]
    ) -> Frame:
        cols = ", ".join(col.code for col in fed.columns.values())
        idx = self.names.fresh("didx")
        self.writer.line(f"{idx} = _distinct_indexes(({cols},))")
        return self._materialize(fed, f"[{idx}]", need)

    def _out_group_aggregate(
        self, node: GroupAggregate, fed: Frame, need: Optional[Set[str]]
    ) -> Frame:
        (key_param,) = node.key.params
        key_printer = self._printer({key_param: (fed, None)})

        key_body = node.key.body
        if isinstance(key_body, New):
            key_fields = [(name, expr) for name, expr in key_body.fields]
        else:
            key_fields = [(Frame.SINGLE, key_body)]
        key_vars = []
        key_kinds = []
        for _, expr in key_fields:
            key_vars.append(self._vector(key_printer.emit(expr)))
            key_kinds.append(key_printer.kind_of(expr))

        agg_args = []
        agg_kinds = []
        for spec in node.aggregates:
            if spec.selector is None:
                agg_args.append(f"({spec.kind!r}, None)")
                agg_kinds.append("int")
            else:
                (p,) = spec.selector.params
                printer = self._printer({p: (fed, None)})
                values = self._vector(printer.emit(spec.selector.body))
                agg_args.append(f"({spec.kind!r}, {values})")
                value_kind = printer.kind_of(spec.selector.body)
                agg_kinds.append("float" if spec.kind == "avg" else value_kind)

        gkeys = self.names.fresh("gkeys")
        gaggs = self.names.fresh("gaggs")
        keys_tuple = ", ".join(key_vars)
        self.writer.line(
            f"{gkeys}, {gaggs} = _group_aggregate(({keys_tuple},), [{', '.join(agg_args)}])"
        )

        # expose group keys and aggregate slots as a frame for the output expr
        key_frame_cols = {
            name: ColumnRef(f"{gkeys}[{i}]", key_kinds[i])
            for i, (name, _) in enumerate(key_fields)
        }
        key_frame = Frame(key_frame_cols, f"{gkeys}[0].shape[0]")
        env: Dict[str, Tuple[Frame, Optional[str]]] = {"__key": (key_frame, None)}
        for i, kind in enumerate(agg_kinds):
            slot_frame = Frame(
                {Frame.SINGLE: ColumnRef(f"{gaggs}[{i}]", kind)},
                f"{gaggs}[{i}].shape[0]",
            )
            env[f"__agg{i}"] = (slot_frame, None)
        printer = self._printer(env)
        return self._build_output_frame(
            node.output, printer, f"{gkeys}[0].shape[0]", need
        )

    # -- scalar finalization ---------------------------------------------------------

    def _scalar_result(self, plan: ScalarAggregate) -> str:
        breaker = self.ir.breaker_for(plan)
        child = self._concat_frames(self._feeds.get(breaker.bid, []))
        slot_codes = []
        for spec in plan.aggregates:
            slot_codes.append(self._emit_scalar_agg(spec, child))
        if plan.output == Var("__agg0"):
            return slot_codes[0]
        raise UnsupportedQueryError(
            "composite scalar outputs are not supported natively"
        )

    def _emit_scalar_agg(self, spec: AggregateSpec, child: Frame) -> str:
        if spec.kind == "count":
            return f"int({child.length_code})"
        (p,) = spec.selector.params
        printer = self._printer({p: (child, None)})
        values = self._vector(printer.emit(spec.selector.body))
        kind = printer.kind_of(spec.selector.body)
        if spec.kind == "sum":
            zero = "0.0" if kind == "float" else "0"
            return f"({values}.sum().item() if {values}.shape[0] else {zero})"
        guard = self.names.fresh("n")
        self.writer.line(f"{guard} = {values}.shape[0]")
        with self.writer.block(f"if not {guard}:"):
            self.writer.line("raise _EmptyAggregateError()")
        if spec.kind == "avg":
            return f"({values}.mean().item())"
        fn = "min" if spec.kind == "min" else "max"
        result = f"{values}.{fn}()"
        if kind == "str":
            return f"{result}.decode('utf-8')"
        if kind == "date":
            return f"_days_to_date(int({result}))"
        return f"{result}.item()"

    # -- result delivery ---------------------------------------------------------

    def _emit_result(self, frame: Frame, whole_rows: bool = False) -> str:
        if frame.is_single:
            col = frame.column(Frame.SINGLE)
            return f"_decode_values({col.code}, {col.kind!r})"
        names = tuple(frame.columns)
        if whole_rows:
            # §5 pointer-return path: results are views into native memory,
            # decoded per accessed field — nothing is copied up front
            columns = ", ".join(
                f"{name!r}: {col.code}" for name, col in frame.columns.items()
            )
            kinds = ", ".join(
                f"{name!r}: {col.kind!r}" for name, col in frame.columns.items()
            )
            return f"_view_rows({{{columns}}}, {{{kinds}}}, {names!r})"
        record_type = make_record_type(names)
        type_name = self._bind(record_type, "rowtype")
        cols = ", ".join(col.code for col in frame.columns.values())
        kinds = ", ".join(repr(col.kind) for col in frame.columns.values())
        return f"_decode_rows(({cols},), ({kinds},), {type_name})"


def _preserves_rows(plan: Plan) -> bool:
    """True when every result element is a whole (unprojected) source row.

    Such results take the pointer-return path: queries that only filter,
    sort, limit or deduplicate hand back views into the arrays instead of
    materialized record copies.
    """
    row_preserving = (Scan, Filter, Sort, TopN, Limit, Distinct, Concat)
    if not isinstance(plan, row_preserving):
        return False
    return all(_preserves_rows(child) for child in plan_children(plan))


def _empty_aggregate_error():
    return ExecutionError("aggregate of an empty sequence has no value")
