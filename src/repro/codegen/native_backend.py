"""§5 — substituting native (vectorized NumPy) code for the host language.

When the source data lives in :class:`~repro.storage.struct_array.StructArray`
(fixed-layout arrays of structs, no references), the entire query can run
in the native runtime.  The generated source is straight-line NumPy: inline
vectorized expressions plus calls into the compiled kernels of
:mod:`repro.runtime.vectorized` — no per-element Python between kernel
calls, mirroring "all query processing is performed in C without any data
staging".

The paper restricts this engine (§5): only supported flat value types, no
calls to application methods, no references in intermediate results.  The
same restrictions hold here and are enforced at code-generation time with
:class:`~repro.errors.UnsupportedQueryError` — queries outside the fragment
must use the compiled or hybrid engines.

Codegen model: every plan node produces a *frame* — a set of named,
symbolic column expressions plus a row-count expression.  Index-producing
operators (filter, sort, join, ...) materialize exactly the columns their
ancestors need (computed by a required-fields pre-pass: the same analysis
that drives §6's implicit projection).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import UnsupportedQueryError
from ..observability.tracer import TRACER
from ..expressions.analysis import member_usage
from ..expressions.nodes import (
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
)
from ..expressions.evaluator import make_record_type
from ..plans.logical import (
    AggregateSpec,
    Concat,
    Distinct,
    Filter,
    GroupAggregate,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
)
from ..runtime import vectorized as _vec
from ..runtime.parallel import MORSEL_START as _MORSEL_START
from ..runtime.parallel import MORSEL_STOP as _MORSEL_STOP
from ..storage.schema import Schema, date_to_days
from ..storage.struct_array import StructArray
from .compiler import CompiledQuery, compile_source, timed
from .source import NameAllocator, SourceWriter

__all__ = ["NativeBackend", "VectorPrinter", "ColumnRef", "Frame", "schema_for_sources"]

_BOOL_OPS = {"eq", "ne", "lt", "le", "gt", "ge", "and", "or"}

#: kinds whose numpy arithmetic widens to int64
_INT_FAMILY = {"int", "int32", "bool"}
_NUMERIC_RESULT = {"add", "sub", "mul", "truediv", "floordiv", "mod", "pow"}


@dataclass
class ColumnRef:
    """One symbolic column: a NumPy source expression plus a value kind."""

    code: str
    kind: str  # int / int32 / float / bool / str / date / unknown


@dataclass
class Frame:
    """Symbolic result of a plan stage: named columns + a row count."""

    columns: Dict[str, ColumnRef]
    length_code: str

    SINGLE = "__value"

    @property
    def is_single(self) -> bool:
        return list(self.columns) == [Frame.SINGLE]

    def column(self, name: str) -> ColumnRef:
        try:
            return self.columns[name]
        except KeyError:
            raise UnsupportedQueryError(
                f"native frame has no column {name!r}; available: "
                f"{sorted(self.columns)}"
            ) from None


def schema_for_sources(sources: Sequence[Any]) -> List[Schema]:
    """Validate that every source is a StructArray and collect schemas."""
    schemas = []
    for i, source in enumerate(sources):
        if not isinstance(source, StructArray):
            raise UnsupportedQueryError(
                f"the native engine requires StructArray sources; source_{i} "
                f"is {type(source).__name__} (use the compiled or hybrid "
                f"engine for object collections)"
            )
        schemas.append(source.schema)
    return schemas


class VectorPrinter:
    """Renders scalar expressions as vectorized NumPy source.

    ``env`` maps lambda variable names to ``(frame, index_code)``: member
    access becomes a column expression, optionally gathered through an
    index array (used on join outputs).  Comparisons against ``str`` /
    ``date`` columns coerce the scalar operand to the native representation
    (bytes / days-since-epoch), at codegen time for constants and via
    ``_coerce_*`` helpers for parameters.
    """

    def __init__(
        self,
        env: Dict[str, Tuple[Frame, Optional[str]]],
        param_render,
        namespace: Dict[str, Any],
    ):
        self.env = env
        self._param_render = param_render
        self.namespace = namespace

    # -- kinds ------------------------------------------------------------------

    def kind_of(self, expr: Expr) -> str:
        if isinstance(expr, Member):
            frame, _ = self._resolve_var(expr)
            return frame.column(expr.name).kind
        if isinstance(expr, Var):
            frame, _ = self.env.get(expr.name, (None, None))
            if frame is not None and frame.is_single:
                return frame.column(Frame.SINGLE).kind
            return "unknown"
        if isinstance(expr, Constant):
            return _kind_of_value(expr.value)
        if isinstance(expr, Binary):
            if expr.op in _BOOL_OPS:
                return "bool"
            left, right = self.kind_of(expr.left), self.kind_of(expr.right)
            if expr.op == "truediv" or "float" in (left, right):
                return "float"
            if left in _INT_FAMILY and right in _INT_FAMILY:
                # int32 + int32 etc. widen to int64 under numpy arithmetic
                return "int"
            if left == "int" or right == "int":
                return "int"
            return "unknown"
        if isinstance(expr, Unary):
            return "bool" if expr.op == "not" else self.kind_of(expr.operand)
        if isinstance(expr, Conditional):
            then = self.kind_of(expr.then)
            return then if then != "unknown" else self.kind_of(expr.other)
        if isinstance(expr, Method):
            if expr.name in ("lower", "upper", "strip"):
                return "str"
            return "bool"
        if isinstance(expr, Call):
            return "float" if expr.name in ("float", "round") else "unknown"
        return "unknown"

    # -- emission -----------------------------------------------------------------

    def emit(self, expr: Expr, coerce_to: Optional[str] = None) -> str:
        code = self._emit(expr)
        if coerce_to in ("str", "date") and not self._already_native(expr):
            code = self._wrap_coercion(expr, code, coerce_to)
        return code

    @staticmethod
    def _already_native(expr: Expr) -> bool:
        """Columns and vectorized string-method results are already in the
        native representation (bytes / days); everything else — constants,
        parameters, computed scalars — needs coercion."""
        return isinstance(expr, (Member, Method))

    def _wrap_coercion(self, expr: Expr, code: str, target_kind: str) -> str:
        if isinstance(expr, Constant):
            return repr(_encode_constant(expr.value, target_kind))
        helper = "_coerce_str" if target_kind == "str" else "_coerce_date"
        return f"{helper}({code})"

    def _emit(self, expr: Expr) -> str:
        if isinstance(expr, Constant):
            value = expr.value
            if isinstance(value, (int, float, bool, str, bytes)):
                return repr(value)
            if isinstance(value, datetime.date):
                return repr(date_to_days(value))
            raise UnsupportedQueryError(
                f"constant of type {type(value).__name__} is not representable "
                f"in native code"
            )
        if isinstance(expr, Param):
            return self._param_render(expr.name)
        if isinstance(expr, Var):
            frame, index = self.env.get(expr.name, (None, None))
            if frame is None:
                raise UnsupportedQueryError(f"unbound variable {expr.name!r}")
            if frame.is_single:
                return self._gather(frame.column(Frame.SINGLE).code, index)
            raise UnsupportedQueryError(
                "native code cannot manipulate whole records as values; "
                "access their fields instead (the §5 'no references' rule)"
            )
        if isinstance(expr, Member):
            frame, index = self._resolve_var(expr)
            return self._gather(frame.column(expr.name).code, index)
        if isinstance(expr, Binary):
            return self._emit_binary(expr)
        if isinstance(expr, Unary):
            if expr.op == "not":
                return f"(~({self._emit(expr.operand)}))"
            if expr.op == "abs":
                return f"_np.abs({self._emit(expr.operand)})"
            token = "-" if expr.op == "neg" else "+"
            return f"({token}{self._emit(expr.operand)})"
        if isinstance(expr, Conditional):
            return (
                f"_np.where({self._emit(expr.cond)}, "
                f"{self._emit(expr.then)}, {self._emit(expr.other)})"
            )
        if isinstance(expr, Method):
            return self._emit_method(expr)
        if isinstance(expr, Call):
            if expr.name == "abs":
                return f"_np.abs({self._emit(expr.args[0])})"
            raise UnsupportedQueryError(
                f"function {expr.name!r} has no vectorized form"
            )
        if isinstance(expr, New):
            raise UnsupportedQueryError(
                "record construction must be handled by the frame builder, "
                "not the vector printer"
            )
        raise UnsupportedQueryError(
            f"cannot vectorize expression node {type(expr).__name__}"
        )

    def _emit_binary(self, expr: Binary) -> str:
        left_kind = self.kind_of(expr.left)
        right_kind = self.kind_of(expr.right)
        coerce = None
        if left_kind in ("str", "date") or right_kind in ("str", "date"):
            coerce = left_kind if left_kind in ("str", "date") else right_kind
        left = self.emit(expr.left, coerce_to=coerce)
        right = self.emit(expr.right, coerce_to=coerce)
        token = {
            "and": "&",
            "or": "|",
            "eq": "==",
            "ne": "!=",
            "lt": "<",
            "le": "<=",
            "gt": ">",
            "ge": ">=",
            "add": "+",
            "sub": "-",
            "mul": "*",
            "truediv": "/",
            "floordiv": "//",
            "mod": "%",
            "pow": "**",
        }[expr.op]
        return f"({left} {token} {right})"

    def _emit_method(self, expr: Method) -> str:
        target = self._emit(expr.target)
        target_kind = self.kind_of(expr.target)
        args = [
            self.emit(a, coerce_to="str" if target_kind == "str" else None)
            for a in expr.args
        ]
        if expr.name == "startswith":
            return f"_np.char.startswith({target}, {args[0]})"
        if expr.name == "endswith":
            return f"_np.char.endswith({target}, {args[0]})"
        if expr.name == "contains":
            return f"(_np.char.find({target}, {args[0]}) >= 0)"
        if expr.name in ("lower", "upper", "strip"):
            return f"_np.char.{expr.name}({target})"
        raise UnsupportedQueryError(f"method {expr.name!r} has no vectorized form")

    def _resolve_var(self, expr: Member) -> Tuple[Frame, Optional[str]]:
        target = expr.target
        if isinstance(target, Member):
            raise UnsupportedQueryError(
                f"nested member access {expr.name!r} is not representable in "
                f"the flat native layout (the §5 'no references' rule)"
            )
        if not isinstance(target, Var):
            raise UnsupportedQueryError(
                "member access on a computed value is not supported natively"
            )
        frame_index = self.env.get(target.name)
        if frame_index is None:
            raise UnsupportedQueryError(f"unbound variable {target.name!r}")
        return frame_index

    @staticmethod
    def _gather(code: str, index: Optional[str]) -> str:
        return f"{code}[{index}]" if index else code


def _kind_of_value(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, (str, bytes)):
        return "str"
    if isinstance(value, datetime.date):
        return "date"
    return "unknown"


def _encode_constant(value: Any, target_kind: str) -> Any:
    if target_kind == "str" and isinstance(value, str):
        return value.encode("utf-8")
    if target_kind == "date" and isinstance(value, datetime.date):
        return date_to_days(value)
    return value


class NativeBackend:
    """Compiles a logical plan into vectorized NumPy source."""

    name = "native"

    def compile(
        self,
        plan: Plan,
        sources: Sequence[Any],
        morsel_ordinal: Optional[int] = None,
    ) -> CompiledQuery:
        schemas = schema_for_sources(sources)
        with TRACER.span("codegen.generate", engine=self.name):
            with timed() as gen_time:
                emitter = _VectorEmitter(
                    schemas, exemplars=sources, morsel_ordinal=morsel_ordinal
                )
                source_code, namespace, scalar = emitter.emit_module(plan)
        entry, compile_seconds = compile_source(source_code, namespace)
        return CompiledQuery(
            source_code=source_code,
            fn=entry,
            engine=self.name,
            codegen_seconds=gen_time.seconds,
            compile_seconds=compile_seconds,
            scalar=scalar,
        )


class _VectorEmitter:
    """Walks the plan bottom-up, emitting one frame per stage."""

    def __init__(
        self,
        schemas: Sequence[Schema],
        exemplars: Sequence[Any] = (),
        morsel_ordinal: Optional[int] = None,
    ):
        self._schemas = schemas
        self._exemplars = exemplars
        self._morsel_ordinal = morsel_ordinal
        self.names = NameAllocator()
        self.writer = SourceWriter()
        self.namespace: Dict[str, Any] = {}
        self._param_names: Dict[str, str] = {}

    # -- module assembly ----------------------------------------------------------

    def emit_module(self, plan: Plan) -> Tuple[str, Dict[str, Any], bool]:
        scalar = isinstance(plan, ScalarAggregate)
        body = SourceWriter()
        self.writer = body
        if scalar:
            result_code = self._emit_scalar_root(plan)
            body.line(f"return {result_code}")
        else:
            frame = self.emit(plan, needed=None)
            body.line(
                f"return {self._emit_result(frame, _preserves_rows(plan))}"
            )

        header = SourceWriter()
        header.line('"""Query code generated by repro.codegen.native_backend."""')
        header.line()
        with header.block("def execute(sources, _params):"):
            for param_name, code_name in self._param_names.items():
                header.line(f"{code_name} = _params[{param_name!r}]")
            for line in body.text().splitlines():
                header.line(line) if line.strip() else header.line()

        namespace = dict(self.namespace)
        namespace.update(
            _np=np,
            _group_aggregate=_vec.group_aggregate,
            _hash_join=_vec.hash_join_indexes,
            _sort_indexes=_vec.sort_indexes,
            _topn_indexes=_vec.topn_indexes,
            _distinct_indexes=_vec.distinct_indexes,
            _decode_rows=_vec.decode_rows,
            _decode_values=_vec.decode_values,
            _view_rows=_vec.view_rows,
            _coerce_str=_vec.coerce_str,
            _coerce_date=_vec.coerce_date,
            _EmptyAggregateError=_empty_aggregate_error,
            _days_to_date=_days_to_date,
        )
        return header.text(), namespace, scalar

    def _render_param(self, name: str) -> str:
        code_name = self._param_names.get(name)
        if code_name is None:
            sanitized = "".join(c if c.isalnum() else "_" for c in name)
            code_name = f"_param_{sanitized}"
            self._param_names[name] = code_name
        return code_name

    def _printer(self, env: Dict[str, Tuple[Frame, Optional[str]]]) -> VectorPrinter:
        return VectorPrinter(env, self._render_param, self.namespace)

    def _bind(self, obj: Any, hint: str) -> str:
        for name, existing in self.namespace.items():
            if existing is obj:
                return name
        name = f"_rt_{hint}_{len(self.namespace)}"
        self.namespace[name] = obj
        return name

    # -- frame helpers -------------------------------------------------------------

    def _materialize(
        self, frame: Frame, suffix: str, needed: Optional[Set[str]]
    ) -> Frame:
        """Apply an index/mask/slice to the needed columns, assigning vars."""
        columns = {}
        for name, col in frame.columns.items():
            if needed is not None and name not in needed:
                continue
            var = self.names.fresh("col")
            self.writer.line(f"{var} = {col.code}{suffix}")
            columns[name] = ColumnRef(var, col.kind)
        if columns:
            first = next(iter(columns.values()))
            length = f"{first.code}.shape[0]"
        else:
            length = frame.length_code  # caller must override when it shrinks
        return Frame(columns, length)

    def _vector(self, code: str) -> str:
        var = self.names.fresh("vec")
        self.writer.line(f"{var} = {code}")
        return var

    # -- required-fields analysis ---------------------------------------------------

    @staticmethod
    def _usage_of(lam: Lambda, param_index: int = 0) -> Set[str]:
        usage = member_usage(lam.body)
        param = lam.params[param_index]
        fields = set()
        for path in usage.get(param, set()):
            if path == "":
                fields.add("")
            else:
                fields.add(path.split(".")[0])
        return fields

    # -- plan dispatch -------------------------------------------------------------

    def emit(self, plan: Plan, needed: Optional[Set[str]]) -> Frame:
        handler = getattr(self, f"_emit_{type(plan).__name__}", None)
        if handler is None:
            raise UnsupportedQueryError(
                f"plan node {type(plan).__name__} is outside the native "
                f"fragment (§5 restrictions); use the compiled engine"
            )
        return handler(plan, needed)

    def _emit_Scan(self, plan: Scan, needed: Optional[Set[str]]) -> Frame:
        schema = self._schemas[plan.ordinal]
        src = self.names.fresh("src")
        if plan.ordinal == self._morsel_ordinal:
            lo = self._render_param(_MORSEL_START)
            hi = self._render_param(_MORSEL_STOP)
            self.writer.line(
                f"{src} = sources[{plan.ordinal}].data[{lo}:{hi}]"
            )
        else:
            self.writer.line(f"{src} = sources[{plan.ordinal}].data")
        columns = {
            f.name: ColumnRef(f"{src}[{f.name!r}]", f.kind)
            for f in schema.fields
            if needed is None or f.name in needed
        }
        return Frame(columns, f"{src}.shape[0]")

    def _emit_Filter(self, plan: Filter, needed: Optional[Set[str]]) -> Frame:
        # the index/cluster fast paths re-read the whole source, so they
        # are disabled on the morsel-sliced driver scan
        if isinstance(plan.child, Scan) and plan.child.ordinal != self._morsel_ordinal:
            opportunity = self._index_opportunity(plan)
            if opportunity is not None:
                return self._emit_index_filter(plan, opportunity, needed)
            clustered = self._cluster_opportunity(plan)
            if clustered is not None:
                return self._emit_cluster_filter(plan, clustered, needed)
        child_needed = _union(needed, self._usage_of(plan.predicate))
        child = self.emit(plan.child, child_needed)
        (param,) = plan.predicate.params
        printer = self._printer({param: (child, None)})
        mask = self._vector(printer.emit(plan.predicate.body))
        out = self._materialize(child, f"[{mask}]", needed)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    # -- index-accelerated point selection (§9 extension) -------------------------

    def _index_opportunity(self, plan: Filter):
        """Find an equality conjunct on an indexed column of the scan.

        Returns (field_name, value_expr, remaining_conjuncts) or None.
        The value side must be data-independent (Param/Constant) so the
        lookup can run once per execution.
        """
        from ..expressions.analysis import conjuncts
        from ..expressions.nodes import Binary, Constant as ConstNode, Param as ParamNode

        scan: Scan = plan.child  # type: ignore[assignment]
        if scan.ordinal >= len(self._exemplars):
            return None
        exemplar = self._exemplars[scan.ordinal]
        get_index = getattr(exemplar, "get_index", None)
        if get_index is None:
            return None
        (var,) = plan.predicate.params
        parts = conjuncts(plan.predicate.body)
        for i, part in enumerate(parts):
            if not (isinstance(part, Binary) and part.op == "eq"):
                continue
            for member, value in ((part.left, part.right), (part.right, part.left)):
                is_column = (
                    isinstance(member, Member)
                    and member.target == Var(var)
                    and get_index(member.name) is not None
                )
                if is_column and isinstance(value, (ConstNode, ParamNode)):
                    remaining = parts[:i] + parts[i + 1 :]
                    return member.name, value, remaining
        return None

    def _cluster_opportunity(self, plan: Filter):
        """Find a comparison on the scan's clustering column (§9).

        Returns (field, op, value_expr, remaining_conjuncts) or None; the
        comparison compiles to binary-search bounds on the physically
        ordered data instead of a full mask.
        """
        from ..expressions.analysis import conjuncts
        from ..expressions.nodes import Binary, Constant as ConstNode, Param as ParamNode

        scan: Scan = plan.child  # type: ignore[assignment]
        if scan.ordinal >= len(self._exemplars):
            return None
        clustering = getattr(self._exemplars[scan.ordinal], "clustering", None)
        if clustering is None:
            return None
        comparisons = {"lt", "le", "gt", "ge", "eq"}
        flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}
        (var,) = plan.predicate.params
        parts = conjuncts(plan.predicate.body)
        for i, part in enumerate(parts):
            if not (isinstance(part, Binary) and part.op in comparisons):
                continue
            for member, value, op in (
                (part.left, part.right, part.op),
                (part.right, part.left, flipped[part.op]),
            ):
                is_clustered_column = (
                    isinstance(member, Member)
                    and member.target == Var(var)
                    and member.name == clustering
                )
                if is_clustered_column and isinstance(value, (ConstNode, ParamNode)):
                    remaining = parts[:i] + parts[i + 1 :]
                    return clustering, op, value, remaining
        return None

    def _emit_cluster_filter(
        self, plan: Filter, opportunity, needed: Optional[Set[str]]
    ) -> Frame:
        field_name, op, value_expr, remaining = opportunity
        scan: Scan = plan.child  # type: ignore[assignment]
        schema = self._schemas[scan.ordinal]
        field_kind = schema[field_name].kind
        src = self.names.fresh("src")
        self.writer.line(f"{src} = sources[{scan.ordinal}].data")
        if isinstance(value_expr, Param):
            value_code = self._render_param(value_expr.name)
            if field_kind == "str":
                value_code = f"_coerce_str({value_code})"
            elif field_kind == "date":
                value_code = f"_coerce_date({value_code})"
        else:
            value_code = repr(_encode_constant(value_expr.value, field_kind))
        column = f"{src}[{field_name!r}]"
        start = self.names.fresh("lo")
        stop = self.names.fresh("hi")
        if op in ("lt", "le"):
            side = "left" if op == "lt" else "right"
            self.writer.line(f"{start} = 0")
            self.writer.line(
                f"{stop} = int(_np.searchsorted({column}, {value_code}, side={side!r}))"
            )
        elif op in ("gt", "ge"):
            side = "right" if op == "gt" else "left"
            self.writer.line(
                f"{start} = int(_np.searchsorted({column}, {value_code}, side={side!r}))"
            )
            self.writer.line(f"{stop} = {column}.shape[0]")
        else:  # eq: both bounds
            self.writer.line(
                f"{start} = int(_np.searchsorted({column}, {value_code}, side='left'))"
            )
            self.writer.line(
                f"{stop} = int(_np.searchsorted({column}, {value_code}, side='right'))"
            )
        child_needed = _union(needed, self._usage_of(plan.predicate))
        columns = {
            f.name: ColumnRef(f"{src}[{f.name!r}][{start}:{stop}]", f.kind)
            for f in schema.fields
            if child_needed is None or f.name in child_needed
        }
        frame = Frame(columns, f"({stop} - {start})")
        if not remaining:
            out = self._materialize(frame, "", needed)
            if not out.columns:
                out.length_code = f"({stop} - {start})"
            return out
        from functools import reduce

        from ..expressions.nodes import Binary

        (var,) = plan.predicate.params
        rest = reduce(lambda a, b: Binary("and", a, b), remaining)
        printer = self._printer({var: (frame, None)})
        mask = self._vector(printer.emit(rest))
        out = self._materialize(frame, f"[{mask}]", needed)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    def _emit_index_filter(
        self, plan: Filter, opportunity, needed: Optional[Set[str]]
    ) -> Frame:
        field_name, value_expr, remaining = opportunity
        scan: Scan = plan.child  # type: ignore[assignment]
        schema = self._schemas[scan.ordinal]
        src = self.names.fresh("src")
        self.writer.line(f"{src} = sources[{scan.ordinal}].data")
        if isinstance(value_expr, Param):
            value_code = self._render_param(value_expr.name)
        else:
            value_code = repr(value_expr.value)
        sel = self.names.fresh("sel")
        self.writer.line(
            f"{sel} = sources[{scan.ordinal}].get_index({field_name!r})"
            f".lookup({value_code})"
        )
        child_needed = _union(needed, self._usage_of(plan.predicate))
        columns = {
            f.name: ColumnRef(f"{src}[{f.name!r}][{sel}]", f.kind)
            for f in schema.fields
            if child_needed is None or f.name in child_needed
        }
        frame = Frame(columns, f"{sel}.shape[0]")
        if not remaining:
            out = self._materialize(frame, "", needed)
            if not out.columns:
                out.length_code = f"{sel}.shape[0]"
            return out
        from functools import reduce

        from ..expressions.nodes import Binary

        (var,) = plan.predicate.params
        rest = reduce(lambda a, b: Binary("and", a, b), remaining)
        printer = self._printer({var: (frame, None)})
        mask = self._vector(printer.emit(rest))
        out = self._materialize(frame, f"[{mask}]", needed)
        if not out.columns:
            out.length_code = f"int({mask}.sum())"
        return out

    def _emit_Project(self, plan: Project, needed: Optional[Set[str]]) -> Frame:
        child_needed = _union(set(), self._usage_of(plan.selector))
        child = self.emit(plan.child, child_needed)
        (param,) = plan.selector.params
        printer = self._printer({param: (child, None)})
        return self._build_output_frame(
            plan.selector.body, printer, child.length_code, needed
        )

    def _build_output_frame(
        self,
        body: Expr,
        printer: VectorPrinter,
        length_code: str,
        needed: Optional[Set[str]],
    ) -> Frame:
        if isinstance(body, New):
            columns = {}
            for name, expr in body.fields:
                if needed is not None and name not in needed:
                    continue
                var = self._vector(printer.emit(expr))
                columns[name] = ColumnRef(var, printer.kind_of(expr))
            return Frame(columns, length_code)
        var = self._vector(printer.emit(body))
        return Frame(
            {Frame.SINGLE: ColumnRef(var, printer.kind_of(body))}, length_code
        )

    def _emit_Join(self, plan: Join, needed: Optional[Set[str]]) -> Frame:
        left_var, right_var = plan.result.params
        result_usage = member_usage(plan.result.body)
        left_needed = _union(
            {p.split(".")[0] for p in result_usage.get(left_var, set()) if p},
            self._usage_of(plan.left_key),
        )
        right_needed = _union(
            {p.split(".")[0] for p in result_usage.get(right_var, set()) if p},
            self._usage_of(plan.right_key),
        )
        if "" in result_usage.get(left_var, set()) or "" in result_usage.get(
            right_var, set()
        ):
            raise UnsupportedQueryError(
                "native join results cannot embed whole input records "
                "(the §5 'no references' rule); project explicit fields"
            )
        left = self.emit(plan.left, left_needed)
        right = self.emit(plan.right, right_needed)

        lk = self._vector(
            self._printer({plan.left_key.params[0]: (left, None)}).emit(
                plan.left_key.body
            )
        )
        rk = self._vector(
            self._printer({plan.right_key.params[0]: (right, None)}).emit(
                plan.right_key.body
            )
        )
        li = self.names.fresh("li")
        ri = self.names.fresh("ri")
        self.writer.line(f"{li}, {ri} = _hash_join({lk}, {rk})")
        printer = self._printer({left_var: (left, li), right_var: (right, ri)})
        return self._build_output_frame(
            plan.result.body, printer, f"{li}.shape[0]", needed
        )

    def _emit_GroupAggregate(
        self, plan: GroupAggregate, needed: Optional[Set[str]]
    ) -> Frame:
        usage = self._usage_of(plan.key)
        for spec in plan.aggregates:
            if spec.selector is not None:
                usage |= self._usage_of(spec.selector)
        child = self.emit(plan.child, _union(set(), usage))
        (key_param,) = plan.key.params
        key_printer = self._printer({key_param: (child, None)})

        key_body = plan.key.body
        if isinstance(key_body, New):
            key_fields = [(name, expr) for name, expr in key_body.fields]
        else:
            key_fields = [(Frame.SINGLE, key_body)]
        key_vars = []
        key_kinds = []
        for _, expr in key_fields:
            key_vars.append(self._vector(key_printer.emit(expr)))
            key_kinds.append(key_printer.kind_of(expr))

        agg_args = []
        agg_kinds = []
        for spec in plan.aggregates:
            if spec.selector is None:
                agg_args.append(f"({spec.kind!r}, None)")
                agg_kinds.append("int")
            else:
                (p,) = spec.selector.params
                printer = self._printer({p: (child, None)})
                values = self._vector(printer.emit(spec.selector.body))
                agg_args.append(f"({spec.kind!r}, {values})")
                value_kind = printer.kind_of(spec.selector.body)
                agg_kinds.append("float" if spec.kind == "avg" else value_kind)

        gkeys = self.names.fresh("gkeys")
        gaggs = self.names.fresh("gaggs")
        keys_tuple = ", ".join(key_vars)
        self.writer.line(
            f"{gkeys}, {gaggs} = _group_aggregate(({keys_tuple},), [{', '.join(agg_args)}])"
        )

        # expose group keys and aggregate slots as a frame for the output expr
        key_frame_cols = {
            name: ColumnRef(f"{gkeys}[{i}]", key_kinds[i])
            for i, (name, _) in enumerate(key_fields)
        }
        key_frame = Frame(key_frame_cols, f"{gkeys}[0].shape[0]")
        env: Dict[str, Tuple[Frame, Optional[str]]] = {"__key": (key_frame, None)}
        for i, kind in enumerate(agg_kinds):
            slot_frame = Frame(
                {Frame.SINGLE: ColumnRef(f"{gaggs}[{i}]", kind)},
                f"{gaggs}[{i}].shape[0]",
            )
            env[f"__agg{i}"] = (slot_frame, None)
        printer = self._printer(env)
        return self._build_output_frame(
            plan.output, printer, f"{gkeys}[0].shape[0]", needed
        )

    def _emit_scalar_root(self, plan: ScalarAggregate) -> str:
        usage: Set[str] = set()
        for spec in plan.aggregates:
            if spec.selector is not None:
                usage |= self._usage_of(spec.selector)
        needed = _union(set(), usage) if usage else set()
        child = self.emit(plan.child, needed)
        slot_codes = []
        for spec in plan.aggregates:
            slot_codes.append(self._emit_scalar_agg(spec, child))
        if plan.output == Var("__agg0"):
            return slot_codes[0]
        raise UnsupportedQueryError("composite scalar outputs are not supported natively")

    def _emit_scalar_agg(self, spec: AggregateSpec, child: Frame) -> str:
        if spec.kind == "count":
            return f"int({child.length_code})"
        (p,) = spec.selector.params
        printer = self._printer({p: (child, None)})
        values = self._vector(printer.emit(spec.selector.body))
        kind = printer.kind_of(spec.selector.body)
        if spec.kind == "sum":
            zero = "0.0" if kind == "float" else "0"
            return f"({values}.sum().item() if {values}.shape[0] else {zero})"
        guard = self.names.fresh("n")
        self.writer.line(f"{guard} = {values}.shape[0]")
        with self.writer.block(f"if not {guard}:"):
            self.writer.line("raise _EmptyAggregateError()")
        if spec.kind == "avg":
            return f"({values}.mean().item())"
        fn = "min" if spec.kind == "min" else "max"
        result = f"{values}.{fn}()"
        if kind == "str":
            return f"{result}.decode('utf-8')"
        if kind == "date":
            return f"_days_to_date(int({result}))"
        return f"{result}.item()"

    def _emit_Sort(self, plan: Sort, needed: Optional[Set[str]]) -> Frame:
        key_usage: Set[str] = set()
        for key in plan.keys:
            key_usage |= self._usage_of(key)
        child = self.emit(plan.child, _union(needed, key_usage))
        key_vars = []
        for key in plan.keys:
            printer = self._printer({key.params[0]: (child, None)})
            key_vars.append(self._vector(printer.emit(key.body)))
        order = self.names.fresh("order")
        dirs = repr(tuple(plan.descending))
        self.writer.line(
            f"{order} = _sort_indexes(({', '.join(key_vars)},), {dirs})"
        )
        out = self._materialize(child, f"[{order}]", needed)
        if not out.columns:
            out.length_code = f"{order}.shape[0]"
        return out

    def _emit_TopN(self, plan: TopN, needed: Optional[Set[str]]) -> Frame:
        key_usage: Set[str] = set()
        for key in plan.keys:
            key_usage |= self._usage_of(key)
        child = self.emit(plan.child, _union(needed, key_usage))
        key_vars = []
        for key in plan.keys:
            printer = self._printer({key.params[0]: (child, None)})
            key_vars.append(self._vector(printer.emit(key.body)))
        count_code = self._printer({}).emit(plan.count)
        idx = self.names.fresh("topidx")
        dirs = repr(tuple(plan.descending))
        self.writer.line(
            f"{idx} = _topn_indexes(({', '.join(key_vars)},), {dirs}, {count_code})"
        )
        out = self._materialize(child, f"[{idx}]", needed)
        if not out.columns:
            out.length_code = f"{idx}.shape[0]"
        return out

    def _emit_Limit(self, plan: Limit, needed: Optional[Set[str]]) -> Frame:
        child = self.emit(plan.child, needed)
        printer = self._printer({})
        start = printer.emit(plan.offset) if plan.offset is not None else "0"
        if plan.count is not None:
            stop = f"({start}) + ({printer.emit(plan.count)})"
        else:
            stop = ""
        out = self._materialize(child, f"[{start}:{stop}]" if stop else f"[{start}:]", needed)
        if not out.columns:
            # e.g. take(n).count(): compute the surviving row count directly
            length = self.names.fresh("n")
            child_len = child.length_code
            if plan.count is not None:
                self.writer.line(
                    f"{length} = max(0, min(({child_len}) - ({start}), "
                    f"{printer.emit(plan.count)}))"
                )
            else:
                self.writer.line(f"{length} = max(0, ({child_len}) - ({start}))")
            out.length_code = length
        return out

    def _emit_Distinct(self, plan: Distinct, needed: Optional[Set[str]]) -> Frame:
        # distinct compares whole rows: every column participates
        child = self.emit(plan.child, None)
        cols = ", ".join(col.code for col in child.columns.values())
        idx = self.names.fresh("didx")
        self.writer.line(f"{idx} = _distinct_indexes(({cols},))")
        return self._materialize(child, f"[{idx}]", needed)

    def _emit_Concat(self, plan: Concat, needed: Optional[Set[str]]) -> Frame:
        left = self.emit(plan.left, needed)
        right = self.emit(plan.right, needed)
        columns = {}
        for name, col in left.columns.items():
            other = right.column(name)
            var = self.names.fresh("col")
            self.writer.line(
                f"{var} = _np.concatenate([{col.code}, {other.code}])"
            )
            columns[name] = ColumnRef(var, col.kind)
        if not columns:
            raise UnsupportedQueryError("concat of empty projections")
        first = next(iter(columns.values()))
        return Frame(columns, f"{first.code}.shape[0]")

    # -- result delivery ---------------------------------------------------------

    def _emit_result(self, frame: Frame, whole_rows: bool = False) -> str:
        if frame.is_single:
            col = frame.column(Frame.SINGLE)
            return f"_decode_values({col.code}, {col.kind!r})"
        names = tuple(frame.columns)
        if whole_rows:
            # §5 pointer-return path: results are views into native memory,
            # decoded per accessed field — nothing is copied up front
            columns = ", ".join(
                f"{name!r}: {col.code}" for name, col in frame.columns.items()
            )
            kinds = ", ".join(
                f"{name!r}: {col.kind!r}" for name, col in frame.columns.items()
            )
            return f"_view_rows({{{columns}}}, {{{kinds}}}, {names!r})"
        record_type = make_record_type(names)
        type_name = self._bind(record_type, "rowtype")
        cols = ", ".join(col.code for col in frame.columns.values())
        kinds = ", ".join(repr(col.kind) for col in frame.columns.values())
        return f"_decode_rows(({cols},), ({kinds},), {type_name})"


def _preserves_rows(plan: Plan) -> bool:
    """True when every result element is a whole (unprojected) source row.

    Such results take the pointer-return path: queries that only filter,
    sort, limit or deduplicate hand back views into the arrays instead of
    materialized record copies.
    """
    from ..plans.logical import plan_children

    row_preserving = (Scan, Filter, Sort, TopN, Limit, Distinct, Concat)
    if not isinstance(plan, row_preserving):
        return False
    return all(_preserves_rows(child) for child in plan_children(plan))


def _union(needed: Optional[Set[str]], extra: Set[str]) -> Optional[Set[str]]:
    if "" in extra:
        return None  # whole-element use: keep every column
    if needed is None:
        return None
    return needed | extra


def _empty_aggregate_error():
    from ..errors import ExecutionError

    return ExecutionError("aggregate of an empty sequence has no value")


def _days_to_date(days: int):
    from ..storage.schema import days_to_date

    return days_to_date(days)
