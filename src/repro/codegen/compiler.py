"""In-memory compilation of generated source, with cost accounting.

The analogue of ``CSharpCodeProvider.CompileAssemblyFromSource()`` (§4.2):
generated Python source is compiled and executed in a fresh module
namespace "in-memory, without having to utilize any external processes".
Each :class:`CompiledQuery` records how long generation and compilation
took, feeding the paper's §7.4 cost report (source generation 30–60 ms, C#
compile ~75 ms, C compile ~720 ms — ours are measured by
``bench_compile_cost``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import CodegenError
from ..observability.metrics import METRICS
from ..observability.tracer import TRACER
from . import verifier as _verifier

__all__ = ["CompiledQuery", "compile_source", "timed"]

#: module-level switch for the AST verifier gate (see codegen.verifier);
#: benchmarks can flip this off, or set REPRO_VERIFY_GENERATED=0
VERIFY_GENERATED: Optional[bool] = None

#: name of the generated entry point, mirroring the paper's ``Execute``
ENTRY_POINT = "execute"


@dataclass
class CompiledQuery:
    """A ready-to-run compiled query: the unit stored in the query cache."""

    #: generated module source (kept for inspection / EXPLAIN CODE)
    source_code: str
    #: ``execute(sources, params)`` → iterator (or scalar for aggregates)
    fn: Callable[[List[Any], Dict[str, Any]], Any]
    #: which backend produced it
    engine: str
    #: plan text for explain output
    plan_text: str = ""
    codegen_seconds: float = 0.0
    compile_seconds: float = 0.0
    #: True when fn returns a scalar instead of an iterator
    scalar: bool = False
    #: static analysis of the originating query (set by the provider)
    analysis: Any = None
    #: engine capability report for the plan (set by the provider)
    capability: Any = None
    #: AST verifier report for the generated module (set by compile_source)
    verifier_report: Any = None

    def execute(self, sources: List[Any], params: Dict[str, Any]) -> Any:
        return self.fn(sources, params)


def compile_source(
    source: str,
    namespace: Dict[str, Any],
    entry_point: str = ENTRY_POINT,
    filename: str = "<repro-generated>",
    verify: Optional[bool] = None,
) -> tuple:
    """Compile *source* into *namespace* and return (entry_fn, seconds).

    The namespace already holds every runtime object the printer bound
    (record types, helper functions, numpy); it becomes the module globals
    of the generated function.

    Before executing, the module is checked by the AST verifier (see
    :mod:`repro.codegen.verifier`) — on by default, opt out per call with
    ``verify=False``, per process with ``compiler.VERIFY_GENERATED =
    False``, or via ``REPRO_VERIFY_GENERATED=0``.  Violations raise
    :class:`~repro.errors.GeneratedCodeViolation` (a ``CodegenError``)
    carrying the report and the offending source.
    """
    if verify is None:
        verify = (
            VERIFY_GENERATED
            if VERIFY_GENERATED is not None
            else _verifier.verification_enabled()
        )
    report = None
    if verify:
        # raises GeneratedCodeViolation with the report chained in
        report = _verifier.check_generated(source, namespace, entry_point)
        # stash for the provider: fn.__globals__ carries it out
        namespace["__verifier_report__"] = report
    started = time.perf_counter()
    with TRACER.span("codegen.compile_source", entry=entry_point):
        try:
            code = compile(source, filename, "exec")
            exec(code, namespace)  # noqa: S102 - executing our own generated code
        except SyntaxError as exc:
            raise CodegenError(
                f"generated source failed to compile: {exc}"
                f"\n--- verifier ---\n"
                f"{report.describe() if report is not None else 'verifier not run'}"
                f"\n--- source ---\n{source}"
            ) from exc
    elapsed = time.perf_counter() - started
    METRICS.counter("compile_source.count").add()
    METRICS.histogram("compile_source.seconds").observe(elapsed)
    entry = namespace.get(entry_point)
    if entry is None:
        raise CodegenError(
            f"generated source defines no {entry_point!r} entry point"
        )
    return entry, elapsed


@dataclass
class timed:
    """Tiny context manager for phase timing: ``with timed() as t: ...``."""

    seconds: float = field(default=0.0)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._start
