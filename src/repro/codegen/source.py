"""Source-construction utilities shared by all code generators.

The paper builds a *code tree* whose nodes are code fragments and whose
nesting mirrors loop bodies (Figure 4), then walks it emitting text.  A
:class:`SourceWriter` is the emission half: an indentation-aware line
buffer with block helpers, so backends can write structured code without
string surgery.  :class:`NameAllocator` hands out the ``elem_1`` /
``data_1`` style identifiers the paper's generated code uses.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

__all__ = ["SourceWriter", "NameAllocator"]

_INDENT = "    "


class SourceWriter:
    """An indentation-aware source text builder."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._depth = 0

    def line(self, text: str = "") -> None:
        """Emit one line at the current indentation (blank lines unindented)."""
        if text:
            self._lines.append(_INDENT * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, texts: Iterator[str] | List[str]) -> None:
        for text in texts:
            self.line(text)

    @contextmanager
    def block(self, header: str):
        """Emit ``header`` then indent the enclosed lines one level.

        >>> w = SourceWriter()
        >>> with w.block("for x in xs:"):
        ...     w.line("total += x")
        >>> print(w.text())
        for x in xs:
            total += x
        """
        self.line(header)
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1

    def text(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")


class NameAllocator:
    """Allocates unique, readable identifiers per prefix.

    Mirrors the paper's naming discipline: "we track the names of all
    variables that we assign to the inputs of the loop (using numerical
    identifiers)".
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        return f"{prefix}_{count}"
