"""Code generation backends: host-language (§4), native (§5), hybrid (§6)."""

from .compiler import CompiledQuery, compile_source
from .source import NameAllocator, SourceWriter

__all__ = ["CompiledQuery", "compile_source", "SourceWriter", "NameAllocator"]
