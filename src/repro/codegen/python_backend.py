"""§4 — generating pure host-language (Python) code.

One generated function evaluates the whole query.  The per-operator
enumerable pipeline of the baseline is replaced by *fused loops*: the
backend lowers the shared pipeline IR (:mod:`repro.codegen.ir`) and emits
exactly one ``for`` loop per :class:`~repro.codegen.ir.Pipeline` — the
paper's loop-segmentation rule ("each loop either produces the final
result of a query or an intermediate result of a blocking operation").
Pipelined operators (filter, project, join probes) nest inside their
pipeline's loop; every :class:`~repro.codegen.ir.PipelineBreaker`
materializes exactly once, as the sink of its producer pipelines and the
driver of its consumer.  All lambdas are inlined at their use sites, so
the generated code contains no interpretation, no dispatch, and no
per-element allocation beyond the result objects themselves.

Within a pipeline the emitter still uses the produce/consume scheme,
but driven by the IR's operator chain rather than by walking the plan:
``produce(i, consume)`` generates the loop nest for the chain prefix
``operators[:i]`` and invokes *consume* with the variable holding the
current element inside the innermost block.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis import analyze_ir, elision_enabled
from ..errors import CodegenError, ExecutionError
from ..observability.tracer import TRACER
from ..expressions.nodes import (
    AggCall,
    Expr,
    Lambda,
    Var,
    structural_key,
)
from ..expressions.printer import ScalarPrinter
from ..expressions.visitor import Transformer, collect, substitute
from ..plans.logical import (
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
)
from ..runtime.cancellation import cancel_check
from ..runtime.hashtable import Grouping
from ..runtime.parallel import MORSEL_START as _MORSEL_START
from ..runtime.parallel import MORSEL_STOP as _MORSEL_STOP
from ..runtime.parallel import morsel_slice
from ..runtime.sorting import CompositeKey, quicksort_indexes
from ..runtime.topn import TopNHeap
from .compiler import CompiledQuery, compile_source, timed
from .ir import Pipeline, PipelineBreaker, QueryIR, physical_slots
from .lower import lower_plan
from .source import NameAllocator, SourceWriter

__all__ = ["PythonBackend"]

Consume = Callable[[str], None]


def _scalar_guard(value: Any) -> Any:
    """Raise (like LINQ) when an empty input left a scalar aggregate unset."""
    if value is None:
        raise ExecutionError("aggregate of an empty sequence has no value")
    return value


class _CodeVarPrinter(ScalarPrinter):
    """Printer whose Vars are already code identifiers (post-substitution)."""

    def emit_var(self, expr: Var) -> str:
        return expr.name


class PythonBackend:
    """Lowers the pipeline IR into one fused-loop Python function."""

    name = "compiled"

    def compile(
        self,
        plan: Plan,
        sources: List[Any],
        morsel_ordinal: Optional[int] = None,
        ir: Optional[QueryIR] = None,
    ) -> CompiledQuery:
        with TRACER.span("codegen.generate", engine=self.name):
            with timed() as gen_time:
                if ir is None:
                    ir = lower_plan(plan, morsel_ordinal=morsel_ordinal)
                if ir.facts is None:
                    ir.facts = analyze_ir(ir)
                emitter = _Emitter(ir)
                source_code, namespace, scalar = emitter.emit_module()
        entry, compile_seconds = compile_source(source_code, namespace)
        return CompiledQuery(
            source_code=source_code,
            fn=entry,
            engine=self.name,
            codegen_seconds=gen_time.seconds,
            compile_seconds=compile_seconds,
            scalar=scalar,
        )


class _Emitter:
    def __init__(self, ir: QueryIR) -> None:
        self.ir = ir
        self.names = NameAllocator()
        self.writer = SourceWriter()
        self.printer = _CodeVarPrinter(param_render=self._render_param)
        self._param_names: Dict[str, str] = {}
        #: breaker bid → names of the variables materializing its state
        self._state: Dict[int, Dict[str, Any]] = {}
        # proof-driven guard elision (repro.analysis facts, env-gated)
        facts = ir.facts
        elide = facts is not None and elision_enabled()
        self._elide_division_guards = (
            elide
            and facts.division_sites > 0
            and facts.all_divisions_proven
        )
        self._elide_avg_guards = elide
        self.printer.guard_divisions = not self._elide_division_guards
        #: pid → reason for pipelines the analysis proved statically empty
        self._dead: Dict[int, str] = dict(facts.dead_pipelines) if elide else {}
        #: id(Filter op) for filters whose conjuncts are all provably true
        self._stripped_filters = set()
        if elide:
            for pid, index in facts.proven_filters:
                op = ir.pipelines[pid].operators[index]
                if isinstance(op, Filter):
                    self._stripped_filters.add(id(op))

    # -- entry point -------------------------------------------------------------

    def emit_module(self) -> Tuple[str, Dict[str, Any], bool]:
        body = SourceWriter()
        saved, self.writer = self.writer, body
        for pipeline in self.ir.pipelines:
            self._emit_pipeline(pipeline)
        if self.ir.scalar:
            self._emit_scalar_final(self.ir.plan)
        self.writer = saved

        header = SourceWriter()
        header.line('"""Query code generated by repro.codegen.python_backend."""')
        header.line()
        with header.block("def execute(sources, _params):"):
            for param_name, code_name in self._param_names.items():
                header.line(f"{code_name} = _params[{param_name!r}]")
            for line in body.text().splitlines():
                header.line(line) if line.strip() else header.line()
        source = header.text()

        namespace = dict(self.printer.namespace)
        namespace.update(
            _EMPTY=(),
            _scalar_guard=_scalar_guard,
            _islice=itertools.islice,
            _quicksort_indexes=quicksort_indexes,
            _CompositeKey=CompositeKey,
            _TopNHeap=TopNHeap,
            _Grouping=Grouping,
            _morsel_slice=morsel_slice,
            _cancel_check=cancel_check,
        )
        return source, namespace, self.ir.scalar

    # -- expression plumbing ---------------------------------------------------

    def _render_param(self, name: str) -> str:
        code_name = self._param_names.get(name)
        if code_name is None:
            sanitized = "".join(c if c.isalnum() else "_" for c in name)
            code_name = f"_param_{sanitized}"
            self._param_names[name] = code_name
        return code_name

    def _inline(self, lam: Lambda, *arg_vars: str) -> Expr:
        if len(lam.params) != len(arg_vars):
            raise CodegenError(
                f"lambda arity {len(lam.params)} != {len(arg_vars)} arguments"
            )
        return substitute(lam.body, {p: Var(v) for p, v in zip(lam.params, arg_vars)})

    def _code(self, lam: Lambda, *arg_vars: str) -> str:
        return self.printer.emit(self._inline(lam, *arg_vars))

    def _emit_bindings(self, lam: Optional[Lambda], *arg_vars: str) -> None:
        """Emit this lambda's CSE bindings (``__cseN = ...``) before its use."""
        for binding in self.ir.bindings_for(lam):
            bound = substitute(
                binding.expr,
                {p: Var(v) for p, v in zip(lam.params, arg_vars)},
            )
            self.writer.line(f"{binding.name} = {self.printer.emit(bound)}")

    # -- pipeline emission -------------------------------------------------------

    def _emit_pipeline(self, pipeline: Pipeline) -> None:
        self.writer.line(f"# pipeline p{pipeline.pid}: {pipeline.describe()}")
        dead_reason = self._dead.get(pipeline.pid)
        if dead_reason is not None:
            # statically empty: initialize the sink's state (consumers
            # reference it) but emit no scan loop at all
            self.writer.line(f"# statically empty ({dead_reason}); scan elided")
            if pipeline.sink is None:
                self.writer.line("yield from _EMPTY")
            else:
                self._sink_consume(pipeline)
            return
        if pipeline.cancel_checkpoint:
            self.writer.line("_cancel_check(_params)")
        final = self._sink_consume(pipeline)
        ops = pipeline.operators

        def produce(i: int, consume: Consume) -> None:
            if i == 0:
                self._emit_driver(pipeline, consume)
            else:
                self._emit_op(ops[i - 1], lambda c: produce(i - 1, c), consume)

        produce(len(ops), final)

    def _sink_consume(self, pipeline: Pipeline) -> Consume:
        """Prepare the sink's state (once) and return its per-element code."""
        if pipeline.sink is None:
            return lambda var: self.writer.line(f"yield {var}")
        breaker = pipeline.sink
        state = self._breaker_state(breaker)
        sink = getattr(self, f"_sink_{breaker.kind.replace('-', '_')}")
        return lambda var: sink(breaker.node, state, var)

    def _breaker_state(self, breaker: PipelineBreaker) -> Dict[str, Any]:
        state = self._state.get(breaker.bid)
        if state is None:
            prepare = getattr(self, f"_prepare_{breaker.kind.replace('-', '_')}")
            state = prepare(breaker.node)
            self._state[breaker.bid] = state
        return state

    def _emit_driver(self, pipeline: Pipeline, consume: Consume) -> None:
        driver = pipeline.driver
        if isinstance(driver, Scan):
            elem = self.names.fresh("elem")
            source = f"sources[{driver.ordinal}]"
            if pipeline.morsel_driver:
                lo = self._render_param(_MORSEL_START)
                hi = self._render_param(_MORSEL_STOP)
                source = f"_morsel_slice({source}, {lo}, {hi})"
            with self.writer.block(f"for {elem} in {source}:"):
                consume(elem)
            return
        state = self._state[driver.bid]
        drive = getattr(self, f"_drive_{driver.kind.replace('-', '_')}")
        drive(driver.node, state, consume)

    # -- pipelined (chain) operators ---------------------------------------------

    def _emit_op(
        self,
        op: Plan,
        produce_inner: Callable[[Consume], None],
        consume: Consume,
    ) -> None:
        handler = getattr(self, f"_op_{type(op).__name__}", None)
        if handler is None:
            raise CodegenError(
                f"no python codegen for pipelined operator {type(op).__name__}"
            )
        handler(op, produce_inner, consume)

    def _op_Filter(
        self, op: Filter, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        if id(op) in self._stripped_filters:
            # every conjunct is provably true: the test (and its CSE
            # bindings, used only by the test) disappears entirely
            produce_inner(consume)
            return

        def filtered(var: str) -> None:
            self._emit_bindings(op.predicate, var)
            with self.writer.block(f"if {self._code(op.predicate, var)}:"):
                consume(var)

        produce_inner(filtered)

    def _op_Project(
        self, op: Project, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        aggs = collect(op.selector.body, lambda n: isinstance(n, AggCall))
        if aggs:
            self._op_project_over_groups(op, produce_inner, consume)
            return

        def projected(var: str) -> None:
            self._emit_bindings(op.selector, var)
            out = self.names.fresh("val")
            self.writer.line(f"{out} = {self._code(op.selector, var)}")
            consume(out)

        produce_inner(projected)

    def _op_FlatMap(
        self, op: FlatMap, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        def flattened(var: str) -> None:
            inner = self.names.fresh("inner")
            with self.writer.block(
                f"for {inner} in {self._code(op.collection, var)}:"
            ):
                if op.result is not None:
                    out = self.names.fresh("val")
                    self.writer.line(f"{out} = {self._code(op.result, var, inner)}")
                    consume(out)
                else:
                    consume(inner)

        produce_inner(flattened)

    def _op_Join(
        self, op: Join, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        """Probe side only; the build side is this join's breaker pipeline."""
        breaker = self.ir.breaker_for(op)
        state = self._state[breaker.bid]
        table = state["table"]

        def probe(var: str) -> None:
            key = self._code(op.left_key, var)
            if op.kind in ("semi", "anti"):
                test = "in" if op.kind == "semi" else "not in"
                with self.writer.block(f"if {key} {test} {table}:"):
                    consume(var)
                return
            if op.kind == "left":
                matches = self.names.fresh("matches")
                match = self.names.fresh("match")
                self.writer.line(f"{matches} = {table}.get({key})")
                with self.writer.block(f"if {matches} is not None:"):
                    with self.writer.block(f"for {match} in {matches}:"):
                        out = self.names.fresh("val")
                        self.writer.line(
                            f"{out} = {self._code(op.result, var, match)}"
                        )
                        consume(out)
                with self.writer.block("else:"):
                    out = self.names.fresh("val")
                    self.writer.line(
                        f"{out} = {self._code(op.result, var, state['default'])}"
                    )
                    consume(out)
                return
            match = self.names.fresh("match")
            with self.writer.block(f"for {match} in {table}.get({key}, _EMPTY):"):
                out = self.names.fresh("val")
                self.writer.line(f"{out} = {self._code(op.result, var, match)}")
                consume(out)

        produce_inner(probe)

    def _op_SetOp(
        self, op: SetOp, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        """Probe-and-decrement against the right side's multiset counts."""
        breaker = self.ir.breaker_for(op)
        table = self._state[breaker.bid]["table"]

        def probe(var: str) -> None:
            remaining = self.names.fresh("rem")
            self.writer.line(f"{remaining} = {table}.get({var}, 0)")
            if op.op == "intersect":
                with self.writer.block(f"if {remaining} > 0:"):
                    self.writer.line(f"{table}[{var}] = {remaining} - 1")
                    consume(var)
            else:  # except: survivors are the copies beyond the right count
                with self.writer.block(f"if {remaining} > 0:"):
                    self.writer.line(f"{table}[{var}] = {remaining} - 1")
                with self.writer.block("else:"):
                    consume(var)

        produce_inner(probe)

    def _op_Limit(
        self, op: Limit, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        sub = self.names.fresh("_limited")
        with self.writer.block(f"def {sub}():"):
            produce_inner(lambda var: self.writer.line(f"yield {var}"))
        offset = self.printer.emit(op.offset) if op.offset is not None else "0"
        if op.count is not None:
            count = self.printer.emit(op.count)
            stop = f"({offset}) + ({count})"
        else:
            stop = "None"
        elem = self.names.fresh("lim_elem")
        with self.writer.block(f"for {elem} in _islice({sub}(), {offset}, {stop}):"):
            consume(elem)

    def _op_project_over_groups(
        self, op: Project, produce_inner: Callable[[Consume], None], consume: Consume
    ) -> None:
        """Unfused aggregation: one loop per aggregate over each group.

        Generated only when translation ran with ``fuse_aggregates=False``;
        this is the §2.3 ablation showing what per-aggregate passes cost
        even in compiled code.
        """

        def per_group(group_var: str) -> None:
            body = op.selector.body
            (selector_param,) = op.selector.params
            body = substitute(body, {selector_param: Var(group_var)})
            replacements: Dict[Any, str] = {}
            for agg in collect(body, lambda n: isinstance(n, AggCall)):
                agg_key = structural_key(agg)
                if agg_key in replacements:
                    continue
                slot = self.names.fresh("agg")
                self._emit_group_scan(agg, group_var, slot)
                replacements[agg_key] = slot
            rewritten = _ReplaceAggs(replacements).visit(body)
            out = self.names.fresh("val")
            self.writer.line(f"{out} = {self.printer.emit(rewritten)}")
            consume(out)

        produce_inner(per_group)

    def _emit_group_scan(self, agg: AggCall, group_var: str, slot: str) -> None:
        """One dedicated pass over the group for one aggregate."""
        elem = self.names.fresh("ge")
        if agg.kind == "count":
            self.writer.line(f"{slot} = 0")
            with self.writer.block(f"for {elem} in {group_var}:"):
                self.writer.line(f"{slot} += 1")
            return
        value = self._code(agg.arg, elem)
        if agg.kind == "sum":
            self.writer.line(f"{slot} = 0")
            with self.writer.block(f"for {elem} in {group_var}:"):
                self.writer.line(f"{slot} += {value}")
        elif agg.kind in ("min", "max"):
            self.writer.line(f"{slot} = None")
            op = "<" if agg.kind == "min" else ">"
            with self.writer.block(f"for {elem} in {group_var}:"):
                tmp = self.names.fresh("v")
                self.writer.line(f"{tmp} = {value}")
                with self.writer.block(f"if {slot} is None or {tmp} {op} {slot}:"):
                    self.writer.line(f"{slot} = {tmp}")
        elif agg.kind == "avg":
            total = self.names.fresh("total")
            count = self.names.fresh("cnt")
            self.writer.line(f"{total} = 0")
            self.writer.line(f"{count} = 0")
            with self.writer.block(f"for {elem} in {group_var}:"):
                self.writer.line(f"{total} += {value}")
                self.writer.line(f"{count} += 1")
            if self._elide_avg_guards:
                # materialized groups are never empty
                self.writer.line(f"{slot} = {total} / {count}")
            else:
                self.writer.line(
                    f"{slot} = {total} / {count} if {count} else None"
                )
        else:
            raise CodegenError(f"unknown aggregate kind {agg.kind!r}")

    # -- fused aggregation (slot planning shared via codegen.ir) -----------------

    def _emit_slot_updates(
        self, slots: List[Tuple[str, Optional[Lambda]]], acc: str, elem: str
    ) -> None:
        for i, (kind, selector) in enumerate(slots):
            if kind == "count":
                self.writer.line(f"{acc}[{i}] += 1")
            elif kind == "sum":
                self.writer.line(f"{acc}[{i}] += {self._code(selector, elem)}")
            elif kind in ("min", "max"):
                op = "<" if kind == "min" else ">"
                tmp = self.names.fresh("v")
                self.writer.line(f"{tmp} = {self._code(selector, elem)}")
                with self.writer.block(
                    f"if {acc}[{i}] is None or {tmp} {op} {acc}[{i}]:"
                ):
                    self.writer.line(f"{acc}[{i}] = {tmp}")
            else:
                raise CodegenError(f"unexpected physical slot kind {kind!r}")

    @staticmethod
    def _slot_inits(slots: List[Tuple[str, Optional[Lambda]]]) -> str:
        inits = ["0" if kind in ("sum", "count") else "None" for kind, _ in slots]
        return f"[{', '.join(inits)}]"

    @staticmethod
    def _extract_code(
        entry: Tuple[str, int, int], acc: str, elide_avg: bool = False
    ) -> str:
        tag, a, b = entry
        if tag == "avg":
            if elide_avg:
                # proven: a group accumulator exists only after its first
                # element, so the count slot is always >= 1
                return f"({acc}[{a}] / {acc}[{b}])"
            return f"({acc}[{a}] / {acc}[{b}] if {acc}[{b}] else None)"
        return f"{acc}[{a}]"

    def _render_agg_output(
        self,
        output: Expr,
        key_var: str,
        acc_var: str,
        extract: List[Tuple[str, int, int]],
        elide_avg: bool = False,
    ) -> str:
        mapping: Dict[str, Expr] = {"__key": Var(key_var)}
        rewritten = substitute(output, mapping)
        extract_code = self._extract_code

        class AggVarPrinter(_CodeVarPrinter):
            def emit_var(inner_self, expr: Var) -> str:  # noqa: N805
                if expr.name.startswith("__agg"):
                    index = int(expr.name[5:])
                    return extract_code(extract[index], acc_var, elide_avg)
                return super().emit_var(expr)

        printer = AggVarPrinter(param_render=self._render_param)
        printer.guard_divisions = self.printer.guard_divisions
        printer.namespace = self.printer.namespace
        printer._bound_counter = self.printer._bound_counter
        code = printer.emit(rewritten)
        self.printer._bound_counter = printer._bound_counter
        return code

    # -- breaker state: prepare / sink / drive -----------------------------------

    # join build: the breaker materializes the probe hash table

    def _prepare_join_build(self, node: Join) -> Dict[str, Any]:
        table = self.names.fresh("jtable")
        self.writer.line(f"{table} = {{}}")
        state: Dict[str, Any] = {"table": table}
        if node.kind == "left":
            # the default element is loop-invariant: bind it once
            default = self.names.fresh("jdefault")
            self.writer.line(f"{default} = {self.printer.emit(node.default)}")
            state["default"] = default
        return state

    def _sink_join_build(self, node: Join, state: Dict[str, Any], var: str) -> None:
        key = self._code(node.right_key, var)
        if node.kind in ("semi", "anti"):
            # existence probes only test membership; skip the bucket lists
            self.writer.line(f"{state['table']}[{key}] = True")
            return
        self.writer.line(f"{state['table']}.setdefault({key}, []).append({var})")

    # setop build: the breaker materializes the right side's multiset counts

    def _prepare_setop_build(self, node: SetOp) -> Dict[str, Any]:
        table = self.names.fresh("stable")
        self.writer.line(f"{table} = {{}}")
        return {"table": table}

    def _sink_setop_build(self, node: SetOp, state: Dict[str, Any], var: str) -> None:
        table = state["table"]
        self.writer.line(f"{table}[{var}] = {table}.get({var}, 0) + 1")

    # group materialization (GroupBy): key → list of elements

    def _prepare_group_materialize(self, node: GroupBy) -> Dict[str, Any]:
        groups = self.names.fresh("groups")
        self.writer.line(f"{groups} = {{}}")
        return {"groups": groups}

    def _sink_group_materialize(
        self, node: GroupBy, state: Dict[str, Any], var: str
    ) -> None:
        key = self._code(node.key, var)
        self.writer.line(f"{state['groups']}.setdefault({key}, []).append({var})")

    def _drive_group_materialize(
        self, node: GroupBy, state: Dict[str, Any], consume: Consume
    ) -> None:
        key_var = self.names.fresh("gkey")
        items_var = self.names.fresh("gitems")
        group_var = self.names.fresh("group")
        with self.writer.block(
            f"for {key_var}, {items_var} in {state['groups']}.items():"
        ):
            self.writer.line(f"{group_var} = _Grouping({key_var}, {items_var})")
            consume(group_var)

    # fused group aggregation: key → accumulator slot list

    def _prepare_group_aggregate(self, node: GroupAggregate) -> Dict[str, Any]:
        slots, extract = physical_slots(node.aggregates, share=node.share)
        groups = self.names.fresh("groups")
        self.writer.line(f"{groups} = {{}}")
        return {"groups": groups, "slots": slots, "extract": extract}

    def _sink_group_aggregate(
        self, node: GroupAggregate, state: Dict[str, Any], var: str
    ) -> None:
        key = self.names.fresh("k")
        acc = self.names.fresh("acc")
        groups = state["groups"]
        self.writer.line(f"{key} = {self._code(node.key, var)}")
        self.writer.line(f"{acc} = {groups}.get({key})")
        with self.writer.block(f"if {acc} is None:"):
            self.writer.line(
                f"{acc} = {groups}[{key}] = {self._slot_inits(state['slots'])}"
            )
        self._emit_slot_updates(state["slots"], acc, var)

    def _drive_group_aggregate(
        self, node: GroupAggregate, state: Dict[str, Any], consume: Consume
    ) -> None:
        key_var = self.names.fresh("gkey")
        acc_var = self.names.fresh("gacc")
        with self.writer.block(
            f"for {key_var}, {acc_var} in {state['groups']}.items():"
        ):
            out = self.names.fresh("val")
            output_code = self._render_agg_output(
                node.output,
                key_var,
                acc_var,
                state["extract"],
                elide_avg=self._elide_avg_guards,
            )
            self.writer.line(f"{out} = {output_code}")
            consume(out)

    # scalar aggregation: one accumulator, finalized after all pipelines

    def _prepare_scalar_aggregate(self, node: ScalarAggregate) -> Dict[str, Any]:
        slots, extract = physical_slots(node.aggregates)
        acc = self.names.fresh("acc")
        self.writer.line(f"{acc} = {self._slot_inits(slots)}")
        return {"acc": acc, "slots": slots, "extract": extract}

    def _sink_scalar_aggregate(
        self, node: ScalarAggregate, state: Dict[str, Any], var: str
    ) -> None:
        self._emit_slot_updates(state["slots"], state["acc"], var)

    def _emit_scalar_final(self, plan: Plan) -> None:
        breaker = self.ir.breaker_for(plan)
        state = self._breaker_state(breaker)
        acc = state["acc"]
        output_code = self._render_agg_output(
            plan.output, acc, acc, state["extract"]
        )
        # min/max/avg of an empty input have no value: surface it as an
        # error (matching LINQ), instead of silently yielding None
        guard = any(kind in ("min", "max") for kind, _ in state["slots"]) or any(
            spec.kind == "avg" for spec in plan.aggregates
        )
        if guard:
            self.writer.line(f"return _scalar_guard({output_code})")
        else:
            self.writer.line(f"return {output_code}")

    # -- ordering breakers --------------------------------------------------------

    def _prepare_sort(self, node: Sort) -> Dict[str, Any]:
        buf = self.names.fresh("buf")
        keys = self.names.fresh("keys")
        self.writer.line(f"{buf} = []")
        self.writer.line(f"{keys} = []")
        return {"buf": buf, "keys": keys}

    def _sink_sort(self, node: Sort, state: Dict[str, Any], var: str) -> None:
        buf, keys = state["buf"], state["keys"]
        self.writer.line(f"{buf}.append({var})")
        if len(node.keys) > 1:
            key_tuple = ", ".join(self._code(k, var) for k in node.keys)
            dirs = repr(tuple(node.descending))
            self.writer.line(
                f"{keys}.append((_CompositeKey(({key_tuple}), {dirs}), len({keys})))"
            )
        else:
            self.writer.line(f"{keys}.append({self._code(node.keys[0], var)})")

    def _drive_sort(
        self, node: Sort, state: Dict[str, Any], consume: Consume
    ) -> None:
        buf, keys = state["buf"], state["keys"]
        index = self.names.fresh("i")
        if len(node.keys) > 1:
            order = f"_quicksort_indexes({keys})"
        else:
            order = f"_quicksort_indexes({keys}, descending={node.descending[0]!r})"
        with self.writer.block(f"for {index} in {order}:"):
            elem = self.names.fresh("sorted_elem")
            self.writer.line(f"{elem} = {buf}[{index}]")
            consume(elem)

    def _prepare_topn(self, node: TopN) -> Dict[str, Any]:
        heap = self.names.fresh("heap")
        count_code = self.printer.emit(node.count)
        dirs = repr(tuple(node.descending))
        self.writer.line(f"{heap} = _TopNHeap({count_code}, {dirs})")
        return {"heap": heap}

    def _sink_topn(self, node: TopN, state: Dict[str, Any], var: str) -> None:
        key_tuple = ", ".join(self._code(k, var) for k in node.keys)
        trailing = "," if len(node.keys) == 1 else ""
        self.writer.line(f"{state['heap']}.offer(({key_tuple}{trailing}), {var})")

    def _drive_topn(
        self, node: TopN, state: Dict[str, Any], consume: Consume
    ) -> None:
        elem = self.names.fresh("top_elem")
        with self.writer.block(f"for {elem} in {state['heap']}.results():"):
            consume(elem)

    # -- dedup breaker ------------------------------------------------------------

    def _prepare_distinct_materialize(self, node: Distinct) -> Dict[str, Any]:
        seen = self.names.fresh("seen")
        out = self.names.fresh("dedup")
        self.writer.line(f"{seen} = set()")
        self.writer.line(f"{out} = []")
        return {"seen": seen, "out": out}

    def _sink_distinct_materialize(
        self, node: Distinct, state: Dict[str, Any], var: str
    ) -> None:
        with self.writer.block(f"if {var} not in {state['seen']}:"):
            self.writer.line(f"{state['seen']}.add({var})")
            self.writer.line(f"{state['out']}.append({var})")

    def _drive_distinct_materialize(
        self, node: Distinct, state: Dict[str, Any], consume: Consume
    ) -> None:
        elem = self.names.fresh("d_elem")
        with self.writer.block(f"for {elem} in {state['out']}:"):
            consume(elem)


class _ReplaceAggs(Transformer):
    """Swap AggCall nodes for the local variables their loops computed."""

    def __init__(self, replacements: Dict[Any, str]):
        self._replacements = replacements

    def visit_AggCall(self, expr: AggCall) -> Expr:
        return Var(self._replacements[structural_key(expr)])
