"""§6 — combining host-language and native code.

Arbitrary object collections cannot be handed to native code, so the
generated program has two halves:

* a **managed staging loop** (plain Python over the objects) that applies
  every scan-adjacent filter and copies exactly the fields the rest of the
  query needs (the implicit projection of §6.2) into native buffer pages;
* the **native half** — the same vectorized NumPy codegen as the §5
  backend — running over the staged arrays.

Both halves are derived from the shared pipeline IR
(:mod:`repro.codegen.ir`): every scan-driven pipeline's leading
scan-adjacent filters become the managed staging predicates, its staging
buffer layout comes from the IR's shared required-fields annotation
(``staging_fields``), and the rest of the pipeline chain lowers through
the same frame/kernel emitter as the native backend.  Each pipeline thus
has a *placement*: scan-driven pipelines start managed (staging) and
finish native; breaker-driven pipelines are fully native.

Materialization policy (paper §6.1):

* ``buffered=False`` → full materialization: every page is kept
  (``BufferList``) and the native half runs once, after staging.
* ``buffered=True`` → one reusable page (``StreamingBuffer``); the native
  half's *first blocking operator* consumes each page as it fills
  (streaming group/scalar aggregation, streaming join probe).  Plans whose
  first native operator cannot stream fall back to full materialization —
  exactly the paper's concession that "we would rather copy everything to
  unmanaged memory before processing it in C".

Result construction policy:

* ``minimal=False`` (**Max**) → everything needed to build results is
  copied; results are decoded from native arrays.
* ``minimal=True`` (**Min**) → only keys (plus row indexes) cross into
  native memory; the original objects are retained managed-side and
  results are built from them after the native kernel returns.  As in the
  paper, Min only exists for single-core-operator queries (sort / top-N /
  one join); anything else raises
  :class:`~repro.errors.UnsupportedQueryError`.
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis import analyze_ir, elision_enabled
from ..errors import ExecutionError, SchemaError, UnsupportedQueryError
from ..observability.tracer import TRACER
from ..expressions.nodes import Lambda, New, Var
from ..expressions.visitor import substitute
from ..plans.logical import (
    Filter,
    GroupAggregate,
    Join,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
    plan_children,
)
from ..runtime import vectorized as _vec
from ..runtime.cancellation import cancel_check
from ..runtime.parallel import MORSEL_START as _MORSEL_START
from ..runtime.parallel import MORSEL_STOP as _MORSEL_STOP
from ..runtime.parallel import morsel_slice
from ..runtime.streaming import StreamingGroupAggregator, StreamingJoinProbe
from ..storage.buffers import DEFAULT_PAGE_BYTES, BufferList, StreamingBuffer
from ..storage.schema import date_to_days, days_to_date
from .compiler import CompiledQuery, compile_source, timed
from .ir import Pipeline, PipelineBreaker, QueryIR, physical_slots
from .lower import lower_plan
from .mapping import StagedSource, staged_schema_for
from .native_backend import (
    ColumnRef,
    Frame,
    _VectorEmitter,
)
from .python_backend import _CodeVarPrinter
from .source import NameAllocator, SourceWriter

__all__ = ["HybridBackend"]


def _enc_str(value: str, width: int) -> bytes:
    """Encode one string for staging; overflow is an error, not truncation."""
    encoded = value.encode("utf-8")
    if len(encoded) > width:
        raise SchemaError(
            f"string {value!r} exceeds the staged width {width}; the sampled "
            f"schema underestimated this field"
        )
    return encoded


class HybridBackend:
    """Compiles a plan into staged-managed + vectorized-native code."""

    def __init__(
        self,
        buffered: bool = False,
        minimal: bool = False,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        self.buffered = buffered
        self.minimal = minimal
        self.page_bytes = page_bytes

    @property
    def name(self) -> str:
        parts = ["hybrid"]
        if self.minimal:
            parts.append("min")
        if self.buffered:
            parts.append("buffered")
        return "_".join(parts)

    def compile(
        self,
        plan: Plan,
        sources: Sequence[Any],
        morsel_ordinal: Optional[int] = None,
        ir: Optional[QueryIR] = None,
    ) -> CompiledQuery:
        with TRACER.span("codegen.generate", engine=self.name), timed() as gen_time:
            if self.minimal:
                if morsel_ordinal is not None:
                    raise UnsupportedQueryError(
                        "the minimal hybrid engines do not emit "
                        "morsel-parameterized kernels"
                    )
                emitter = _MinEmitter(self.page_bytes, self.buffered)
                source_code, namespace, scalar = emitter.emit_module(plan, sources)
            else:
                if ir is None:
                    ir = lower_plan(plan, morsel_ordinal=morsel_ordinal)
                if ir.facts is None:
                    ir.facts = analyze_ir(ir)
                staged, peeled = _staging_from_ir(ir)
                for ordinal, spec in staged.items():
                    if spec.fields:  # field-less sources only stage a count
                        spec.schema = staged_schema_for(sources[ordinal], spec)
                emitter = _HybridEmitter(
                    staged, peeled, self.buffered, self.page_bytes, ir
                )
                source_code, namespace, scalar = emitter.emit_module()
        entry, compile_seconds = compile_source(source_code, namespace)
        return CompiledQuery(
            source_code=source_code,
            fn=entry,
            engine=self.name,
            codegen_seconds=gen_time.seconds,
            compile_seconds=compile_seconds,
            scalar=scalar,
        )


def _staging_from_ir(
    ir: QueryIR,
) -> Tuple[Dict[int, StagedSource], Dict[int, int]]:
    """Derive the staging specs from the shared IR annotations.

    A scan-driven pipeline's leading scan-adjacent filters run managed-side
    (they are *peeled* out of the native chain), and the staging buffer
    copies exactly the IR's ``staging_fields`` for that source — the
    implicit projection of §6.2, computed once by the shared
    required-fields pass.  Returns the specs plus pid → peeled-op count.
    """
    staged: Dict[int, StagedSource] = {}
    peeled: Dict[int, int] = {}
    for pipeline in ir.pipelines:
        if not isinstance(pipeline.driver, Scan):
            continue
        ops = pipeline.operators
        prev: Plan = pipeline.driver
        predicates: List[Lambda] = []
        n = 0
        while n < len(ops) and isinstance(ops[n], Filter) and ops[n].child is prev:
            predicates.append(ops[n].predicate)
            prev = ops[n]
            n += 1
        peeled[pipeline.pid] = n
        ordinal = pipeline.driver.ordinal
        fields = ir.staging_fields.get(ordinal, set())
        if fields is None:
            raise UnsupportedQueryError(
                f"the query uses whole elements of source_{ordinal} beyond "
                f"the staging boundary; the hybrid engine requires flat "
                f"field access (use the compiled engine)"
            )
        if ordinal not in staged:
            staged[ordinal] = StagedSource(
                ordinal=ordinal,
                predicates=tuple(predicates),
                fields=tuple(sorted(fields)),
            )
    return staged, peeled


# ---------------------------------------------------------------------------
# Max variants (full + buffered)
# ---------------------------------------------------------------------------


class _HybridEmitter(_VectorEmitter):
    """Vector emitter whose scan-driven pipelines start managed.

    Scans read staged arrays instead of sources; the peeled leading
    filters of each pipeline become the staging loop's predicate.
    """

    def __init__(
        self,
        staged: Dict[int, StagedSource],
        peeled: Dict[int, int],
        buffered: bool,
        page_bytes: int,
        ir: QueryIR,
    ):
        schemas = {ordinal: spec.schema for ordinal, spec in staged.items()}
        super().__init__(schemas, exemplars=(), ir=ir)
        # group counts are >= 1 by construction, so the facts pass always
        # licenses dropping the divide-clamp in streamed group averages
        self._elide_avg_guards = ir.facts is not None and elision_enabled()
        self._staged = staged
        self._peeled = peeled
        self._buffered = buffered
        self._page_bytes = page_bytes
        #: ordinal → ("array", var) or ("count", var)
        self._bindings: Dict[int, Tuple[str, str]] = {}
        self._stream_node: Optional[Plan] = None
        self._stream_ordinal: Optional[int] = None

    # -- module assembly --------------------------------------------------------

    def emit_module(self) -> Tuple[str, Dict[str, Any], bool]:
        if self._buffered:
            self._stream_node, self._stream_ordinal = _find_stream_target(
                self.ir.plan, self._staged
            )

        body = SourceWriter()
        self.writer = body
        for ordinal, spec in sorted(self._staged.items()):
            if ordinal == self._stream_ordinal:
                continue  # staged page-by-page inside the stream operator
            self._emit_full_staging(spec)
        for pipeline in self.ir.pipelines:
            self._emit_pipeline(pipeline)
        if self.ir.scalar:
            body.line(f"return {self._scalar_result(self.ir.plan)}")
        else:
            frame = self._concat_frames(self._terminal_frames)
            body.line(f"return {self._emit_result(frame)}")

        header = SourceWriter()
        header.line('"""Query code generated by repro.codegen.hybrid_backend."""')
        header.line()
        with header.block("def execute(sources, _params):"):
            for param_name, code_name in self._param_names.items():
                header.line(f"{code_name} = _params[{param_name!r}]")
            for line in body.text().splitlines():
                header.line(line) if line.strip() else header.line()

        namespace = self._base_namespace()
        return header.text(), namespace, self.ir.scalar

    def _base_namespace(self) -> Dict[str, Any]:
        namespace = dict(self.namespace)
        namespace.update(
            _np=np,
            _group_aggregate=_vec.group_aggregate,
            _hash_join=_vec.hash_join_indexes,
            _left_join=_vec.left_join_indexes,
            _semi_mask=_vec.semi_join_mask,
            _gather_defaulted=_vec.gather_defaulted,
            _multiset_mask=_vec.multiset_mask,
            _sort_indexes=_vec.sort_indexes,
            _topn_indexes=_vec.topn_indexes,
            _distinct_indexes=_vec.distinct_indexes,
            _decode_rows=_vec.decode_rows,
            _decode_values=_vec.decode_values,
            _coerce_str=_vec.coerce_str,
            _coerce_date=_vec.coerce_date,
            _EmptyAggregateError=_hybrid_empty_error,
            _days_to_date=days_to_date,
            _BufferList=BufferList,
            _StreamingBuffer=StreamingBuffer,
            _StreamingGroupAggregator=StreamingGroupAggregator,
            _StreamingJoinProbe=StreamingJoinProbe,
            _enc_str=_enc_str,
            _to_days=date_to_days,
            _morsel_slice=morsel_slice,
            _cancel_check=cancel_check,
        )
        return namespace

    def _staging_source(self, ordinal: int) -> str:
        """The managed iterable staging reads: morsel-sliced on the driver."""
        source = f"sources[{ordinal}]"
        if ordinal == self._morsel_ordinal:
            lo = self._render_param(_MORSEL_START)
            hi = self._render_param(_MORSEL_STOP)
            source = f"_morsel_slice({source}, {lo}, {hi})"
        return source

    # -- staging ---------------------------------------------------------------

    def _python_printer(self) -> _CodeVarPrinter:
        printer = _CodeVarPrinter(param_render=self._render_param)
        printer.namespace = self.namespace
        # staging predicates share the query's division-proof verdict
        printer.guard_divisions = not self._elide_division_guards
        return printer

    def _staging_predicate(
        self, spec: StagedSource, elem: str
    ) -> Optional[Tuple[List[str], str]]:
        """CSE binding lines + combined predicate expression, or None.

        The staged predicates inherit the IR's per-pipeline CSE pass: each
        hoisted subexpression is assigned once per element, before the
        combined test.
        """
        if not spec.predicates:
            return None
        printer = self._python_printer()
        lines: List[str] = []
        parts: List[str] = []
        for predicate in spec.predicates:
            mapping = {predicate.params[0]: Var(elem)}
            for binding in self.ir.bindings_for(predicate):
                code = printer.emit(substitute(binding.expr, mapping))
                lines.append(f"{binding.name} = {code}")
            parts.append(printer.emit(substitute(predicate.body, mapping)))
        return lines, " and ".join(parts)

    def _encoded_fields(self, spec: StagedSource, elem: str) -> str:
        parts = []
        for field in spec.schema.fields:
            access = f"{elem}.{field.name}"
            if field.kind == "str":
                parts.append(f"_enc_str({access}, {field.size})")
            elif field.kind == "date":
                parts.append(f"_to_days({access})")
            else:
                parts.append(access)
        trailing = "," if len(parts) == 1 else ""
        return f"({', '.join(parts)}{trailing})"

    def _emit_full_staging(self, spec: StagedSource) -> None:
        """Stage one source completely into a page list (§6.1.1)."""
        # staging precedes every pipeline (and can dominate the runtime),
        # so it gets its own cancellation checkpoint
        self.writer.line("_cancel_check(_params)")
        elem = self.names.fresh("elem")
        predicate = self._staging_predicate(spec, elem)
        if not spec.fields:
            # nothing to copy: only the qualifying-row count survives
            counter = self.names.fresh("count")
            self.writer.line(f"{counter} = 0")
            with self.writer.block(
                f"for {elem} in {self._staging_source(spec.ordinal)}:"
            ):
                if predicate:
                    lines, test = predicate
                    for line in lines:
                        self.writer.line(line)
                    with self.writer.block(f"if {test}:"):
                        self.writer.line(f"{counter} += 1")
                else:
                    self.writer.line(f"{counter} += 1")
            self._bindings[spec.ordinal] = ("count", counter)
            return
        dtype_var = self._bind(spec.schema.numpy_dtype(), "dtype")
        rows = self.names.fresh("rows")
        append = self.names.fresh("append")
        self.writer.line(f"{rows} = []")
        self.writer.line(f"{append} = {rows}.append")
        with self.writer.block(f"for {elem} in {self._staging_source(spec.ordinal)}:"):
            stage = f"{append}({self._encoded_fields(spec, elem)})"
            if predicate:
                lines, test = predicate
                for line in lines:
                    self.writer.line(line)
                with self.writer.block(f"if {test}:"):
                    self.writer.line(stage)
            else:
                self.writer.line(stage)
        staged_var = self.names.fresh("staged")
        # the bulk conversion is the copy into native memory (§6.1.1)
        self.writer.line(
            f"{staged_var} = _np.array({rows}, dtype={dtype_var}) "
            f"if {rows} else _np.zeros(0, dtype={dtype_var})"
        )
        self._bindings[spec.ordinal] = ("array", staged_var)

    def _emit_streaming_staging(self, spec: StagedSource, consumer: str) -> None:
        """Stage one source page-by-page through *consumer* (§6.1.2).

        One page worth of rows accumulates managed-side; filling it
        triggers the bulk copy to native memory plus the consumer call, so
        the staging footprint stays fixed at one page.
        """
        dtype_var = self._bind(spec.schema.numpy_dtype(), "dtype")
        capacity = max(1, self._page_bytes // spec.schema.struct_size())
        page = self.names.fresh("page")
        append = self.names.fresh("append")
        self.writer.line(f"{page} = []")
        self.writer.line(f"{append} = {page}.append")
        elem = self.names.fresh("elem")
        predicate = self._staging_predicate(spec, elem)
        with self.writer.block(f"for {elem} in {self._staging_source(spec.ordinal)}:"):
            def emit_stage() -> None:
                self.writer.line(f"{append}({self._encoded_fields(spec, elem)})")
                with self.writer.block(f"if len({page}) >= {capacity}:"):
                    self.writer.line(
                        f"{consumer}(_np.array({page}, dtype={dtype_var}))"
                    )
                    self.writer.line(f"del {page}[:]")

            if predicate:
                lines, test = predicate
                for line in lines:
                    self.writer.line(line)
                with self.writer.block(f"if {test}:"):
                    emit_stage()
            else:
                emit_stage()
        with self.writer.block(f"if {page}:"):
            self.writer.line(f"{consumer}(_np.array({page}, dtype={dtype_var}))")

    # -- pipeline head: placement of the managed→native boundary --------------------

    def _skip_pipeline(self, pipeline: Pipeline) -> bool:
        """The stream target's feed pipeline is emitted *inside* the
        streaming operator (page-by-page), not as a separate loop."""
        return (
            self._stream_node is not None
            and pipeline.sink is not None
            and pipeline.sink.node is self._stream_node
            and isinstance(pipeline.driver, Scan)
            and pipeline.driver.ordinal == self._stream_ordinal
        )

    def _pipeline_head(
        self, pipeline: Pipeline, demands: List[Optional[Set[str]]]
    ) -> Tuple[int, Frame]:
        if not isinstance(pipeline.driver, Scan):
            return super()._pipeline_head(pipeline, demands)
        start = self._peeled.get(pipeline.pid, 0)
        ops = pipeline.operators
        if (
            self._stream_node is not None
            and start < len(ops)
            and ops[start] is self._stream_node
        ):
            # streaming join probe: staging pages feed the probe directly
            return start + 1, self._emit_stream_join(ops[start], demands[start + 1])
        return start, self._scan_frame(pipeline.driver, pipeline, demands[start])

    def _scan_frame(
        self, scan: Scan, pipeline: Pipeline, needed: Optional[Set[str]]
    ) -> Frame:
        kind, var = self._bindings[scan.ordinal]
        if kind == "count":
            return Frame({}, var)
        schema = self._staged[scan.ordinal].schema
        columns = {
            f.name: ColumnRef(f"{var}[{f.name!r}]", f.kind)
            for f in schema.fields
            if needed is None or f.name in needed
        }
        return Frame(columns, f"{var}.shape[0]")

    # -- page frames (shared by the streaming operators) ---------------------------

    def _page_frame(self, spec: StagedSource, rows_var: str) -> Frame:
        columns = {
            f.name: ColumnRef(f"{rows_var}[{f.name!r}]", f.kind)
            for f in spec.schema.fields
        }
        return Frame(columns, f"{rows_var}.shape[0]")

    # -- streaming group aggregation -------------------------------------------------

    def _breaker_output(
        self, breaker: PipelineBreaker, need: Optional[Set[str]]
    ) -> Frame:
        if breaker.node is self._stream_node and breaker.kind == "group-aggregate":
            frame = self._breaker_frames.get(breaker.bid)
            if frame is None:
                frame = self._emit_stream_group(breaker.node, need)
                self._breaker_frames[breaker.bid] = frame
            return frame
        return super()._breaker_output(breaker, need)

    def _emit_stream_group(
        self, plan: GroupAggregate, needed: Optional[Set[str]]
    ) -> Frame:
        spec = self._staged[self._stream_ordinal]

        # decompose avg into mergeable sum + shared count (page merging);
        # the slot plan is the shared one used by the parallel merge too
        physical, extract = physical_slots(plan.aggregates)

        key_body = plan.key.body
        key_fields = (
            list(key_body.fields)
            if isinstance(key_body, New)
            else [(Frame.SINGLE, key_body)]
        )

        sagg = self.names.fresh("sagg")
        kinds = [kind for kind, _ in physical]
        self.writer.line(
            f"{sagg} = _StreamingGroupAggregator({len(key_fields)}, {kinds!r})"
        )
        consumer = self.names.fresh("_consume")
        rows = self.names.fresh("rows")
        with self.writer.block(f"def {consumer}({rows}):"):
            page = self._page_frame(spec, rows)
            printer = self._printer({plan.key.params[0]: (page, None)})
            key_codes = [printer.emit(expr) for _, expr in key_fields]
            value_codes = []
            for kind, selector in physical:
                if selector is None:
                    value_codes.append("None")
                else:
                    p = self._printer({selector.params[0]: (page, None)})
                    value_codes.append(p.emit(selector.body))
            keys_tuple = ", ".join(key_codes)
            self.writer.line(
                f"{sagg}.consume_page(({keys_tuple},), [{', '.join(value_codes)}])"
            )
        self._emit_streaming_staging(spec, consumer)

        gkeys = self.names.fresh("gkeys")
        gaggs = self.names.fresh("gaggs")
        self.writer.line(f"{gkeys}, {gaggs} = {sagg}.finalize()")

        # expose keys and extracted aggregates as a frame for the output expr
        key_printer = self._printer(
            {plan.key.params[0]: (self._page_frame(spec, "_unused"), None)}
        )
        key_cols = {
            name: ColumnRef(f"{gkeys}[{i}]", key_printer.kind_of(expr))
            for i, (name, expr) in enumerate(key_fields)
        }
        key_frame = Frame(key_cols, f"{gkeys}[0].shape[0]")
        env: Dict[str, Tuple[Frame, Optional[str]]] = {"__key": (key_frame, None)}
        for i, (mode, a, b) in enumerate(extract):
            if mode == "avg":
                if self._elide_avg_guards:
                    code = f"({gaggs}[{a}] / {gaggs}[{b}])"
                else:
                    code = f"({gaggs}[{a}] / _np.maximum({gaggs}[{b}], 1))"
                kind = "float"
            else:
                code = f"{gaggs}[{a}]"
                kind = self._spec_kind(plan.aggregates[i], spec)
            env[f"__agg{i}"] = (
                Frame({Frame.SINGLE: ColumnRef(code, kind)}, f"{gkeys}[0].shape[0]"),
                None,
            )
        printer = self._printer(env)
        return self._build_output_frame(
            plan.output, printer, f"{gkeys}[0].shape[0]", needed
        )

    def _spec_kind(self, spec_agg, staged_spec: StagedSource) -> str:
        if spec_agg.selector is None:
            return "int"
        printer = self._printer(
            {
                spec_agg.selector.params[0]: (
                    self._page_frame(staged_spec, "_unused"),
                    None,
                )
            }
        )
        return printer.kind_of(spec_agg.selector.body)

    # -- streaming scalar aggregation ----------------------------------------------

    def _scalar_result(self, plan: ScalarAggregate) -> str:
        if plan is not self._stream_node:
            return super()._scalar_result(plan)
        spec = self._staged[self._stream_ordinal]
        if len(plan.aggregates) != 1:
            raise UnsupportedQueryError("streaming scalar supports one aggregate")
        (agg,) = plan.aggregates
        acc = self.names.fresh("acc")
        # slots: [count, sum, min, max] — only what the aggregate needs
        self.writer.line(f"{acc} = [0, 0.0, None, None]")
        consumer = self.names.fresh("_consume")
        rows = self.names.fresh("rows")
        with self.writer.block(f"def {consumer}({rows}):"):
            page = self._page_frame(spec, rows)
            with self.writer.block(f"if {rows}.shape[0]:"):
                self.writer.line(f"{acc}[0] += {rows}.shape[0]")
                if agg.selector is not None:
                    printer = self._printer(
                        {agg.selector.params[0]: (page, None)}
                    )
                    values = self.names.fresh("vals")
                    self.writer.line(
                        f"{values} = {printer.emit(agg.selector.body)}"
                    )
                    if agg.kind in ("sum", "avg"):
                        self.writer.line(f"{acc}[1] += {values}.sum()")
                    if agg.kind == "min":
                        pmin = self.names.fresh("pm")
                        self.writer.line(f"{pmin} = {values}.min()")
                        self.writer.line(
                            f"{acc}[2] = {pmin} if {acc}[2] is None "
                            f"else min({acc}[2], {pmin})"
                        )
                    if agg.kind == "max":
                        pmax = self.names.fresh("pm")
                        self.writer.line(f"{pmax} = {values}.max()")
                        self.writer.line(
                            f"{acc}[3] = {pmax} if {acc}[3] is None "
                            f"else max({acc}[3], {pmax})"
                        )
        self._emit_streaming_staging(spec, consumer)
        if agg.kind == "count":
            return f"{acc}[0]"
        if agg.kind == "sum":
            return f"({acc}[1] if {acc}[0] else 0)"
        if agg.kind == "avg":
            with self.writer.block(f"if not {acc}[0]:"):
                self.writer.line("raise _EmptyAggregateError()")
            return f"({acc}[1] / {acc}[0])"
        index = 2 if agg.kind == "min" else 3
        with self.writer.block(f"if {acc}[{index}] is None:"):
            self.writer.line("raise _EmptyAggregateError()")
        return f"{acc}[{index}].item()"

    # -- streaming join probe ---------------------------------------------------------

    def _emit_stream_join(
        self, plan: Join, needed: Optional[Set[str]]
    ) -> Frame:
        spec = self._staged[self._stream_ordinal]
        left_var, right_var = plan.result.params
        if not isinstance(plan.result.body, New):
            raise UnsupportedQueryError(
                "streaming joins require a record-constructing result selector"
            )

        right = self._join_build_frame(self.ir.breaker_for(plan))
        rk = self._vector(
            self._printer({plan.right_key.params[0]: (right, None)}).emit(
                plan.right_key.body
            )
        )
        probe = self.names.fresh("jprobe")
        self.writer.line(f"{probe} = _StreamingJoinProbe({rk})")

        out_fields = [
            (name, expr)
            for name, expr in plan.result.body.fields
            if needed is None or name in needed
        ]
        pieces = self.names.fresh("pieces")
        self.writer.line(f"{pieces} = {[[] for _ in out_fields]!r}")
        consumer = self.names.fresh("_consume")
        rows = self.names.fresh("rows")
        with self.writer.block(f"def {consumer}({rows}):"):
            page = self._page_frame(spec, rows)
            key_printer = self._printer({plan.left_key.params[0]: (page, None)})
            pk = self.names.fresh("pk")
            self.writer.line(f"{pk} = {key_printer.emit(plan.left_key.body)}")
            li = self.names.fresh("li")
            ri = self.names.fresh("ri")
            self.writer.line(f"{li}, {ri} = {probe}.probe({pk})")
            out_printer = self._printer(
                {left_var: (page, li), right_var: (right, ri)}
            )
            for j, (_, expr) in enumerate(out_fields):
                self.writer.line(f"{pieces}[{j}].append({out_printer.emit(expr)})")
        self._emit_streaming_staging(spec, consumer)

        page_probe = self._page_frame(spec, "_unused")
        kind_printer = self._printer(
            {left_var: (page_probe, None), right_var: (right, None)}
        )
        columns: Dict[str, ColumnRef] = {}
        for j, (name, expr) in enumerate(out_fields):
            kind = kind_printer.kind_of(expr)
            var = self.names.fresh("col")
            placeholder = _placeholder_dtype(kind)
            self.writer.line(
                f"{var} = _np.concatenate({pieces}[{j}]) if {pieces}[{j}] "
                f"else _np.zeros(0, dtype={placeholder!r})"
            )
            columns[name] = ColumnRef(var, kind)
        first = next(iter(columns.values()))
        return Frame(columns, f"{first.code}.shape[0]")


def _placeholder_dtype(kind: str) -> str:
    return {
        "int": "int64",
        "int32": "int32",
        "float": "float64",
        "bool": "bool",
        "str": "S1",
        "date": "int32",
    }.get(kind, "float64")


def _hybrid_empty_error():
    return ExecutionError("aggregate of an empty sequence has no value")


def _find_stream_target(
    plan: Plan, staged: Dict[int, StagedSource]
) -> Tuple[Optional[Plan], Optional[int]]:
    """Pick the blocking operator (and its scan) that consumes pages.

    Only a scan feeding its parent *directly* (any scan-adjacent filters
    run in staging) can stream, and only when the parent merges across
    pages: group/scalar aggregation, or a join probing that scan.
    """
    scan_counts: Dict[int, int] = {}

    def count(node: Plan) -> None:
        if isinstance(node, Scan):
            scan_counts[node.ordinal] = scan_counts.get(node.ordinal, 0) + 1
        for child in plan_children(node):
            count(child)

    count(plan)

    def scan_below(node: Plan) -> Optional[Scan]:
        while isinstance(node, Filter):
            node = node.child
        return node if isinstance(node, Scan) else None

    def streamable(scan: Optional[Scan]) -> bool:
        if scan is None or scan_counts.get(scan.ordinal) != 1:
            return False
        spec = staged.get(scan.ordinal)
        return spec is not None and bool(spec.fields)

    def find(node: Plan) -> Tuple[Optional[Plan], Optional[int]]:
        if isinstance(node, (GroupAggregate, ScalarAggregate)):
            scan = scan_below(node.child)
            if streamable(scan):
                return node, scan.ordinal
        if isinstance(node, Join) and node.kind == "inner":
            # only the inner probe streams page-by-page; outer/semi/anti
            # probes fall back to full materialization
            scan = scan_below(node.left)
            if streamable(scan):
                return node, scan.ordinal
        for child in plan_children(node):
            found = find(child)
            if found[0] is not None:
                return found
        return None, None

    return find(plan)


# ---------------------------------------------------------------------------
# Min variant — ship keys and indexes only, build results from objects
# ---------------------------------------------------------------------------


class _MinEmitter:
    """Generates the Min-staging program for the supported plan shapes."""

    def __init__(self, page_bytes: int, buffered: bool):
        self.page_bytes = page_bytes
        self.buffered = buffered
        self.writer = SourceWriter()
        self.namespace: Dict[str, Any] = {}
        self._param_names: Dict[str, str] = {}
        self.names = NameAllocator()

    def _render_param(self, name: str) -> str:
        code_name = self._param_names.get(name)
        if code_name is None:
            sanitized = "".join(c if c.isalnum() else "_" for c in name)
            code_name = f"_param_{sanitized}"
            self._param_names[name] = code_name
        return code_name

    def _printer(self) -> _CodeVarPrinter:
        printer = _CodeVarPrinter(param_render=self._render_param)
        printer.namespace = self.namespace
        return printer

    # -- shape detection --------------------------------------------------------

    def emit_module(
        self, plan: Plan, sources: Sequence[Any]
    ) -> Tuple[str, Dict[str, Any], bool]:
        post_ops: List[Tuple[str, Lambda]] = []
        node = plan
        while True:
            if isinstance(node, Project):
                post_ops.append(("project", node.selector))
                node = node.child
            elif isinstance(node, Filter) and isinstance(node.child, (Join,)):
                post_ops.append(("filter", node.predicate))
                node = node.child
            else:
                break
        post_ops.reverse()

        body = SourceWriter()
        self.writer = body
        # the Min program is one staged native operation; a single
        # entry checkpoint keeps it cancellable like the IR pipelines
        body.line("_cancel_check(_params)")
        if isinstance(node, (Sort, TopN)):
            self._emit_sort_min(node, post_ops)
        elif isinstance(node, Join):
            self._emit_join_min(node, post_ops)
        else:
            raise UnsupportedQueryError(
                "Min staging only supports a single sort/top-N or join as "
                "the native operation (the paper's §7.4 restriction); use "
                "the Max variant for complex queries"
            )

        header = SourceWriter()
        header.line('"""Query code generated by repro.codegen.hybrid_backend (Min)."""')
        header.line()
        with header.block("def execute(sources, _params):"):
            for param_name, code_name in self._param_names.items():
                header.line(f"{code_name} = _params[{param_name!r}]")
            for line in body.text().splitlines():
                header.line(line) if line.strip() else header.line()

        namespace = dict(self.namespace)
        namespace.update(
            _np=np,
            _sort_indexes=_vec.sort_indexes,
            _topn_indexes=_vec.topn_indexes,
            _hash_join=_vec.hash_join_indexes,
            _StreamingJoinProbe=StreamingJoinProbe,
            _native_key=_native_key,
            _cancel_check=cancel_check,
        )
        return header.text(), namespace, False

    # -- helpers -------------------------------------------------------------------

    def _scan_chain(self, node: Plan) -> Tuple[int, List[Lambda]]:
        predicates: List[Lambda] = []
        while isinstance(node, Filter):
            predicates.append(node.predicate)
            node = node.child
        if not isinstance(node, Scan):
            raise UnsupportedQueryError(
                "Min staging requires the native operator to sit directly on "
                "(filtered) scans"
            )
        return node.ordinal, list(reversed(predicates))

    def _materialize_min(self, node: Plan) -> str:
        """Emit code producing a Python list of this subtree's elements.

        Scan chains filter managed-side and retain object references; join
        subtrees ship keys to the native kernel and build result records
        managed-side — recursively, so the Figure-11 three-relation join
        works under Min staging too.
        """
        if isinstance(node, (Filter, Scan)):
            ordinal, predicates = self._scan_chain(node)
            objs, _ = self._stage_objects_and_keys(ordinal, predicates, [])
            return objs
        if isinstance(node, Join):
            out = self.names.fresh("joined")
            self.writer.line(f"{out} = []")
            self._emit_join_matches(
                node,
                lambda lo, ro: self.writer.line(
                    f"{out}.append("
                    + self._printer().emit(
                        substitute(
                            node.result.body,
                            {
                                node.result.params[0]: Var(lo),
                                node.result.params[1]: Var(ro),
                            },
                        )
                    )
                    + ")"
                ),
            )
            return out
        raise UnsupportedQueryError(
            "Min staging only supports (filtered) scans and joins below the "
            "native operator"
        )

    def _emit_join_matches(self, node: Join, consume) -> None:
        """Stage both sides, run the native join kernel, loop the matches."""
        left_objs = self._materialize_min(node.left)
        right_objs = self._materialize_min(node.right)
        larr = self._key_array(left_objs, node.left_key)
        rarr = self._key_array(right_objs, node.right_key)
        li = self.names.fresh("li")
        ri = self.names.fresh("ri")
        self.writer.line(f"{li}, {ri} = _hash_join({larr}, {rarr})")
        k = self.names.fresh("k")
        with self.writer.block(f"for {k} in range({li}.shape[0]):"):
            lo = self.names.fresh("lo")
            ro = self.names.fresh("ro")
            self.writer.line(f"{lo} = {left_objs}[{li}[{k}]]")
            self.writer.line(f"{ro} = {right_objs}[{ri}[{k}]]")
            consume(lo, ro)

    def _key_array(self, objs_var: str, key: Lambda) -> str:
        """Extract one key per retained object into a native array."""
        printer = self._printer()
        keys = self.names.fresh("keys")
        elem = self.names.fresh("elem")
        body = substitute(key.body, {key.params[0]: Var(elem)})
        self.writer.line(
            f"{keys} = [_native_key({printer.emit(body)}) "
            f"for {elem} in {objs_var}]"
        )
        arr = self.names.fresh("karr")
        self.writer.line(f"{arr} = _np.asarray({keys})")
        return arr

    def _stage_objects_and_keys(
        self, ordinal: int, predicates: List[Lambda], key_lambdas: List[Lambda]
    ) -> Tuple[str, List[str]]:
        """Managed loop retaining objects and collecting native key lists."""
        printer = self._printer()
        objs = self.names.fresh("objs")
        key_lists = [self.names.fresh("keys") for _ in key_lambdas]
        self.writer.line(f"{objs} = []")
        for kl in key_lists:
            self.writer.line(f"{kl} = []")
        elem = self.names.fresh("elem")
        with self.writer.block(f"for {elem} in sources[{ordinal}]:"):
            emitters = []
            for lam in key_lambdas:
                body = substitute(lam.body, {lam.params[0]: Var(elem)})
                emitters.append(printer.emit(body))
            appends = [f"{objs}.append({elem})"] + [
                f"{kl}.append(_native_key({code}))"
                for kl, code in zip(key_lists, emitters)
            ]
            if predicates:
                parts = [
                    printer.emit(substitute(p.body, {p.params[0]: Var(elem)}))
                    for p in predicates
                ]
                with self.writer.block(f"if {' and '.join(parts)}:"):
                    for line in appends:
                        self.writer.line(line)
            else:
                for line in appends:
                    self.writer.line(line)
        return objs, key_lists

    def _emit_post_ops(self, element_code: str, post_ops: List[Tuple[str, Lambda]]):
        """Apply trailing filters/projections in managed code, then yield."""
        printer = self._printer()
        current = self.names.fresh("out")
        self.writer.line(f"{current} = {element_code}")
        for op, lam in post_ops:
            body = substitute(lam.body, {lam.params[0]: Var(current)})
            if op == "filter":
                with self.writer.block(f"if not ({printer.emit(body)}):"):
                    self.writer.line("continue")
            else:
                nxt = self.names.fresh("out")
                self.writer.line(f"{nxt} = {printer.emit(body)}")
                current = nxt
        self.writer.line(f"yield {current}")

    # -- sort / top-N -------------------------------------------------------------------

    def _emit_sort_min(self, node: Plan, post_ops: List[Tuple[str, Lambda]]) -> None:
        objs = self._materialize_min(node.child)
        arrays = [self._key_array(objs, key) for key in node.keys]
        dirs = repr(tuple(node.descending))
        order = self.names.fresh("order")
        if isinstance(node, TopN):
            count_code = self._printer().emit(node.count)
            self.writer.line(
                f"{order} = _topn_indexes(({', '.join(arrays)},), {dirs}, {count_code})"
            )
        else:
            self.writer.line(
                f"{order} = _sort_indexes(({', '.join(arrays)},), {dirs})"
            )
        i = self.names.fresh("i")
        with self.writer.block(f"for {i} in {order}:"):
            self._emit_post_ops(f"{objs}[{i}]", post_ops)

    # -- join ---------------------------------------------------------------------------

    def _emit_join_min(self, node: Join, post_ops: List[Tuple[str, Lambda]]) -> None:
        printer = self._printer()

        def consume(lo: str, ro: str) -> None:
            result_body = substitute(
                node.result.body,
                {node.result.params[0]: Var(lo), node.result.params[1]: Var(ro)},
            )
            self._emit_post_ops(printer.emit(result_body), post_ops)

        self._emit_join_matches(node, consume)


def _native_key(value: Any) -> Any:
    """Convert a managed key value to its native (sortable) form."""
    if isinstance(value, datetime.date):
        return date_to_days(value)
    return value
