"""The pipeline IR shared by every codegen backend.

The paper's three code generators (§4 host code, §5 native code, §6
hybrid staging) share one conceptual core: segment the plan into
*pipelines* at blocking operators, then emit one fused loop per pipeline.
This module makes that core explicit.  :func:`repro.codegen.lower.lower_plan`
turns an optimized logical plan into a :class:`QueryIR` — a DAG of
:class:`Pipeline` objects separated by :class:`PipelineBreaker` nodes —
and all three backends *lower* that IR instead of re-deriving loop
boundaries privately.

Three shared analyses live here so no backend re-implements them:

* **required fields** — the ``member_usage``-based pass (previously the
  native backend's private ``_usage_of`` and ``mapping.source_field_usage``)
  that drives native column pruning and hybrid's implicit projection;
* **common-subexpression elimination** — per-lambda hoisting of repeated
  subexpressions into ``__cse<N>`` bindings, applied once during lowering
  and inherited by every backend;
* **physical slot planning** — avg → sum+count decomposition with slot
  sharing, previously duplicated between ``python_backend._plan_slots``
  and ``runtime.parallel._physical_slots``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import UnsupportedQueryError
from ..expressions.analysis import member_usage
from ..expressions.nodes import (
    AggCall,
    Binary,
    Call,
    Conditional,
    Expr,
    Lambda,
    Method,
    Unary,
    Var,
    children as _expr_children,
    structural_key,
    walk,
)
from ..expressions.visitor import Transformer, substitute
from ..plans.logical import (
    AggregateSpec,
    Concat,
    Distinct,
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    SetOp,
    Sort,
    TopN,
    plan_children,
)

__all__ = [
    "CSE_PREFIX",
    "CseBinding",
    "PipelineBreaker",
    "Pipeline",
    "QueryIR",
    "BREAKER_KINDS",
    "breaker_kind",
    "op_label",
    "lambda_usage",
    "lambda_fields",
    "paths_to_fields",
    "merge_fields",
    "required_source_fields",
    "strip_scan_filters",
    "rebuild_plan",
    "eliminate_common_subexpressions",
    "expand_cse",
    "physical_slots",
]


# ---------------------------------------------------------------------------
# Shared field analysis (the one member_usage pass)
# ---------------------------------------------------------------------------

#: prefix of CSE-introduced variables; field analysis resolves them through
#: their binding expressions instead of treating them as free variables
CSE_PREFIX = "__cse"

CseTable = Dict[int, Tuple["CseBinding", ...]]


def lambda_usage(
    lam: Lambda, cse: Optional[CseTable] = None
) -> Dict[str, Set[str]]:
    """Member paths per free variable of *lam*, CSE-aware.

    ``__cse<N>`` variables introduced by :func:`eliminate_common_
    subexpressions` are resolved through their binding expressions (which
    close over the same lambda parameters), so field analysis of a CSE'd
    lambda reports exactly what the original read.
    """
    usage: Dict[str, Set[str]] = {}

    def merge_expr(expr: Expr) -> None:
        for var, paths in member_usage(expr).items():
            if var.startswith(CSE_PREFIX):
                continue
            usage.setdefault(var, set()).update(paths)

    merge_expr(lam.body)
    for binding in (cse or {}).get(id(lam), ()):
        merge_expr(binding.expr)
    return usage


def paths_to_fields(paths: Set[str]) -> Optional[Set[str]]:
    """Dotted member paths → first-level field names (None = whole element)."""
    fields: Set[str] = set()
    for path in paths:
        if path == "":
            return None
        fields.add(path.split(".")[0])
    return fields


def lambda_fields(
    lam: Lambda, param_index: int = 0, cse: Optional[CseTable] = None
) -> Optional[Set[str]]:
    """First-level fields one parameter of *lam* is accessed through.

    ``None`` means the whole element is needed (a bare use of the
    variable).  This is the raw material of the paper's source mapping
    (Figure 6) and of native column pruning.
    """
    paths = lambda_usage(lam, cse).get(lam.params[param_index], set())
    return paths_to_fields(paths)


def merge_fields(
    a: Optional[Set[str]], b: Optional[Set[str]]
) -> Optional[Set[str]]:
    """Union of two field sets where ``None`` (whole element) absorbs."""
    if a is None or b is None:
        return None
    return a | b


def required_source_fields(
    plan: Plan, cse: Optional[CseTable] = None
) -> Dict[int, Optional[Set[str]]]:
    """Map scan ordinal → fields the plan reads above it (None = whole).

    The per-source *source mapping* of Figure 6, shared by hybrid staging
    (copy exactly these fields) and native column pruning (materialize
    exactly these columns).
    """
    usage: Dict[int, Optional[Set[str]]] = {}

    def lam_fields(lam: Lambda, index: int = 0) -> Optional[Set[str]]:
        return lambda_fields(lam, index, cse)

    def merge(ordinal: int, fields: Optional[Set[str]]) -> None:
        if ordinal in usage and usage[ordinal] is None:
            return
        if fields is None:
            usage[ordinal] = None
        else:
            usage.setdefault(ordinal, set())
            usage[ordinal] |= fields  # type: ignore[operator]

    def visit(plan: Plan, needed: Optional[Set[str]]) -> None:
        if isinstance(plan, Scan):
            merge(plan.ordinal, needed)
            return
        if isinstance(plan, Filter):
            visit(plan.child, merge_fields(needed, lam_fields(plan.predicate)))
            return
        if isinstance(plan, Project):
            visit(plan.child, lam_fields(plan.selector))
            return
        if isinstance(plan, FlatMap):
            inner = lam_fields(plan.collection)
            if plan.result is not None:
                inner = merge_fields(inner, lam_fields(plan.result, 0))
            visit(plan.child, inner)
            return
        if isinstance(plan, Join):
            if plan.kind in ("semi", "anti"):
                # output IS the left element: downstream needs plus the
                # probe key on the left; only the key on the build side
                visit(plan.left, merge_fields(needed, lam_fields(plan.left_key)))
                visit(plan.right, lam_fields(plan.right_key))
                return
            left_var, right_var = plan.result.params
            res_usage = lambda_usage(plan.result, cse)
            left_fields = paths_to_fields(res_usage.get(left_var, set()))
            right_fields = paths_to_fields(res_usage.get(right_var, set()))
            visit(plan.left, merge_fields(left_fields, lam_fields(plan.left_key)))
            visit(
                plan.right, merge_fields(right_fields, lam_fields(plan.right_key))
            )
            return
        if isinstance(plan, GroupAggregate):
            fields = lam_fields(plan.key)
            for spec in plan.aggregates:
                if spec.selector is not None:
                    fields = merge_fields(fields, lam_fields(spec.selector))
            visit(plan.child, fields)
            return
        if isinstance(plan, GroupBy):
            visit(plan.child, None)  # groups carry whole elements
            return
        if isinstance(plan, ScalarAggregate):
            fields: Optional[Set[str]] = set()
            for spec in plan.aggregates:
                if spec.selector is not None:
                    fields = merge_fields(fields, lam_fields(spec.selector))
            visit(plan.child, fields)
            return
        if isinstance(plan, (Sort, TopN)):
            fields = needed
            for key in plan.keys:
                fields = merge_fields(fields, lam_fields(key))
            visit(plan.child, fields)
            return
        if isinstance(plan, Limit):
            visit(plan.child, needed)
            return
        if isinstance(plan, Distinct):
            visit(plan.child, None)  # value semantics need every field
            return
        if isinstance(plan, Concat):
            visit(plan.left, needed)
            visit(plan.right, needed)
            return
        if isinstance(plan, SetOp):
            visit(plan.left, None)  # bag equality compares whole elements
            visit(plan.right, None)
            return
        for child in plan_children(plan):
            visit(child, None)

    visit(plan, None)
    return usage


def strip_scan_filters(plan: Plan) -> Tuple[Plan, Dict[int, Tuple[Lambda, ...]]]:
    """Peel scan-adjacent Filter chains off the plan.

    Returns the stripped plan plus ordinal → peeled predicates (innermost
    first).  This is the hybrid staging boundary: the peeled predicates
    run managed-side, everything else natively over staged arrays.
    """
    peeled: Dict[int, Tuple[Lambda, ...]] = {}

    def strip(node: Plan) -> Plan:
        if isinstance(node, Filter):
            chain = node
            predicates: List[Lambda] = []
            while isinstance(chain, Filter):
                predicates.append(chain.predicate)
                chain = chain.child
            if isinstance(chain, Scan):
                peeled[chain.ordinal] = tuple(reversed(predicates))
                return chain
            return Filter(strip(node.child), node.predicate)
        if isinstance(node, Scan):
            peeled.setdefault(node.ordinal, ())
            return node
        return rebuild_plan(node, [strip(c) for c in plan_children(node)])

    return strip(plan), peeled


def rebuild_plan(node: Plan, children: List[Plan]) -> Plan:
    """Reconstruct *node* with new children (same arity/order)."""
    if isinstance(node, Join):
        return Join(
            children[0],
            children[1],
            node.left_key,
            node.right_key,
            node.result,
            node.kind,
            node.default,
        )
    if isinstance(node, Concat):
        return Concat(children[0], children[1])
    if isinstance(node, SetOp):
        return SetOp(children[0], children[1], node.op)
    if isinstance(node, Filter):
        return Filter(children[0], node.predicate)
    if isinstance(node, Project):
        return Project(children[0], node.selector)
    if isinstance(node, FlatMap):
        return FlatMap(children[0], node.collection, node.result)
    if isinstance(node, GroupBy):
        return GroupBy(children[0], node.key)
    if isinstance(node, GroupAggregate):
        return GroupAggregate(
            children[0], node.key, node.aggregates, node.output, node.fused, node.share
        )
    if isinstance(node, ScalarAggregate):
        return ScalarAggregate(children[0], node.aggregates, node.output)
    if isinstance(node, Sort):
        return Sort(children[0], node.keys, node.descending)
    if isinstance(node, TopN):
        return TopN(children[0], node.keys, node.descending, node.count)
    if isinstance(node, Limit):
        return Limit(children[0], node.count, node.offset)
    if isinstance(node, Distinct):
        return Distinct(children[0])
    raise UnsupportedQueryError(f"cannot rebuild plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Common-subexpression elimination (per-lambda, applied during lowering)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CseBinding:
    """One hoisted subexpression: ``name = expr``, evaluated per element.

    ``expr`` closes over the owning lambda's parameters; it may reference
    earlier bindings of the same lambda (nested elimination), so backends
    must emit bindings in list order.
    """

    name: str
    expr: Expr


#: node kinds worth hoisting — compound computations, not bare leaves
_CSE_CANDIDATES = (Binary, Unary, Method, Call, Conditional)


def _cse_eligible(node: Expr) -> bool:
    """Hoistable: no aggregates, no nested lambdas inside the subtree."""
    return not any(isinstance(sub, (AggCall, Lambda)) for sub in walk(node))


def _subtree_size(node: Expr) -> int:
    return sum(1 for _ in walk(node))


def _always_evaluated_keys(expr: Expr) -> Set[Any]:
    """Structural keys of subtrees evaluated on *every* element.

    Hoisting is only sound when at least one occurrence already runs
    unconditionally: subtrees reached only through short-circuited
    operands (``and``/``or`` right sides) or conditional branches must
    not be evaluated eagerly (e.g. a guarded division).
    """
    keys: Set[Any] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, _CSE_CANDIDATES):
            keys.add(structural_key(node))
        if isinstance(node, Binary) and node.op in ("and", "or"):
            visit(node.left)
            return
        if isinstance(node, Conditional):
            visit(node.cond)
            return
        if isinstance(node, Lambda):
            return
        for child in _expr_children(node):
            visit(child)

    visit(expr)
    return keys


class _ReplaceSubtree(Transformer):
    """Swap every occurrence of one structural key for a variable."""

    def __init__(self, key: Any, name: str) -> None:
        self._key = key
        self._var = Var(name)

    def visit(self, expr: Expr) -> Expr:
        if isinstance(expr, _CSE_CANDIDATES) and structural_key(expr) == self._key:
            return self._var
        return self.generic_visit(expr)


class CseAllocator:
    """Deterministic ``__cse<N>`` name source, shared across one lowering."""

    def __init__(self) -> None:
        self._count = 0

    def fresh(self) -> str:
        name = f"{CSE_PREFIX}{self._count}"
        self._count += 1
        return name


def eliminate_common_subexpressions(
    lam: Lambda, allocator: CseAllocator
) -> Tuple[Lambda, Tuple[CseBinding, ...]]:
    """Hoist repeated subexpressions of one lambda into bindings.

    Innermost (smallest) repeats are hoisted first, so outer repeats are
    re-counted over the rewritten body and their binding expressions may
    reference earlier ``__cse`` variables.  Only subtrees with at least
    one unconditionally-evaluated occurrence are hoisted (see
    :func:`_always_evaluated_keys`), preserving short-circuit guards.
    """
    body = lam.body
    bindings: List[CseBinding] = []
    while True:
        counts: Dict[Any, int] = {}
        first_pos: Dict[Any, int] = {}
        exemplar: Dict[Any, Expr] = {}
        for pos, node in enumerate(walk(body)):
            if isinstance(node, _CSE_CANDIDATES) and _cse_eligible(node):
                key = structural_key(node)
                counts[key] = counts.get(key, 0) + 1
                if key not in first_pos:
                    first_pos[key] = pos
                    exemplar[key] = node
        anchored = _always_evaluated_keys(body)
        repeated = [k for k, c in counts.items() if c >= 2 and k in anchored]
        if not repeated:
            break
        key = min(
            repeated, key=lambda k: (_subtree_size(exemplar[k]), first_pos[k])
        )
        name = allocator.fresh()
        bindings.append(CseBinding(name, exemplar[key]))
        body = _ReplaceSubtree(key, name).visit(body)
    if not bindings:
        return lam, ()
    return Lambda(lam.params, body, lam.effects), tuple(bindings)


def expand_cse(lam: Lambda, bindings: Sequence[CseBinding]) -> Lambda:
    """Substitute bindings back, recovering the original lambda body.

    Bindings may reference earlier bindings, so expansion runs in reverse
    order.  Used by backends that need the un-CSE'd expression (e.g. the
    hybrid Min emitter's per-object interpretation).
    """
    body = lam.body
    for binding in reversed(list(bindings)):
        body = substitute(body, {binding.name: binding.expr})
    return Lambda(lam.params, body, lam.effects)


# ---------------------------------------------------------------------------
# Physical aggregate slot planning (shared: python backend + parallel merge)
# ---------------------------------------------------------------------------


def physical_slots(
    specs: Sequence[AggregateSpec], share: bool = True
) -> Tuple[List[Tuple[str, Optional[Lambda]]], List[Tuple[str, int, int]]]:
    """Mergeable physical slots + per-spec extraction recipe.

    ``avg`` has no direct accumulator (and cannot merge across morsels),
    so it decomposes into a ``sum`` slot and a shared ``count`` slot,
    re-divided at finalization.  Identical (kind, selector) pairs share
    one slot unless ``share`` is False (the §2.3 duplicate-computation
    ablation).  Each extraction entry is ``("direct", slot, -1)`` or
    ``("avg", sum_slot, count_slot)``.
    """
    slots: List[Tuple[str, Optional[Lambda]]] = []
    index_of: Dict[Any, int] = {}

    def slot_for(kind: str, selector: Optional[Lambda]) -> int:
        if not share:
            slots.append((kind, selector))
            return len(slots) - 1
        sel_key = structural_key(selector) if selector is not None else None
        key = (kind, sel_key)
        if key not in index_of:
            index_of[key] = len(slots)
            slots.append((kind, selector))
        return index_of[key]

    extract: List[Tuple[str, int, int]] = []
    for spec in specs:
        if spec.kind == "avg":
            extract.append(
                ("avg", slot_for("sum", spec.selector), slot_for("count", None))
            )
        else:
            extract.append(("direct", slot_for(spec.kind, spec.selector), -1))
    return slots, extract


# ---------------------------------------------------------------------------
# The pipeline IR itself
# ---------------------------------------------------------------------------

#: blocking plan node → breaker kind (Join build sides are "join-build")
BREAKER_KINDS = {
    GroupBy: "group-materialize",
    GroupAggregate: "group-aggregate",
    ScalarAggregate: "scalar-aggregate",
    Sort: "sort",
    TopN: "topn",
    Distinct: "distinct-materialize",
}

_OP_LABELS = {
    Filter: "filter",
    Project: "project",
    FlatMap: "flatmap",
    Join: "join-probe",
    Limit: "limit",
}


def breaker_kind(node: Plan) -> str:
    if isinstance(node, Join):
        # every join kind builds the same keyed table; probes differ
        return "join-build"
    if isinstance(node, SetOp):
        return "setop-build"
    return BREAKER_KINDS[type(node)]


def op_label(node: Plan) -> str:
    if isinstance(node, Join) and node.kind != "inner":
        return f"join-probe({node.kind})"
    if isinstance(node, SetOp):
        return f"setop-probe({node.op})"
    return _OP_LABELS.get(type(node), type(node).__name__.lower())


@dataclass
class PipelineBreaker:
    """A materialization point between pipelines.

    Exactly one breaker exists per blocking plan node (and per join build
    side); the pipelines feeding it are its ``producers``, the single
    pipeline reading the materialized result is its ``consumer``.
    """

    bid: int
    kind: str
    node: Plan
    producers: List[int] = dc_field(default_factory=list)
    consumer: Optional[int] = None

    def label(self) -> str:
        return f"{self.kind}#{self.bid}"


@dataclass
class Pipeline:
    """One fused loop: a driver, a chain of pipelined operators, a sink.

    ``driver`` is either a :class:`~repro.plans.logical.Scan` or the
    :class:`PipelineBreaker` whose materialized output this pipeline
    re-reads.  ``operators`` is the non-blocking chain, innermost first
    (Filter/Project/FlatMap/Limit and Join probes).  ``sink`` is the
    breaker this pipeline materializes into, or None for the terminal
    pipeline that produces query results.
    """

    pid: int
    driver: Union[Scan, PipelineBreaker]
    operators: Tuple[Plan, ...]
    sink: Optional[PipelineBreaker]
    inputs: Tuple[int, ...] = ()
    #: fields of the driver scan's elements this pipeline's subtree reads
    #: (None = whole elements, or a breaker-driven pipeline)
    required_fields: Optional[Set[str]] = None
    #: ordinal of the driver scan (None when driven by a breaker)
    driver_ordinal: Optional[int] = None
    #: True when the driver scan is the morsel-sliced one
    morsel_driver: bool = False
    #: True when this pipeline sits on a morsel-parallelizable path
    parallel_ok: bool = False
    #: True when backends should emit a cooperative-cancellation
    #: checkpoint (``_cancel_check(_params)``) at this pipeline's head;
    #: deliberately excluded from :meth:`describe` so EXPLAIN output —
    #: and its byte-exact goldens — stay unchanged
    cancel_checkpoint: bool = False

    def driver_label(self) -> str:
        if isinstance(self.driver, PipelineBreaker):
            return self.driver.label()
        return f"scan(source_{self.driver.ordinal})"

    def sink_label(self) -> str:
        return self.sink.label() if self.sink is not None else "result"

    def describe(self) -> str:
        parts = [self.driver_label()]
        parts.extend(op_label(op) for op in self.operators)
        text = " | ".join(parts) + f" => {self.sink_label()}"
        if self.morsel_driver:
            text += " [morsel-driver]"
        elif self.parallel_ok:
            text += " [parallel-eligible]"
        return text


@dataclass
class QueryIR:
    """A lowered query: the rewritten plan plus its pipeline schedule.

    ``pipelines`` is in execution order (producers before consumers —
    creation order is a topological order of the DAG).  ``plan`` is the
    plan the backends actually emit: predicates reordered, repeated
    subexpressions hoisted (``cse``), multi-conjunct filters decomposed.
    """

    plan: Plan
    pipelines: Tuple[Pipeline, ...]
    breakers: Tuple[PipelineBreaker, ...]
    #: id(lambda in plan) → CSE bindings to emit before evaluating it
    cse: CseTable
    #: whole-plan scan ordinal → fields read (None = whole elements)
    source_fields: Dict[int, Optional[Set[str]]]
    #: like source_fields, but beyond the hybrid staging boundary
    #: (scan-adjacent filter predicates excluded — they run managed-side)
    staging_fields: Dict[int, Optional[Set[str]]]
    #: the morsel-parallel decision (plans/validate.ParallelSplit)
    split: Any
    morsel_ordinal: Optional[int]
    scalar: bool
    #: dataflow facts (repro.analysis.DataflowFacts), attached by the
    #: provider after lowering; backends fall back to deriving their own
    facts: Optional[Any] = None

    def bindings_for(self, lam: Optional[Lambda]) -> Tuple[CseBinding, ...]:
        if lam is None:
            return ()
        return self.cse.get(id(lam), ())

    def breaker_for(self, node: Plan) -> Optional[PipelineBreaker]:
        """The breaker materializing *node* (blocking nodes, join builds)."""
        for breaker in self.breakers:
            if breaker.node is node:
                return breaker
        return None

    def pipeline_of(self, node: Plan) -> Optional[Pipeline]:
        """The pipeline whose chain or driver contains *node*."""
        for pipeline in self.pipelines:
            if pipeline.driver is node:
                return pipeline
            for op in pipeline.operators:
                if op is node:
                    return pipeline
        return None

    def describe(self) -> List[str]:
        return [f"p{p.pid}: {p.describe()}" for p in self.pipelines]
