"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ExpressionError(ReproError):
    """A problem while building or manipulating an expression tree."""


class TraceError(ExpressionError):
    """A user lambda could not be captured as an expression tree.

    Raised, for example, when a traced lambda uses ``and`` / ``or`` /
    ``not`` (which Python routes through ``__bool__`` and cannot be
    overloaded) instead of ``&`` / ``|`` / ``~``, or calls a method that is
    not on the supported whitelist.
    """


class UnsupportedExpressionError(ExpressionError):
    """An expression node is valid but not supported in this context."""


class QueryAnalysisError(ReproError):
    """The query is ill-typed: static analysis rejected it before codegen.

    Raised by :mod:`repro.expressions.typing` (expression-level inference)
    and :mod:`repro.plans.validate` (operator preconditions).  Carries the
    printed path of the offending sub-expression so the user sees *which*
    part of the query is wrong instead of a traceback out of generated
    code.
    """

    def __init__(self, message: str, path: str = "", expression=None):
        super().__init__(message)
        self.path = path
        self.expression = expression


class TranslationError(ReproError):
    """The expression tree could not be translated into a logical plan."""


class UnsupportedQueryError(ReproError):
    """A query is valid but cannot run on the selected engine.

    The native engine (paper §5) restricts queries to flat value types
    stored in arrays of structs; queries outside that fragment raise this.
    """


class CodegenError(ReproError):
    """Source generation or compilation of generated code failed."""


class GeneratedCodeViolation(CodegenError):
    """Generated source failed the AST verifier gate.

    Subclasses :class:`CodegenError` (itself under :class:`ReproError`) so
    existing handlers keep working.  ``violations`` is the list of
    human-readable findings; ``source`` is the offending generated module.
    """

    def __init__(self, message: str, violations=(), source: str = ""):
        super().__init__(message)
        self.violations = tuple(violations)
        self.source = source


class ExecutionError(ReproError):
    """A compiled or interpreted query failed while producing results."""


class DistributedError(ExecutionError):
    """Multi-process distributed execution failed as infrastructure.

    Raised by the coordinator/scheduler when the worker pool cannot
    complete a query — every worker died mid-query, a worker returned a
    malformed reply, or an artifact could not cross the process boundary
    when distribution was explicitly demanded.  Kernel-level failures
    (a divide-by-zero inside generated code, an empty-aggregate error)
    re-raise with their original sequential types instead: distribution
    must never change *what* error a query produces, only where it runs.
    """


class QueryCancelled(ExecutionError):
    """A query observed its cancellation token and stopped cooperatively.

    Subclasses :class:`ExecutionError`: to callers, a cancelled query is a
    query that failed to produce results, and existing handlers keep
    working.  ``reason`` distinguishes an explicit cancel from a deadline.
    """

    def __init__(self, message: str = "query cancelled", reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason


class QueryTimeoutError(QueryCancelled):
    """A query exceeded its per-request deadline.

    Raised by the serving executor when the deadline elapses, and from the
    query's own cancellation checkpoints once the shared token expires.
    """

    def __init__(self, message: str = "query deadline exceeded"):
        super().__init__(message, reason="deadline")


class ServiceError(ReproError):
    """A problem in the query serving layer (sessions, admission)."""


class AdmissionRejected(ServiceError):
    """The admission controller fast-failed a request: queue full.

    Backpressure, not an internal fault — the caller should retry later
    or shed the request.
    """


class SessionClosed(ServiceError):
    """An operation was attempted on a closed :class:`QuerySession`."""


class SchemaError(ReproError):
    """A schema definition or a value did not match its declared schema."""
