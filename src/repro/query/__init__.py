"""LINQ surface, baseline engine, provider and query cache."""

from .cache import CacheStats, QueryCache
from .enumerable import enumerate_query, scalar_query
from .provider import ENGINES, QueryProvider, default_provider
from .queryable import QList, Query, from_iterable, from_struct_array
from .recycler import RecyclerStats, RecyclingProvider

__all__ = [
    "Query",
    "QList",
    "from_iterable",
    "from_struct_array",
    "QueryProvider",
    "RecyclingProvider",
    "RecyclerStats",
    "default_provider",
    "ENGINES",
    "QueryCache",
    "CacheStats",
    "enumerate_query",
    "scalar_query",
]
