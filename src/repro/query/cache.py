"""The query cache (paper §3, Figure 3).

"After replacing all constant parts, we consult a cache that contains
compiled code of previous queries ... Queries in the cache are identified
by their expression tree.  The system also supports reusing compiled code
if the expression trees are essentially the same, but one or more
parameters in the query differ."

The canonicalizer guarantees the second property (constants are lifted to
parameters before keying), so this module only needs to be an LRU map with
hit/miss statistics — the statistics feed ``bench_compile_cost``.

The cache is shared mutable state between every thread that executes
queries (the provider, and under parallel execution the worker pool's
clients too), so all operations — including the statistics updates, which
would otherwise lose increments under read-modify-write races — hold one
internal re-entrant lock.  Compilation itself is *not* serialized here;
the provider holds a per-key lock around its find-or-compile sequence so
two threads never duplicate the same compilation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..codegen.compiler import CompiledQuery
from ..observability.metrics import METRICS, MetricsRegistry

__all__ = ["QueryCache", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: static-analysis results cached alongside compiled artifacts
    analysis_hits: int = 0
    analysis_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryCache:
    """LRU cache of :class:`CompiledQuery` keyed by canonical query shape.

    Thread-safe: every operation holds the cache's internal lock.
    """

    def __init__(
        self,
        max_entries: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_entries <= 0:
            raise ValueError("cache size must be positive")
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Any, CompiledQuery]" = OrderedDict()
        # static-analysis results (engine-independent, so keyed separately
        # from compiled artifacts but evicted under the same budget)
        self._analyses: "OrderedDict[Any, Any]" = OrderedDict()
        #: called with each evicted *compiled-entry* key, outside the
        #: cache lock — the provider uses this to keep its own per-query
        #: side tables (pipeline IR, analysis associations) coherent
        self._eviction_listeners: List[Callable[[Any], None]] = []
        self.stats = CacheStats()
        # the same accounting, mirrored into the observability registry
        # (process-global by default; tests inject private registries)
        registry = metrics if metrics is not None else METRICS
        self._m_hits = registry.counter("query_cache.hits")
        self._m_misses = registry.counter("query_cache.misses")
        self._m_evictions = registry.counter("query_cache.evictions")
        self._m_analysis_hits = registry.counter("query_cache.analysis_hits")
        self._m_analysis_misses = registry.counter(
            "query_cache.analysis_misses"
        )

    def find(self, key: Any) -> Optional[CompiledQuery]:
        """Look up a compiled query, refreshing its LRU position."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._m_misses.add()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._m_hits.add()
            return entry

    def add_eviction_listener(self, listener: Callable[[Any], None]) -> None:
        """Subscribe to compiled-entry evictions (called with the key).

        Listeners run after the cache lock is released, so they may take
        other locks (the provider's) without ordering hazards.
        """
        with self._lock:
            self._eviction_listeners.append(listener)

    def store(self, key: Any, compiled: CompiledQuery) -> None:
        evicted: List[Any] = []
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                victim, _ = self._entries.popitem(last=False)
                evicted.append(victim)
                self.stats.evictions += 1
                self._m_evictions.add()
            listeners = list(self._eviction_listeners) if evicted else ()
        for victim in evicted:
            for listener in listeners:
                listener(victim)

    def find_analysis(self, key: Any) -> Optional[Any]:
        """Look up a cached static-analysis result (QueryAnalysis)."""
        with self._lock:
            entry = self._analyses.get(key)
            if entry is None:
                self.stats.analysis_misses += 1
                self._m_analysis_misses.add()
                return None
            self._analyses.move_to_end(key)
            self.stats.analysis_hits += 1
            self._m_analysis_hits.add()
            return entry

    def store_analysis(self, key: Any, analysis: Any) -> None:
        with self._lock:
            self._analyses[key] = analysis
            self._analyses.move_to_end(key)
            while len(self._analyses) > self._max_entries:
                self._analyses.popitem(last=False)
                self.stats.evictions += 1
                self._m_evictions.add()

    def discard_analysis(self, key: Any) -> bool:
        """Drop one analysis entry if present (eviction-coherence hook).

        Returns True when something was removed; a removal counts as an
        eviction (it is one — initiated by the provider rather than the
        LRU budget).
        """
        with self._lock:
            if key not in self._analyses:
                return False
            del self._analyses[key]
            self.stats.evictions += 1
            self._m_evictions.add()
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._analyses.clear()
            self.stats = CacheStats()
