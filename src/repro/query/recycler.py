"""Query result recycling — a §9 future-work extension, now delta-aware.

The paper's conclusion lists "query result caching [15]" (Nagel, Boncz,
Viglas: *Recycling in pipelined query evaluation*) as a further
optimization beyond compiled-code caching.  The code cache amortizes
*compilation*; the recycler amortizes *evaluation*: a repeated query with
identical parameters over unchanged sources returns the materialized
result without running at all.

With versioned storage the recycler goes one step further than the
wholesale invalidation of its first incarnation.  Entries over versioned
:class:`~repro.storage.struct_array.StructArray` sources are keyed by
source *identity* and carry the ``(version, length)`` watermarks they
were computed at.  On re-execution of a cached query whose driver source
only **grew** (sanctioned appends bump the version monotonically), the
plan's morsel-merge classification decides what happens:

* **delta** — the plan splits into morsel kernels (``parallel_ok``) whose
  partials merge associatively (rows-concat, scalar folds with the
  avg→sum+count decomposition, partial group tables through
  :class:`~repro.runtime.streaming.StreamingGroupAggregator`), so the
  already-compiled kernels run over only the ``[old_watermark,
  new_watermark)`` morsel range and fold into the cached partial state.
  Sort/top-n/limit/distinct tails re-apply managed-side on the merged
  core rows, exactly as under morsel parallelism.
* **full** — non-mergeable shapes (left/set-op builds, impure lambdas,
  unsupported aggregates, …) re-execute from scratch; the reason is
  surfaced on the ``query.recycle`` span and in ``explain_analyze()``.

Plain Python collections keep the original contract: entries are keyed
by object identity + length, so replaced collections and length changes
miss (and re-run) automatically.  **Out-of-band mutation remains
invisible for both kinds of source**: writing elements of a list in
place, or poking a StructArray's buffer directly (``arr.data[i] = ...``),
changes neither the length nor the version, so cached results go stale
silently — call :meth:`RecyclingProvider.invalidate` after any mutation
that bypasses the sanctioned ``append_rows`` / ``append_objects`` API,
exactly the contract the paper's recycler has with its update stream.

``REPRO_DELTA_RECYCLE=0`` disables the delta path (stale entries then
always re-execute fully) without touching plain recycling.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..analysis import expression_effects
from ..errors import ExecutionError
from ..expressions.canonical import CanonicalQuery, canonicalize
from ..expressions.nodes import Expr
from ..observability.metrics import METRICS
from ..observability.tracer import TRACER
from ..plans.optimizer import optimize
from ..plans.translate import translate
from ..plans.validate import parallel_split
from ..runtime.cancellation import CANCEL_PARAM
from ..runtime.parallel import (
    DEFAULT_MORSEL_ROWS,
    MORSEL_START,
    MORSEL_STOP,
    ParallelQuery,
)
from ..storage.struct_array import StructArray
from .provider import PARALLEL_ENGINES, QueryProvider, pin_sources

__all__ = ["RecyclingProvider", "RecyclerStats", "delta_recycling_enabled"]

#: runtime-plumbing parameters (cancellation token, morsel bounds) never
#: affect *what* a query computes, so they must not key the result cache —
#: a fresh per-request token would otherwise defeat recycling entirely
_EPHEMERAL_PARAMS = frozenset((CANCEL_PARAM, MORSEL_START, MORSEL_STOP))


def delta_recycling_enabled() -> bool:
    """The ``REPRO_DELTA_RECYCLE`` escape hatch (default: enabled)."""
    return os.environ.get("REPRO_DELTA_RECYCLE", "").strip() != "0"


@dataclass
class RecyclerStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: stale entries refreshed by running kernels over only the delta
    #: morsel range and merging with the cached partial state
    delta_hits: int = 0
    #: stale entries that had to re-execute from scratch (non-mergeable
    #: shape, non-growth change, or REPRO_DELTA_RECYCLE=0)
    full_reruns: int = 0
    #: superseded entries evicted when a newer entry for the same
    #: (engine, query, params, source identities) landed — e.g. a plain
    #: collection that grew, whose old-length entry can never hit again
    compactions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _DeltaState:
    """The pre-finalization partial state of one delta-mergeable entry."""

    artifact: ParallelQuery
    bindings: Dict[str, Any]
    #: mode-dependent: core rows (rows), merged slot list (scalar), or
    #: the flat merged group table (group) — each itself a valid partial
    state: Any


@dataclass
class _Entry:
    """One cached result: the materialized rows plus enough provenance
    (per-source watermarks, partial state) to refresh incrementally."""

    rows: List[Any]
    marks: Tuple[Any, ...]
    delta: Optional[_DeltaState] = None
    #: why this entry cannot refresh incrementally (shown on fallback)
    delta_reason: str = ""


def _freeze_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(value)
    return value


def _versioned(source: Any) -> bool:
    return isinstance(source, StructArray)


def _source_static(source: Any) -> tuple:
    """The per-source key component.

    Versioned arrays key by identity alone — their watermarks live on the
    entry, so growth maps to the *same* key and can refresh it in place.
    Plain collections keep identity + length: any length change is a new
    key (wholesale miss), the original recycler contract.
    """
    if _versioned(source):
        return ("v", id(source))
    try:
        length = len(source)
    except TypeError:
        length = -1
    return ("p", id(source), length)


def _source_mark(source: Any) -> Any:
    """The per-source watermark stored on the entry (None = unversioned,
    already pinned by the key)."""
    return source.watermark if _versioned(source) else None


class RecyclingProvider(QueryProvider):
    """A provider whose fully-evaluated results are themselves cached,
    and — over versioned sources — refreshed incrementally on growth."""

    def __init__(self, *args: Any, max_results: int = 128, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if max_results <= 0:
            raise ValueError("result cache size must be positive")
        self._max_results = max_results
        self._results: "OrderedDict[Any, _Entry]" = OrderedDict()
        self.recycler_stats = RecyclerStats()

    # -- key construction --------------------------------------------------------

    def _result_key(
        self, expr: Expr, sources: List[Any], engine: str, params: Dict[str, Any]
    ) -> Optional[Any]:
        key, _ = self._result_key_canonical(expr, sources, engine, params)
        return key

    def _result_key_canonical(
        self, expr: Expr, sources: List[Any], engine: str, params: Dict[str, Any]
    ) -> Tuple[Optional[Any], Optional[CanonicalQuery]]:
        effects = expression_effects(expr)
        if effects.nondeterministic:
            # a lambda that reads the clock/RNG can return a different
            # value per run; replaying a cached result would be a lie
            METRICS.counter("recycler.nondeterministic_skips").add()
            return None, None
        canonical = canonicalize(expr)
        merged = {
            k: v
            for k, v in {**canonical.bindings, **params}.items()
            if k not in _EPHEMERAL_PARAMS
        }
        try:
            frozen_params = tuple(
                sorted((k, _freeze_value(v)) for k, v in merged.items())
            )
        except TypeError:
            return None, None  # unhashable parameter: not recyclable
        statics = tuple(_source_static(s) for s in sources)
        key = (engine, canonical.key, frozen_params, statics)
        try:
            hash(key)
        except TypeError:
            return None, None  # unhashable parameter value: not recyclable
        return key, canonical

    # -- provider surface ------------------------------------------------------------

    def execute(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
        adaptive: Any = None,
    ) -> Iterator[Any]:
        # parallelism is deliberately absent from the result key: parallel
        # results are bit-identical to sequential ones, so recycling
        # across worker counts is sound
        key, canonical = self._result_key_canonical(expr, sources, engine, params)
        if key is None:
            return super().execute(
                expr, sources, engine, params, parallelism, morsel_size,
                **({} if adaptive is None else {"adaptive": adaptive}),
            )
        rows = self._recycled(
            key, canonical, expr, sources, engine, params,
            parallelism, morsel_size, adaptive, scalar=False,
        )
        return iter(rows)

    def execute_scalar(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
        adaptive: Any = None,
    ) -> Any:
        key, canonical = self._result_key_canonical(expr, sources, engine, params)
        if key is None:
            return super().execute_scalar(
                expr, sources, engine, params, parallelism, morsel_size,
                **({} if adaptive is None else {"adaptive": adaptive}),
            )
        rows = self._recycled(
            key, canonical, expr, sources, engine, params,
            parallelism, morsel_size, adaptive, scalar=True,
        )
        return rows[0]

    # -- the recycled execution body --------------------------------------------

    def _recycled(
        self,
        key: Any,
        canonical: CanonicalQuery,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int],
        morsel_size: Optional[int],
        adaptive: Any,
        scalar: bool,
    ) -> List[Any]:
        # pin every live versioned array *before* reading watermarks: the
        # watermarks stored on the entry then describe exactly the prefix
        # the kernels saw, even with writers appending concurrently
        pinned = pin_sources(sources)
        marks = tuple(_source_mark(s) for s in pinned)
        entry = self._results.get(key)
        if entry is not None and entry.marks == marks:
            self._results.move_to_end(key)
            self.recycler_stats.hits += 1
            METRICS.counter("recycler.hits").add()
            with TRACER.span("query.recycle", mode="hit", reason=""):
                pass
            return entry.rows
        if entry is not None:
            refreshed = self._refresh(
                key, entry, pinned, marks, params,
                parallelism, morsel_size, scalar,
            )
            if refreshed is not None:
                return refreshed
            # fall through: full re-execution replaces the stale entry
            return self._materialize(
                key, canonical, expr, pinned, engine, params,
                parallelism, morsel_size, adaptive, scalar, marks,
                mode="full",
                reason=self._fallback_reason(entry, pinned, marks),
            )
        self.recycler_stats.misses += 1
        METRICS.counter("recycler.misses").add()
        return self._materialize(
            key, canonical, expr, pinned, engine, params,
            parallelism, morsel_size, adaptive, scalar, marks,
            mode="miss", reason="",
        )

    def _refresh(
        self,
        key: Any,
        entry: _Entry,
        pinned: List[Any],
        marks: Tuple[Any, ...],
        params: Dict[str, Any],
        parallelism: Optional[int],
        morsel_size: Optional[int],
        scalar: bool,
    ) -> Optional[List[Any]]:
        """Refresh a stale entry from its partial state, or None if only a
        full re-execution is sound."""
        delta = entry.delta
        if delta is None or not delta_recycling_enabled():
            return None
        window = self._growth_window(entry, delta.artifact, pinned, marks)
        if window is None:
            return None
        old_len, new_len = window
        artifact = delta.artifact
        workers = self._resolve_parallelism(parallelism)
        morsel = morsel_size or DEFAULT_MORSEL_ROWS
        merged = {**delta.bindings, **params}
        with TRACER.span(
            "query.recycle", mode="delta", reason="",
            window_start=old_len, window_stop=new_len,
        ):
            with TRACER.span("query.execute", parallel=True):
                partials = artifact.run_window(
                    pinned, merged, workers, morsel, start=old_len, stop=new_len
                )
                with TRACER.span("parallel.merge", mode=artifact.mode):
                    if artifact.mode == "scalar":
                        state = artifact.merge_scalar_slots(
                            [delta.state] + partials
                        )
                        rows = [artifact.finalize_scalar(state, merged)]
                    elif artifact.mode == "group":
                        state = artifact.merge_group_table(
                            [delta.state] + partials
                        )
                        rows = artifact.apply_post_ops(
                            artifact.finalize_group_table(state, merged), merged
                        )
                    else:
                        state = delta.state + [
                            row for part in partials for row in part
                        ]
                        rows = artifact.apply_post_ops(list(state), merged)
        entry.rows = rows
        entry.marks = marks
        entry.delta = _DeltaState(artifact, delta.bindings, state)
        self._results.move_to_end(key)
        self.recycler_stats.delta_hits += 1
        METRICS.counter("recycler.delta_hits").add()
        return rows

    def _growth_window(
        self,
        entry: _Entry,
        artifact: ParallelQuery,
        pinned: List[Any],
        marks: Tuple[Any, ...],
    ) -> Optional[Tuple[int, int]]:
        """``[old_watermark, new_watermark)`` of the driver, or None when
        the change was not growth-only."""
        driver = artifact.morsel_ordinal
        for i, (old, now) in enumerate(zip(entry.marks, marks)):
            if i == driver:
                continue
            if old != now:
                return None  # a non-driver source changed: not a pure delta
        old, now = entry.marks[driver], marks[driver]
        if old is None or now is None:
            return None
        old_version, old_len = old
        new_version, new_len = now
        if new_version <= old_version or new_len < old_len:
            return None  # replaced/rewound, not grown
        return old_len, new_len

    def _fallback_reason(
        self, entry: _Entry, pinned: List[Any], marks: Tuple[Any, ...]
    ) -> str:
        if entry.delta is None:
            return entry.delta_reason or "plan is not delta-mergeable"
        if not delta_recycling_enabled():
            return "delta recycling disabled (REPRO_DELTA_RECYCLE=0)"
        if self._growth_window(entry, entry.delta.artifact, pinned, marks) is None:
            return "source change was not growth-only"
        return "delta path unavailable"

    def _materialize(
        self,
        key: Any,
        canonical: CanonicalQuery,
        expr: Expr,
        pinned: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int],
        morsel_size: Optional[int],
        adaptive: Any,
        scalar: bool,
        marks: Tuple[Any, ...],
        mode: str,
        reason: str,
    ) -> List[Any]:
        """Cold execution that also captures partial state when the plan
        is delta-mergeable, so the *next* growth refreshes incrementally."""
        if mode == "full":
            self.recycler_stats.full_reruns += 1
            METRICS.counter("recycler.full_reruns").add()
        artifact, bindings, delta_reason = self._delta_artifact(
            expr, pinned, engine, scalar, canonical
        )
        with TRACER.span("query.recycle", mode=mode, reason=reason):
            if artifact is None:
                if scalar:
                    rows = [
                        super().execute_scalar(
                            expr, pinned, engine, params,
                            parallelism, morsel_size,
                            **({} if adaptive is None else {"adaptive": adaptive}),
                        )
                    ]
                else:
                    rows = list(
                        super().execute(
                            expr, pinned, engine, params,
                            parallelism, morsel_size,
                            **({} if adaptive is None else {"adaptive": adaptive}),
                        )
                    )
                entry = _Entry(rows, marks, None, delta_reason)
            else:
                workers = self._resolve_parallelism(parallelism)
                morsel = morsel_size or DEFAULT_MORSEL_ROWS
                merged = {**bindings, **params}
                with TRACER.span("query.execute", parallel=True):
                    partials = artifact.run_window(pinned, merged, workers, morsel)
                    with TRACER.span("parallel.merge", mode=artifact.mode):
                        if artifact.mode == "scalar":
                            state = artifact.merge_scalar_slots(partials)
                            rows = [artifact.finalize_scalar(state, merged)]
                        elif artifact.mode == "group":
                            state = artifact.merge_group_table(partials)
                            rows = artifact.apply_post_ops(
                                artifact.finalize_group_table(state, merged),
                                merged,
                            )
                        else:
                            state = [row for part in partials for row in part]
                            rows = artifact.apply_post_ops(list(state), merged)
                entry = _Entry(rows, marks, _DeltaState(artifact, bindings, state))
        self._store(key, entry)
        return rows

    def _delta_artifact(
        self,
        expr: Expr,
        pinned: List[Any],
        engine: str,
        scalar: bool,
        canonical: CanonicalQuery,
    ) -> Tuple[Optional[ParallelQuery], Dict[str, Any], str]:
        """The morsel artifact powering incremental refresh, or (None,
        bindings, reason) when this query must recycle wholesale.

        The sequential artifact always compiles first — exact error
        parity with the plain provider (a query the engine rejects is
        rejected identically whether or not it recycles).
        """
        if engine == "linq":
            # the interpreted baseline never compiles; recycle wholesale
            return None, canonical.bindings, "engine 'linq' emits no morsel kernels"
        compiled, bindings = self._compiled_for(
            expr, pinned, engine, canonical=canonical
        )
        if compiled.scalar != scalar:
            # match the plain provider's misuse errors exactly
            if scalar:
                raise ExecutionError("not a scalar query")
            raise ExecutionError(
                "this query is a scalar aggregate; use the terminal method"
            )
        if not delta_recycling_enabled():
            return None, bindings, "delta recycling disabled (REPRO_DELTA_RECYCLE=0)"
        if engine not in PARALLEL_ENGINES:
            return (
                None,
                bindings,
                f"engine {engine!r} emits no morsel kernels",
            )
        if not any(_versioned(s) for s in pinned):
            # plain collections recycle wholesale (length-keyed); don't
            # pay morsel-kernel compilation for sources that cannot grow
            # in a version-observable way
            return None, bindings, "no versioned StructArray sources"
        artifact = self._parallel_for(expr, pinned, engine, 2)
        if artifact is None or artifact.scalar != scalar:
            return None, bindings, self._split_reason(canonical)
        driver = pinned[artifact.morsel_ordinal]
        if not _versioned(driver):
            return None, bindings, "driver source is not a versioned StructArray"
        return artifact, bindings, ""

    def _split_reason(self, canonical: CanonicalQuery) -> str:
        """Why parallel_split refused morsel kernels (= why no delta)."""
        try:
            plan = optimize(
                translate(canonical.tree, self.translate_options),
                self.optimize_options,
                statistics=self._statistics,
                param_values=canonical.bindings,
            )
            split = parallel_split(plan)
            if split.reasons:
                return split.reasons[0]
        except Exception:  # noqa: BLE001 - the reason is advisory
            pass
        return "plan has no morsel-mergeable split"

    # -- maintenance -----------------------------------------------------------------

    def _store(self, key: Any, entry: _Entry) -> None:
        self._compact(key)
        self._results[key] = entry
        self._results.move_to_end(key)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)

    def _compact(self, key: Any) -> None:
        """Evict entries this one supersedes.

        A plain collection keys by (identity, length), so growth lands on
        a *new* key while the old-length entry — rows and partial state —
        lingers until LRU pressure.  Versioned arrays refresh in place
        (identity-only key), so only the plain-source statics can differ:
        any cached entry for the same engine, canonical query, params,
        and source identities with different statics can never hit again
        and is dropped now, not ``max_results`` queries later.
        """
        engine, canonical_key, frozen_params, statics = key
        idents = tuple(static[1] for static in statics)
        superseded = [
            k
            for k in self._results
            if k != key
            and k[0] == engine
            and k[1] == canonical_key
            and k[2] == frozen_params
            and tuple(static[1] for static in k[3]) == idents
        ]
        for k in superseded:
            del self._results[k]
        if superseded:
            self.recycler_stats.compactions += len(superseded)
            METRICS.counter("recycler.compactions").add(len(superseded))

    def invalidate(self, source: Any = None) -> int:
        """Drop cached results (for *source*, or everything).

        Call after mutating elements out of band — in-place list element
        writes or direct buffer pokes bypass both the length fingerprint
        and the version counter, so no automatic path can observe them.
        """
        if source is None:
            dropped = len(self._results)
            self._results.clear()
        else:
            marker = id(source)
            doomed = [
                key
                for key in self._results
                if any(static[1] == marker for static in key[3])
            ]
            for key in doomed:
                del self._results[key]
            dropped = len(doomed)
        self.recycler_stats.invalidations += dropped
        METRICS.counter("recycler.invalidations").add(dropped)
        return dropped

    @property
    def cached_results(self) -> int:
        return len(self._results)
