"""Query result recycling — a §9 future-work extension.

The paper's conclusion lists "query result caching [15]" (Nagel, Boncz,
Viglas: *Recycling in pipelined query evaluation*) as a further
optimization beyond compiled-code caching.  The code cache amortizes
*compilation*; the recycler amortizes *evaluation*: a repeated query with
identical parameters over unchanged sources returns the materialized
result without running at all.

Because Python collections are freely mutable, source identity alone is
not enough; entries are keyed by the canonical query, the exact parameter
bindings, and a per-source *fingerprint* (object identity + length).
Length changes and replaced collections invalidate automatically; in-place
element mutation does not — call :meth:`RecyclingProvider.invalidate`
after mutating elements, exactly the contract the paper's recycler has
with its update stream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..analysis import expression_effects
from ..expressions.canonical import canonicalize
from ..expressions.nodes import Expr
from ..observability.metrics import METRICS
from ..runtime.cancellation import CANCEL_PARAM
from ..runtime.parallel import MORSEL_START, MORSEL_STOP
from .provider import QueryProvider

__all__ = ["RecyclingProvider", "RecyclerStats"]

#: runtime-plumbing parameters (cancellation token, morsel bounds) never
#: affect *what* a query computes, so they must not key the result cache —
#: a fresh per-request token would otherwise defeat recycling entirely
_EPHEMERAL_PARAMS = frozenset((CANCEL_PARAM, MORSEL_START, MORSEL_STOP))


@dataclass
class RecyclerStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _freeze_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(value)
    return value


def _source_fingerprint(source: Any) -> tuple:
    try:
        length = len(source)
    except TypeError:
        length = -1
    return (id(source), length)


class RecyclingProvider(QueryProvider):
    """A provider whose fully-evaluated results are themselves cached."""

    def __init__(self, *args: Any, max_results: int = 128, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if max_results <= 0:
            raise ValueError("result cache size must be positive")
        self._max_results = max_results
        self._results: "OrderedDict[Any, List[Any]]" = OrderedDict()
        self.recycler_stats = RecyclerStats()

    # -- key construction --------------------------------------------------------

    def _result_key(
        self, expr: Expr, sources: List[Any], engine: str, params: Dict[str, Any]
    ) -> Optional[Any]:
        effects = expression_effects(expr)
        if effects.nondeterministic:
            # a lambda that reads the clock/RNG can return a different
            # value per run; replaying a cached result would be a lie
            METRICS.counter("recycler.nondeterministic_skips").add()
            return None
        canonical = canonicalize(expr)
        merged = {
            k: v
            for k, v in {**canonical.bindings, **params}.items()
            if k not in _EPHEMERAL_PARAMS
        }
        try:
            frozen_params = tuple(
                sorted((k, _freeze_value(v)) for k, v in merged.items())
            )
        except TypeError:
            return None  # unhashable parameter: not recyclable
        fingerprints = tuple(_source_fingerprint(s) for s in sources)
        key = (engine, canonical.key, frozen_params, fingerprints)
        try:
            hash(key)
        except TypeError:
            return None  # unhashable parameter value: not recyclable
        return key

    # -- provider surface ------------------------------------------------------------

    def execute(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
    ) -> Iterator[Any]:
        # parallelism is deliberately absent from the result key: parallel
        # results are bit-identical to sequential ones, so recycling
        # across worker counts is sound
        key = self._result_key(expr, sources, engine, params)
        if key is None:
            return super().execute(
                expr, sources, engine, params, parallelism, morsel_size
            )
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self.recycler_stats.hits += 1
            METRICS.counter("recycler.hits").add()
            return iter(cached)
        self.recycler_stats.misses += 1
        METRICS.counter("recycler.misses").add()
        materialized = list(
            super().execute(
                expr, sources, engine, params, parallelism, morsel_size
            )
        )
        self._store(key, materialized)
        return iter(materialized)

    def execute_scalar(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
    ) -> Any:
        key = self._result_key(expr, sources, engine, params)
        if key is None:
            return super().execute_scalar(
                expr, sources, engine, params, parallelism, morsel_size
            )
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self.recycler_stats.hits += 1
            METRICS.counter("recycler.hits").add()
            return cached[0]
        self.recycler_stats.misses += 1
        METRICS.counter("recycler.misses").add()
        value = super().execute_scalar(
            expr, sources, engine, params, parallelism, morsel_size
        )
        self._store(key, [value])
        return value

    # -- maintenance -----------------------------------------------------------------

    def _store(self, key: Any, result: List[Any]) -> None:
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)

    def invalidate(self, source: Any = None) -> int:
        """Drop cached results (for *source*, or everything).

        Call after mutating elements of a collection in place — the
        fingerprint cannot observe that.
        """
        if source is None:
            dropped = len(self._results)
            self._results.clear()
        else:
            marker = id(source)
            doomed = [
                key
                for key in self._results
                if any(fp[0] == marker for fp in key[3])
            ]
            for key in doomed:
                del self._results[key]
            dropped = len(doomed)
        self.recycler_stats.invalidations += dropped
        METRICS.counter("recycler.invalidations").add(dropped)
        return dropped

    @property
    def cached_results(self) -> int:
        return len(self._results)
