"""The LINQ-style query surface.

A :class:`Query` is an immutable description of a computation over one or
more in-memory sources.  Every operator method returns a *new* Query whose
expression tree has grown by one ``QueryOp`` — nothing executes until the
application consumes the result (LINQ's *deferred execution*, §2.1).

Consumption (iteration, ``to_list``, terminal aggregates) routes through a
:class:`~repro.query.provider.QueryProvider`, which picks an execution
strategy:

=================  ===========================================================
engine             paper analogue
=================  ===========================================================
``linq``           LINQ-to-objects: interpreted operator-at-a-time pipeline
``compiled``       §4  generated host-language (Python) code
``native``         §5  generated vectorized code over arrays of structs
``hybrid``         §6.1.1  staged to native buffers, full materialization
``hybrid_buffered``§6.1.2  staged page-by-page, fixed footprint
=================  ===========================================================

Wrapping a collection (``QList``, :func:`from_iterable`,
:func:`from_struct_array`) is the only application-code change required —
the paper's transparency story.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import ExecutionError, TranslationError
from ..expressions.builder import trace_lambda, unwrap
from ..expressions.nodes import Expr, Lambda, New, QueryOp, SourceExpr
from ..expressions.visitor import Transformer
from ..storage.struct_array import StructArray

__all__ = ["Query", "QList", "from_iterable", "from_struct_array"]

DEFAULT_ENGINE = "compiled"


class _OffsetSources(Transformer):
    """Shifts every SourceExpr ordinal by a fixed offset (for query merging)."""

    def __init__(self, offset: int):
        self._offset = offset

    def visit_SourceExpr(self, expr: SourceExpr) -> SourceExpr:
        if self._offset == 0:
            return expr
        return SourceExpr(expr.ordinal + self._offset, expr.schema_token)


def _default_expr(default: Any) -> Expr:
    """The default-element expression for a left outer join.

    A dict describes a record (field → value/param); anything else is a
    scalar element.  Values pass through :func:`unwrap`, so ``P("name")``
    parameters work in either position.
    """
    if isinstance(default, dict):
        return New(tuple((name, unwrap(value)) for name, value in default.items()))
    return unwrap(default)


def _source_token(items: Sequence[Any], explicit: Optional[str]) -> str:
    if explicit:
        return explicit
    if isinstance(items, StructArray):
        return items.schema.token
    for item in items:
        return f"obj:{type(item).__qualname__}"
    return "obj:empty"


class Query:
    """An immutable, composable, lazily-executed query."""

    __slots__ = (
        "expr",
        "sources",
        "engine",
        "params",
        "parallelism",
        "morsel_size",
        "trace",
        "adaptive",
        "distributed_workers",
        "_provider",
    )

    def __init__(
        self,
        expr: Expr,
        sources: tuple,
        engine: str = DEFAULT_ENGINE,
        params: Optional[Dict[str, Any]] = None,
        provider: Any = None,
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
        trace: Optional[bool] = None,
        adaptive: Any = None,
        distributed: Optional[int] = None,
    ):
        self.expr = expr
        self.sources = sources
        self.engine = engine
        self.params = dict(params or {})
        self.parallelism = parallelism
        self.morsel_size = morsel_size
        self.trace = trace
        self.adaptive = adaptive
        self.distributed_workers = distributed
        self._provider = provider

    # -- construction helpers ---------------------------------------------------

    def _chain(self, name: str, *args: Expr) -> "Query":
        return self._replace(expr=QueryOp(name, self.expr, tuple(args)))

    def _replace(self, **kw: Any) -> "Query":
        return Query(
            expr=kw.get("expr", self.expr),
            sources=kw.get("sources", self.sources),
            engine=kw.get("engine", self.engine),
            params=kw.get("params", self.params),
            provider=kw.get("provider", self._provider),
            parallelism=kw.get("parallelism", self.parallelism),
            morsel_size=kw.get("morsel_size", self.morsel_size),
            trace=kw.get("trace", self.trace),
            adaptive=kw.get("adaptive", self.adaptive),
            distributed=kw.get("distributed", self.distributed_workers),
        )

    def _merge(self, other: "Query") -> tuple:
        """Renumber *other*'s sources after ours; return its shifted expr."""
        shifted = _OffsetSources(len(self.sources)).visit(other.expr)
        return shifted, self.sources + other.sources, {**other.params, **self.params}

    # -- configuration ------------------------------------------------------------

    def using(
        self,
        engine: str,
        provider: Any = None,
        parallelism: Optional[int] = None,
        trace: Optional[bool] = None,
        adaptive: Any = None,
        distributed: Optional[int] = None,
    ) -> "Query":
        """Select the execution strategy (and optionally a shared provider,
        a worker count for morsel-driven parallel execution, and a
        per-query tracing override).

        ``trace=True`` records lifecycle spans for this query even when
        ``REPRO_TRACE`` is off (inspect them via
        ``repro.observability.TRACER.spans()``); ``trace=False`` silences
        an otherwise-enabled tracer for this query.  ``None`` (default)
        defers to the process-wide switch.

        ``adaptive=True`` lets the provider's profile-driven chooser pick
        engine, parallelism, and morsel size per run (``False`` forces
        the static path even when ``REPRO_ADAPTIVE`` is on; an
        :class:`~repro.adaptive.AdaptiveController` instance scopes the
        profiles to that controller's store).  Answers never change —
        only the execution configuration does.

        ``distributed=N`` (N ≥ 2) runs eligible queries on N worker
        *processes* — sharded multi-process execution (DESIGN.md §16);
        ``distributed=0`` forces in-process execution even when
        ``REPRO_DISTRIBUTED`` is on.  Queries outside the distributable
        fragment fall back to thread/sequential execution unchanged.
        """
        return self._replace(
            engine=engine,
            provider=provider or self._provider,
            parallelism=(
                parallelism if parallelism is not None else self.parallelism
            ),
            trace=trace if trace is not None else self.trace,
            adaptive=adaptive if adaptive is not None else self.adaptive,
            distributed=(
                distributed
                if distributed is not None
                else self.distributed_workers
            ),
        )

    def in_parallel(
        self, workers: int, morsel_size: Optional[int] = None
    ) -> "Query":
        """Execute with *workers* threads over fixed-size morsels.

        Results are exactly those of sequential execution; queries outside
        the parallel-safe fragment silently run sequentially.
        ``workers=1`` restores plain sequential execution.
        """
        return self._replace(parallelism=workers, morsel_size=morsel_size)

    def distributed(self, workers: int = 2) -> "Query":
        """Execute on *workers* worker processes over table shards.

        The provider compiles once, broadcasts the artifact, scatters
        contiguous shards of the driving table, and merges the partials
        with the same algebra thread-parallel execution uses — results
        are exactly those of sequential execution.  Queries outside the
        distributable fragment (and non-StructArray sources) silently
        fall back to the thread tier; ``workers=0`` forces in-process
        execution even when ``REPRO_DISTRIBUTED`` is on.
        """
        return self._replace(distributed=workers)

    def _adaptive_kwargs(self) -> Dict[str, Any]:
        """Forward ``adaptive``/``distributed`` only when set: custom
        providers that predate those layers keep working, and the
        default provider still honours ``REPRO_ADAPTIVE`` /
        ``REPRO_DISTRIBUTED`` on its own."""
        kwargs: Dict[str, Any] = {}
        if self.adaptive is not None:
            kwargs["adaptive"] = self.adaptive
        if self.distributed_workers is not None:
            kwargs["distributed"] = self.distributed_workers
        return kwargs

    def with_params(self, **params: Any) -> "Query":
        """Bind values for :func:`~repro.expressions.builder.P` parameters."""
        return self._replace(params={**self.params, **params})

    @property
    def provider(self):
        if self._provider is None:
            from .provider import default_provider

            return default_provider()
        return self._provider

    # -- standard query operators ---------------------------------------------

    def where(self, predicate: Callable) -> "Query":
        """Keep elements for which *predicate* holds."""
        return self._chain("where", trace_lambda(predicate))

    def select(self, selector: Callable) -> "Query":
        """Map each element through *selector*."""
        return self._chain("select", trace_lambda(selector, group_params=(0,)))

    def select_many(
        self, collection: Callable, result: Optional[Callable] = None
    ) -> "Query":
        """Flatten a per-element collection; optional 2-ary result selector."""
        args = [trace_lambda(collection)]
        if result is not None:
            args.append(trace_lambda(result, arity=2))
        return self._chain("select_many", *args)

    def join(
        self,
        inner: "Query",
        outer_key: Callable,
        inner_key: Callable,
        result: Callable,
    ) -> "Query":
        """Hash equi-join with *inner* (build side)."""
        if not isinstance(inner, Query):
            raise TranslationError("join inner source must be a Query")
        inner_expr, sources, params = self._merge(inner)
        expr = QueryOp(
            "join",
            self.expr,
            (
                inner_expr,
                trace_lambda(outer_key),
                trace_lambda(inner_key),
                trace_lambda(result, arity=2),
            ),
        )
        return self._replace(expr=expr, sources=sources, params=params)

    def left_outer_join(
        self,
        inner: "Query",
        outer_key: Callable,
        inner_key: Callable,
        result: Callable,
        default: Any,
    ) -> "Query":
        """Left outer equi-join: unmatched outer elements pair with
        *default* (LINQ's ``GroupJoin``+``DefaultIfEmpty`` idiom).

        The type system has no nulls, so *default* supplies the stand-in
        right element explicitly — a dict of field values for record
        elements (``{"okey": 0}``) or a plain value for scalar elements.
        """
        if not isinstance(inner, Query):
            raise TranslationError("left_outer_join inner source must be a Query")
        inner_expr, sources, params = self._merge(inner)
        expr = QueryOp(
            "left_outer_join",
            self.expr,
            (
                inner_expr,
                trace_lambda(outer_key),
                trace_lambda(inner_key),
                trace_lambda(result, arity=2),
                _default_expr(default),
            ),
        )
        return self._replace(expr=expr, sources=sources, params=params)

    def join_semi(
        self, inner: "Query", outer_key: Callable, inner_key: Callable
    ) -> "Query":
        """Keep outer elements with at least one key match in *inner*
        (``EXISTS``); output elements are the outer elements unchanged."""
        return self._existence_join("join_semi", inner, outer_key, inner_key)

    def join_anti(
        self, inner: "Query", outer_key: Callable, inner_key: Callable
    ) -> "Query":
        """Keep outer elements with *no* key match in *inner*
        (``NOT EXISTS``); output elements are the outer elements unchanged."""
        return self._existence_join("join_anti", inner, outer_key, inner_key)

    def _existence_join(
        self, name: str, inner: "Query", outer_key: Callable, inner_key: Callable
    ) -> "Query":
        if not isinstance(inner, Query):
            raise TranslationError(f"{name} inner source must be a Query")
        inner_expr, sources, params = self._merge(inner)
        expr = QueryOp(
            name,
            self.expr,
            (inner_expr, trace_lambda(outer_key), trace_lambda(inner_key)),
        )
        return self._replace(expr=expr, sources=sources, params=params)

    def group_by(self, key: Callable, result: Optional[Callable] = None) -> "Query":
        """Group by *key*; optional group result selector (sees ``g.key``,
        ``g.sum(...)``, ``g.count()``, ...)."""
        args = [trace_lambda(key)]
        if result is not None:
            args.append(trace_lambda(result, group_params=(0,)))
        return self._chain("group_by", *args)

    def order_by(self, key: Callable) -> "Query":
        return self._chain("order_by", trace_lambda(key))

    def order_by_desc(self, key: Callable) -> "Query":
        return self._chain("order_by_desc", trace_lambda(key))

    def then_by(self, key: Callable) -> "Query":
        return self._chain("then_by", trace_lambda(key))

    def then_by_desc(self, key: Callable) -> "Query":
        return self._chain("then_by_desc", trace_lambda(key))

    def take(self, count: Any) -> "Query":
        return self._chain("take", unwrap(count))

    def skip(self, count: Any) -> "Query":
        return self._chain("skip", unwrap(count))

    def distinct(self) -> "Query":
        return self._chain("distinct")

    def concat(self, other: "Query") -> "Query":
        other_expr, sources, params = self._merge(other)
        expr = QueryOp("concat", self.expr, (other_expr,))
        return self._replace(expr=expr, sources=sources, params=params)

    def union(self, other: "Query", all: bool = False) -> "Query":
        """Set union with duplicate elimination (SQL ``UNION``).

        Historically this method's bag/set behaviour was undocumented; it
        has always deduplicated and now says so.  ``all=True`` is a
        deprecated spelling of :meth:`union_all` kept for one release.
        """
        if all:
            import warnings

            warnings.warn(
                "union(other, all=True) is deprecated; use union_all(other)",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.union_all(other)
        return self._binary_setop("union", other)

    def union_all(self, other: "Query") -> "Query":
        """Bag union (SQL ``UNION ALL``): every element of both inputs,
        duplicates preserved — an alias of :meth:`concat` in LINQ terms."""
        return self._binary_setop("union_all", other)

    def intersect(self, other: "Query") -> "Query":
        """Bag intersection (SQL ``INTERSECT ALL``): each element keeps
        ``min(l, r)`` copies, in this query's order."""
        return self._binary_setop("intersect", other)

    def except_(self, other: "Query") -> "Query":
        """Bag difference (SQL ``EXCEPT ALL``): each element keeps
        ``max(0, l - r)`` copies, in this query's order."""
        return self._binary_setop("except_", other)

    def _binary_setop(self, name: str, other: "Query") -> "Query":
        if not isinstance(other, Query):
            raise TranslationError(f"{name} operand must be a Query")
        other_expr, sources, params = self._merge(other)
        expr = QueryOp(name, self.expr, (other_expr,))
        return self._replace(expr=expr, sources=sources, params=params)

    # -- execution (deferred until here) ------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        if self.trace is None:
            return self.provider.execute(
                self.expr,
                list(self.sources),
                self.engine,
                self.params,
                parallelism=self.parallelism,
                morsel_size=self.morsel_size,
                **self._adaptive_kwargs(),
            )
        from ..observability.tracer import TRACER

        # a per-query trace override must cover the drain, not just the
        # dispatch — materialize inside the scope (the execute span is
        # recorded at iterator exhaustion)
        with TRACER.scope(self.trace):
            return iter(
                list(
                    self.provider.execute(
                        self.expr,
                        list(self.sources),
                        self.engine,
                        self.params,
                        parallelism=self.parallelism,
                        morsel_size=self.morsel_size,
                        **self._adaptive_kwargs(),
                    )
                )
            )

    def to_list(self) -> List[Any]:
        """Run the query and materialize every result element."""
        return list(self)

    def explain(self) -> str:
        """What *would* run: the optimized logical plan, the chosen
        engine, its capability verdict (with fallback reasons), and the
        morsel-parallelism decision.  The first line is the plan root.
        """
        from ..observability.explain import explain_report

        return explain_report(
            self.provider,
            self.expr,
            list(self.sources),
            self.engine,
            parallelism=self.parallelism,
            adaptive=self.adaptive,
            distributed=self.distributed_workers,
        ).render()

    def explain_analyze(self) -> Any:
        """What actually ran: **executes the query** and returns an
        :class:`~repro.observability.explain.ExplainAnalysis` — the plan
        annotated with measured per-phase wall times, the result row
        count, compiled-code cache status, and (under parallel
        execution) the morsel dispatch/merge accounting.  ``str()`` it
        for the rendered report.
        """
        from ..observability.explain import explain_analyze

        return explain_analyze(
            self.provider,
            self.expr,
            list(self.sources),
            self.engine,
            self.params,
            parallelism=self.parallelism,
            morsel_size=self.morsel_size,
            adaptive=self.adaptive,
            distributed=self.distributed_workers,
        )

    # -- terminal scalar aggregates (single compiled pass) -------------------------

    def _scalar(self, name: str, *args: Expr) -> Any:
        expr = QueryOp(name, self.expr, tuple(args))
        if self.trace is None:
            return self.provider.execute_scalar(
                expr,
                list(self.sources),
                self.engine,
                self.params,
                parallelism=self.parallelism,
                morsel_size=self.morsel_size,
                **self._adaptive_kwargs(),
            )
        from ..observability.tracer import TRACER

        with TRACER.scope(self.trace):
            return self.provider.execute_scalar(
                expr,
                list(self.sources),
                self.engine,
                self.params,
                parallelism=self.parallelism,
                morsel_size=self.morsel_size,
                **self._adaptive_kwargs(),
            )

    def count(self, predicate: Optional[Callable] = None) -> int:
        args = (trace_lambda(predicate),) if predicate else ()
        return self._scalar("count", *args)

    def sum(self, selector: Optional[Callable] = None) -> Any:
        args = (trace_lambda(selector),) if selector else ()
        return self._scalar("sum", *args)

    def min(self, selector: Optional[Callable] = None) -> Any:
        args = (trace_lambda(selector),) if selector else ()
        return self._scalar("min", *args)

    def max(self, selector: Optional[Callable] = None) -> Any:
        args = (trace_lambda(selector),) if selector else ()
        return self._scalar("max", *args)

    def average(self, selector: Optional[Callable] = None) -> Any:
        args = (trace_lambda(selector),) if selector else ()
        return self._scalar("average", *args)

    # -- terminal element accessors (pull lazily from the result) -------------------

    def first(self, predicate: Optional[Callable] = None) -> Any:
        """First (matching) element; raises when none exists."""
        source = self.where(predicate) if predicate else self
        for element in source:
            return element
        raise ExecutionError("sequence contains no matching element")

    def first_or_default(
        self, predicate: Optional[Callable] = None, default: Any = None
    ) -> Any:
        source = self.where(predicate) if predicate else self
        for element in source:
            return element
        return default

    def any(self, predicate: Optional[Callable] = None) -> bool:
        source = self.where(predicate) if predicate else self
        for _ in source:
            return True
        return False

    def all(self, predicate: Callable) -> bool:
        inverted = trace_lambda(predicate)
        from ..expressions.nodes import Unary

        negated = Lambda(
            inverted.params, Unary("not", inverted.body), inverted.effects
        )
        return not self._replace(
            expr=QueryOp("where", self.expr, (negated,))
        ).any()

    def contains(self, value: Any) -> bool:
        for element in self:
            if element == value:
                return True
        return False

    def single(self, predicate: Optional[Callable] = None) -> Any:
        """The only (matching) element; raises unless exactly one exists."""
        source = self.where(predicate) if predicate else self
        found = _MISSING
        for element in source:
            if found is not _MISSING:
                raise ExecutionError("sequence contains more than one element")
            found = element
        if found is _MISSING:
            raise ExecutionError("sequence contains no matching element")
        return found

    def element_at(self, index: int) -> Any:
        """The element at *index* (0-based); raises when out of range."""
        if index < 0:
            raise ExecutionError("element_at index must be non-negative")
        for position, element in enumerate(self):
            if position == index:
                return element
        raise ExecutionError(f"sequence has no element at index {index}")

    def reverse(self) -> List[Any]:
        """The materialized result in reverse order (LINQ's Reverse is
        blocking, so this terminal form is equivalent)."""
        materialized = self.to_list()
        materialized.reverse()
        return materialized

    def to_dict(self, key: Callable, value: Optional[Callable] = None) -> Dict:
        """Materialize into a dict; raises on duplicate keys (like LINQ's
        ToDictionary).  *key*/*value* are plain Python callables applied to
        result elements — the query itself has already run."""
        result: Dict[Any, Any] = {}
        for element in self:
            k = key(element)
            if k in result:
                raise ExecutionError(f"duplicate key in to_dict: {k!r}")
            result[k] = value(element) if value else element
        return result

    def aggregate(self, seed: Any, fn: Callable[[Any, Any], Any]) -> Any:
        """Left fold over the result with a plain Python function."""
        accumulator = seed
        for element in self:
            accumulator = fn(accumulator, element)
        return accumulator

    def __repr__(self) -> str:
        return f"Query(engine={self.engine!r}, sources={len(self.sources)})"


_MISSING = object()


class QList(list):
    """A list whose queries route through the compilation provider.

    The paper's ``QList<T>``: "application code does not need to be
    modified more than replacing the C# collection classes with their
    functionally-equivalent wrapper collections" (§3).

    An optional :class:`~repro.storage.schema.Schema` declares the flat
    native layout of the elements, sparing the hybrid engine its sampling
    inference (C# gets this from reflection; Python must be told).
    """

    def __init__(
        self,
        items: Iterable[Any] = (),
        token: Optional[str] = None,
        schema: Any = None,
    ):
        super().__init__(items)
        self.schema = schema
        self._token = token or (schema.token if schema is not None else None)

    def as_query(self, engine: str = DEFAULT_ENGINE) -> Query:
        return from_iterable(self, engine=engine, token=self._token)

    # convenience: start the most common chains directly on the collection
    def where(self, predicate: Callable) -> Query:
        return self.as_query().where(predicate)

    def select(self, selector: Callable) -> Query:
        return self.as_query().select(selector)

    def order_by(self, key: Callable) -> Query:
        return self.as_query().order_by(key)

    def group_by(self, key: Callable, result: Optional[Callable] = None) -> Query:
        return self.as_query().group_by(key, result)


def from_iterable(
    items: Sequence[Any],
    engine: str = DEFAULT_ENGINE,
    token: Optional[str] = None,
    schema: Any = None,
) -> Query:
    """Wrap an in-memory collection as a queryable source.

    *items* must be re-iterable (a list, not a generator): deferred
    execution may consume the source more than once.  An optional *schema*
    declares the elements' flat native layout for the hybrid engine
    (otherwise it is inferred by sampling).
    """
    if iter(items) is items:
        raise ExecutionError(
            "query sources must be re-iterable collections, not one-shot iterators"
        )
    if schema is not None and getattr(items, "schema", None) is not schema:
        items = QList(items, token=token, schema=schema)
    if token is None and schema is not None:
        token = schema.token
    resolved = _source_token(items, token)
    return Query(SourceExpr(0, resolved), (items,), engine=engine)


def from_struct_array(array: StructArray, engine: str = "native") -> Query:
    """Wrap a row-store :class:`StructArray`; unlocks the native engine."""
    return Query(SourceExpr(0, array.schema.token), (array,), engine=engine)
