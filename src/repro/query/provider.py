"""The query provider: canonicalize → cache → translate → compile → execute.

This is the paper's Figure 3 pipeline.  When a query's result is first
consumed, the provider

1. reduces the expression tree to canonical form (constants folded, the
   survivors lifted to parameters — ``ConstantEvaluator``);
2. consults the :class:`~repro.query.cache.QueryCache` keyed by the
   canonical tree + engine + optimizer options;
3. on a miss, translates to a logical plan, optimizes it, and hands it to
   the engine's code generator (``ExpressionTreeTranslator`` →
   ``CodeTreeTranslator`` → ``StringCompiler``);
4. executes the compiled artifact against the actual sources with the
   merged parameter bindings.

The ``linq`` engine short-circuits all of this: LINQ-to-objects neither
optimizes nor compiles, and the baseline must not either.
"""

from __future__ import annotations

import copy
import hashlib
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional

from ..adaptive.chooser import Decision, static_fallback
from ..adaptive.controller import AdaptiveController
from ..adaptive.controller import default_controller as _default_adaptive
from ..adaptive.cost import RowEstimate, estimate_plan_rows
from ..analysis import analyze_ir, elision_enabled
from ..codegen.compiler import CompiledQuery
from ..codegen.ir import QueryIR
from ..codegen.lower import lower_plan
from ..codegen.verifier import check_facts, check_ir, verification_enabled
from ..errors import ExecutionError, UnsupportedQueryError
from ..expressions.canonical import CanonicalQuery, cache_key, canonicalize
from ..expressions.nodes import Expr
from ..expressions.typing import QueryAnalysis, analyze_query
from ..observability.metrics import METRICS
from ..observability.tracer import TRACER, traced_rows
from ..plans.logical import plan_to_text
from ..plans.optimizer import OptimizeOptions, optimize
from ..plans.translate import TranslateOptions, translate
from ..plans.validate import capability_report, distributed_split, validate_plan
from ..storage.struct_array import StructArray
from ..runtime.parallel import (
    DEFAULT_MORSEL_ROWS,
    ParallelQuery,
    build_parallel_query,
    source_length,
)
from .cache import QueryCache
from .enumerable import enumerate_query, scalar_query

__all__ = ["QueryProvider", "default_provider", "pin_sources", "ENGINES"]

#: all execution strategies, in the order the paper presents them
ENGINES = (
    "linq",
    "compiled",
    "native",
    "hybrid",
    "hybrid_buffered",
    "hybrid_min",
    "hybrid_min_buffered",
)

#: engines whose backends emit morsel-parameterized kernels; linq stays the
#: interpreted yardstick and the Min hybrids retain whole-source object
#: identity, so both always run sequentially
PARALLEL_ENGINES = ("compiled", "native", "hybrid", "hybrid_buffered")

#: engines whose artifacts can broadcast to worker processes — the same
#: set: a shard task is one morsel-parameterized kernel invocation
DISTRIBUTED_ENGINES = PARALLEL_ENGINES

#: cached marker: "this plan/engine pair falls back to sequential"
_SEQUENTIAL = object()

#: bound on the per-binding-set dataflow-facts memo; evicted LRU
_MAX_FACTS_ENTRIES = 1024


def _freeze_binding_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_binding_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(
            sorted((k, _freeze_binding_value(v)) for k, v in value.items())
        )
    if isinstance(value, set):
        return frozenset(value)
    return value


def _frozen_bindings(bindings: Dict[str, Any]) -> Optional[tuple]:
    """Hashable snapshot of the binding values, or None if unhashable."""
    try:
        frozen = tuple(
            sorted((k, _freeze_binding_value(v)) for k, v in bindings.items())
        )
        hash(frozen)
    except TypeError:
        return None
    return frozen


class QueryProvider:
    """Compiles and executes queries for every non-baseline engine."""

    def __init__(
        self,
        cache: Optional[QueryCache] = None,
        translate_options: Optional[TranslateOptions] = None,
        optimize_options: Optional[OptimizeOptions] = None,
    ):
        # explicit None test: an empty QueryCache is falsy (len() == 0)
        self.cache = cache if cache is not None else QueryCache()
        self.translate_options = translate_options or TranslateOptions()
        self.optimize_options = optimize_options or OptimizeOptions()
        self._lock = threading.Lock()
        #: one lock per *in-flight* cache key, so concurrent misses on the
        #: same query compile once while distinct queries compile
        #: concurrently.  Entries are reference-counted and pruned as the
        #: last holder releases, so the table is bounded by the number of
        #: concurrent compilations — a long-lived provider serving many
        #: distinct queries no longer grows it forever
        self._key_locks: Dict[Any, _KeyLockEntry] = {}
        #: morsel-kernel artifacts (or the sequential-fallback marker),
        #: keyed like compiled entries plus the worker count; kept apart
        #: from the QueryCache so parallel lookups don't perturb the
        #: compiled-code hit/miss statistics the benchmarks report
        self._parallel_entries: Dict[Any, Any] = {}
        #: broadcast artifacts for multi-process execution (or the
        #: sequential-fallback marker); keyed like parallel entries but
        #: *without* the worker count — the shard fan-out is a runtime
        #: grant, the compiled artifact is shape-only
        self._distributed_entries: Dict[Any, Any] = {}
        #: schema token → TableStats (§9 extension); versioned for caching
        self._statistics: Dict[str, Any] = {}
        self._statistics_version = 0
        #: pipeline IR per canonical query (engine-independent), cached
        #: alongside analysis so every backend lowers the same IR once
        self._ir_cache: Dict[Any, QueryIR] = {}
        #: dataflow facts per (query, binding set) — facts look *through*
        #: auto-lifted parameter values (divisor proofs, contradictions),
        #: so unlike the IR they cannot be shared across bindings
        self._facts_cache: "OrderedDict[Any, Any]" = OrderedDict()
        #: eviction coherence: compiled-entry key → (analysis key, IR key)
        #: plus refcounts on the shared keys — several engines' compiled
        #: entries reference one analysis/IR, which must survive until the
        #: *last* referencing compiled entry leaves the cache
        self._associations: Dict[Any, tuple] = {}
        self._shared_refs: Dict[Any, int] = {}
        self.cache.add_eviction_listener(self._on_compiled_eviction)

    def register_statistics(self, token: str, statistics: Any) -> None:
        """Attach :class:`~repro.plans.statistics.TableStats` to a schema
        token; subsequent compilations order predicates by selectivity."""
        with self._lock:
            self._statistics[token] = statistics
            self._statistics_version += 1

    # -- public API --------------------------------------------------------------

    def execute(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
        adaptive: Any = None,
        distributed: Optional[int] = None,
    ) -> Iterator[Any]:
        """Run *expr* and return a lazy iterator over its results."""
        sources = pin_sources(sources)
        if engine == "linq":
            # the interpreted baseline skips codegen but not analysis: an
            # ill-typed query fails the same way on every engine (its
            # parallelism knob is a no-op: interpretation stays sequential)
            with TRACER.span("query.canonicalize", engine="linq"):
                canonical = canonicalize(expr)
            self._analysis_for(canonical, sources)
            iterator = enumerate_query(expr, sources, params)
            if TRACER.active:
                return traced_rows(TRACER, iterator, engine="linq")
            return iterator
        controller = self._adaptive_controller(adaptive, engine)
        decision: Optional[Decision] = None
        adaptive_key = ""
        estimate: Optional[RowEstimate] = None
        if controller is not None:
            adaptive_key, estimate, decision, canonical = self._adaptive_decide(
                expr, sources, engine, controller
            )
            compiled, bindings, run_engine = self._compiled_adaptive(
                expr, sources, engine, decision, canonical=canonical
            )
        else:
            # the sequential artifact compiles first even under
            # parallelism: it is the fallback, and it guarantees exact
            # error parity (a query the engine rejects is rejected with
            # or without workers)
            compiled, bindings = self._compiled_for(expr, sources, engine)
            run_engine = engine
        if compiled.scalar:
            raise ExecutionError(
                "this query is a scalar aggregate; use the terminal method"
            )
        # caller-explicit knobs always beat the adaptive decision
        effective_parallelism = parallelism
        if effective_parallelism is None and decision is not None:
            effective_parallelism = decision.workers
        effective_morsel = morsel_size
        if effective_morsel is None and decision is not None:
            effective_morsel = decision.morsel
        effective_distributed = distributed
        if effective_distributed is None and decision is not None:
            effective_distributed = getattr(decision, "distributed", None)
        dist = self._distributed_plan(
            expr,
            sources,
            run_engine,
            effective_distributed,
            scalar=False,
            params={**bindings, **params},
        )
        if dist is not None:
            dist_workers, dist_artifact = dist
            started = time.perf_counter()
            rows = dist_artifact.execute(
                sources, {**bindings, **params}, dist_workers
            )
            ended = time.perf_counter()
            TRACER.record(
                "query.execute",
                started,
                ended,
                rows=len(rows),
                engine=run_engine,
                distributed=True,
            )
            if controller is not None:
                controller.observe(
                    adaptive_key,
                    decision,
                    run_engine,
                    dist_workers,
                    0,
                    (ended - started) * 1e3,
                    len(rows),
                    estimate,
                    distributed=dist_workers,
                )
            return iter(rows)
        parallel = self._parallel_plan(
            expr, sources, run_engine, effective_parallelism, scalar=False
        )
        if parallel is not None:
            workers, morsel_rows, artifact = parallel
            morsel = effective_morsel or morsel_rows
            redecide = None
            if controller is not None:
                redecide = controller.redecider(
                    estimate, source_length(sources[artifact.morsel_ordinal])
                )
            started = time.perf_counter()
            rows = artifact.execute(
                sources,
                {**bindings, **params},
                workers,
                morsel,
                redecide=redecide,
            )
            ended = time.perf_counter()
            TRACER.record(
                "query.execute",
                started,
                ended,
                rows=len(rows),
                engine=run_engine,
                parallel=True,
            )
            if controller is not None:
                controller.observe(
                    adaptive_key,
                    decision,
                    run_engine,
                    workers,
                    morsel,
                    (ended - started) * 1e3,
                    len(rows),
                    estimate,
                )
            return iter(rows)
        started = time.perf_counter()
        iterator = iter(compiled.execute(sources, {**bindings, **params}))
        if TRACER.active:
            iterator = traced_rows(TRACER, iterator, engine=run_engine)
        if controller is not None:
            # wall time and cardinality land in the profile when the
            # caller exhausts (or abandons) the lazy result
            iterator = _observe_rows(
                iterator,
                controller,
                adaptive_key,
                decision,
                run_engine,
                estimate,
                started,
            )
        return iterator

    def execute_scalar(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        params: Dict[str, Any],
        parallelism: Optional[int] = None,
        morsel_size: Optional[int] = None,
        adaptive: Any = None,
        distributed: Optional[int] = None,
    ) -> Any:
        """Run a terminal aggregate and return its single value."""
        sources = pin_sources(sources)
        if engine == "linq":
            with TRACER.span("query.canonicalize", engine="linq"):
                canonical = canonicalize(expr)
            self._analysis_for(canonical, sources)
            with TRACER.span("query.execute", engine="linq", scalar=True):
                return scalar_query(expr, sources, params)
        controller = self._adaptive_controller(adaptive, engine)
        decision: Optional[Decision] = None
        adaptive_key = ""
        estimate: Optional[RowEstimate] = None
        if controller is not None:
            adaptive_key, estimate, decision, canonical = self._adaptive_decide(
                expr, sources, engine, controller
            )
            compiled, bindings, run_engine = self._compiled_adaptive(
                expr, sources, engine, decision, canonical=canonical
            )
        else:
            compiled, bindings = self._compiled_for(expr, sources, engine)
            run_engine = engine
        if not compiled.scalar:
            raise ExecutionError("not a scalar query")
        effective_parallelism = parallelism
        if effective_parallelism is None and decision is not None:
            effective_parallelism = decision.workers
        effective_morsel = morsel_size
        if effective_morsel is None and decision is not None:
            effective_morsel = decision.morsel
        effective_distributed = distributed
        if effective_distributed is None and decision is not None:
            effective_distributed = getattr(decision, "distributed", None)
        dist = self._distributed_plan(
            expr,
            sources,
            run_engine,
            effective_distributed,
            scalar=True,
            params={**bindings, **params},
        )
        if dist is not None:
            dist_workers, dist_artifact = dist
            started = time.perf_counter()
            with TRACER.span(
                "query.execute", engine=run_engine, scalar=True, distributed=True
            ):
                value = dist_artifact.execute(
                    sources, {**bindings, **params}, dist_workers
                )
            if controller is not None:
                controller.observe(
                    adaptive_key,
                    decision,
                    run_engine,
                    dist_workers,
                    0,
                    (time.perf_counter() - started) * 1e3,
                    None,
                    estimate,
                    distributed=dist_workers,
                )
            return value
        parallel = self._parallel_plan(
            expr, sources, run_engine, effective_parallelism, scalar=True
        )
        if parallel is not None:
            workers, morsel_rows, artifact = parallel
            morsel = effective_morsel or morsel_rows
            started = time.perf_counter()
            with TRACER.span(
                "query.execute", engine=run_engine, scalar=True, parallel=True
            ):
                value = artifact.execute(
                    sources, {**bindings, **params}, workers, morsel
                )
            if controller is not None:
                controller.observe(
                    adaptive_key,
                    decision,
                    run_engine,
                    workers,
                    morsel,
                    (time.perf_counter() - started) * 1e3,
                    None,
                    estimate,
                )
            return value
        started = time.perf_counter()
        with TRACER.span("query.execute", engine=run_engine, scalar=True):
            value = compiled.execute(sources, {**bindings, **params})
        if controller is not None:
            controller.observe(
                adaptive_key,
                decision,
                run_engine,
                1,
                0,
                (time.perf_counter() - started) * 1e3,
                None,
                estimate,
            )
        return value

    def explain(self, expr: Expr, engine: str) -> str:
        """The optimized logical plan, as indented text."""
        if engine == "linq":
            return "(linq engine: interpreted operator chain, no plan)"
        canonical = canonicalize(expr)
        plan = optimize(
            translate(canonical.tree, self.translate_options),
            self.optimize_options,
            statistics=self._statistics,
            param_values=canonical.bindings,
        )
        return plan_to_text(plan)

    def compile_info(
        self, expr: Expr, sources: List[Any], engine: str
    ) -> CompiledQuery:
        """Compile (or fetch) the artifact without executing — bench hook."""
        compiled, _ = self._compiled_for(expr, sources, engine)
        return compiled

    # -- adaptive execution (profile-driven engine/parallelism choice) -----------

    def _adaptive_controller(
        self, adaptive: Any, engine: str
    ) -> Optional[AdaptiveController]:
        """Resolve the controller for one execution (or None = static).

        ``adaptive`` is the per-query override: an
        :class:`~repro.adaptive.AdaptiveController` instance, True
        (use/create the process-wide controller), False (force static),
        or None (defer to ``REPRO_ADAPTIVE``).  The interpreted baseline
        never adapts.
        """
        if engine == "linq" or adaptive is False:
            return None
        if isinstance(adaptive, AdaptiveController):
            return adaptive
        try:
            return _default_adaptive(force=adaptive is True)
        except Exception:  # noqa: BLE001 - fail-open by contract
            METRICS.counter("adaptive.errors").add()
            return None

    def _adaptive_decide(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        controller: AdaptiveController,
        explore: bool = True,
    ) -> tuple:
        """(profile key, row estimate, decision, canonical) under a
        ``query.decide`` span; any failure lands on the static fallback,
        never an error."""
        canonical: Optional[CanonicalQuery] = None
        with TRACER.span("query.decide", engine=engine) as span:
            try:
                canonical = canonicalize(expr)
                raw = cache_key(
                    canonical, "::adaptive", _source_signature(sources)
                )
                key = controller.profile_key(raw)

                def derive():
                    plan = optimize(
                        translate(canonical.tree, self.translate_options),
                        self.optimize_options,
                        statistics=self._statistics,
                        param_values=canonical.bindings,
                    )
                    return estimate_plan_rows(plan, sources, self._statistics)

                estimate = controller.estimated_rows(key, derive)
                candidates = self._candidate_engines(engine, sources)
                if explore:
                    decision = controller.decide(
                        key, engine, candidates, estimate, DEFAULT_MORSEL_ROWS
                    )
                else:
                    decision = controller.peek(
                        key, engine, candidates, estimate, DEFAULT_MORSEL_ROWS
                    )
            except Exception:  # noqa: BLE001 - fail-open by contract
                METRICS.counter("adaptive.errors").add()
                key, estimate = "", None
                decision = static_fallback(engine, "decision error")
            span.set(
                source=decision.source,
                chosen_engine=decision.engine,
                workers=decision.workers,
                morsel=decision.morsel,
                decision=decision.describe(),
            )
        return key, estimate, decision, canonical

    def _candidate_engines(
        self, engine: str, sources: List[Any]
    ) -> tuple:
        """Engines the chooser may pick for these sources.

        The requested engine always leads; the other morsel-capable
        engines follow (native only when every source is a StructArray —
        its scans read native buffers directly).
        """
        candidates = [engine]
        native_ok = all(isinstance(s, StructArray) for s in sources)
        for alternative in PARALLEL_ENGINES:
            if alternative == engine:
                continue
            if alternative == "native" and not native_ok:
                continue
            candidates.append(alternative)
        return tuple(candidates)

    def _compiled_adaptive(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        decision: Decision,
        canonical: Optional[CanonicalQuery] = None,
    ) -> tuple:
        """Compile for the decided engine, falling back to the requested
        one when the decided engine rejects the query shape.

        The *requested* engine always compiles first (a cache hit after
        the first run): error parity demands that a query the requested
        engine rejects is rejected identically with adaptivity on —
        profile-driven switching may make supported queries faster, but
        it never widens engine capability.
        """
        compiled, bindings = self._compiled_for(
            expr, sources, engine, canonical=canonical
        )
        chosen = decision.engine
        if chosen != engine:
            try:
                return (
                    *self._compiled_for(
                        expr, sources, chosen, canonical=canonical
                    ),
                    chosen,
                )
            except UnsupportedQueryError:
                METRICS.counter("adaptive.fallbacks").add()
        return compiled, bindings, engine

    # -- internals --------------------------------------------------------------

    def _acquire_key_lock(self, key: Any) -> "_KeyLockEntry":
        """Reference-count and lock the per-key compile entry.

        Contended acquisitions (another thread already compiling this
        key) are counted in ``provider.compile_lock.contended``.
        """
        with self._lock:
            entry = self._key_locks.get(key)
            if entry is None:
                entry = self._key_locks[key] = _KeyLockEntry()
            entry.refs += 1
        if not entry.lock.acquire(blocking=False):
            METRICS.counter("provider.compile_lock.contended").add()
            entry.lock.acquire()
        return entry

    def _release_key_lock(self, key: Any, entry: "_KeyLockEntry") -> None:
        """Unlock, and prune the table entry once the last holder leaves.

        Pruning bounds the lock table to the number of *concurrent*
        compilations; a later request for the same key simply creates a
        fresh lock and finds the artifact already cached.
        """
        entry.lock.release()
        with self._lock:
            entry.refs -= 1
            if entry.refs == 0 and self._key_locks.get(key) is entry:
                del self._key_locks[key]
                METRICS.counter("provider.compile_lock.pruned").add()

    def _compiled_for(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        canonical: Optional[CanonicalQuery] = None,
    ) -> tuple:
        # the adaptive decision path already canonicalized; reuse its
        # result (lambda-source inspection is the costly part, and paying
        # it twice per execution would tax exactly the sub-ms queries the
        # A/B gate watches)
        if canonical is None:
            with TRACER.span("query.canonicalize", engine=engine):
                canonical = canonicalize(expr)
        key = cache_key(
            canonical,
            engine,
            self._options_token()
            + self._facts_component(canonical, sources, engine)
            + _source_signature(sources),
        )
        # per-key locking: concurrent requests for the same query block
        # until its single compilation finishes (no duplicated work, and
        # exactly one cache miss per compilation); unrelated queries
        # compile in parallel
        entry = self._acquire_key_lock(key)
        try:
            with TRACER.span("query.cache_lookup", engine=engine) as span:
                compiled = self.cache.find(key)
                span.set(hit=compiled is not None)
            if compiled is None:
                compiled = self._compile(canonical, sources, engine)
                # register before store: store() may evict other entries
                # (whose associations are already registered), and a
                # concurrent store could evict *this* key right away
                self._register_association(key, canonical, sources)
                self.cache.store(key, compiled)
        finally:
            self._release_key_lock(key, entry)
        return compiled, canonical.bindings

    # -- cache-eviction coherence ------------------------------------------------

    def _register_association(
        self, key: Any, canonical: CanonicalQuery, sources: List[Any]
    ) -> None:
        """Record which analysis/IR entries *key*'s compiled entry uses."""
        sig = _source_signature(sources)
        analysis_key = cache_key(canonical, "::analysis", sig)
        ir_key = cache_key(canonical, "::ir", self._options_token() + sig)
        with self._lock:
            if key in self._associations:
                return  # re-store of a live entry: refcounts already held
            self._associations[key] = (analysis_key, ir_key)
            for shared in (analysis_key, ir_key):
                self._shared_refs[shared] = self._shared_refs.get(shared, 0) + 1

    def _on_compiled_eviction(self, key: Any) -> None:
        """QueryCache evicted a compiled entry: drop orphaned side state.

        When the last compiled entry referencing an analysis or IR key is
        evicted, the cached analysis and the ``_ir_cache`` entry go too —
        otherwise a bounded compiled cache would anchor unbounded
        engine-independent state for queries that can no longer hit.
        """
        doomed_analysis = None
        with self._lock:
            assoc = self._associations.pop(key, None)
            if assoc is None:
                return
            analysis_key, ir_key = assoc
            for shared in assoc:
                refs = self._shared_refs.get(shared, 0) - 1
                if refs > 0:
                    self._shared_refs[shared] = refs
                    continue
                self._shared_refs.pop(shared, None)
                if shared == ir_key:
                    self._ir_cache.pop(ir_key, None)
                if shared == analysis_key:
                    doomed_analysis = analysis_key
        # outside self._lock: discard_analysis takes the cache's lock
        if doomed_analysis is not None:
            self.cache.discard_analysis(doomed_analysis)

    # -- parallel execution (morsel-driven; departure from the paper) ------------

    def _resolve_parallelism(self, parallelism: Optional[int]) -> int:
        if parallelism is not None:
            return max(1, int(parallelism))
        env = os.environ.get("REPRO_PARALLELISM", "").strip()
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                return 1
        return 1

    def _parallel_plan(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        parallelism: Optional[int],
        scalar: bool,
    ) -> Optional[tuple]:
        """(workers, default morsel size, ParallelQuery) — or None to run
        the already-compiled sequential artifact."""
        workers = self._resolve_parallelism(parallelism)
        if workers < 2 or engine not in PARALLEL_ENGINES:
            return None
        artifact = self._parallel_for(expr, sources, engine, workers)
        if artifact is None or artifact.scalar != scalar:
            return None
        if source_length(sources[artifact.morsel_ordinal]) is None:
            return None  # unsized source: cannot partition
        return workers, DEFAULT_MORSEL_ROWS, artifact

    def _parallel_for(
        self, expr: Expr, sources: List[Any], engine: str, workers: int
    ) -> Optional[ParallelQuery]:
        canonical = canonicalize(expr)
        key = cache_key(
            canonical,
            f"{engine}::parallel",
            (workers,)
            + self._options_token()
            + self._facts_component(canonical, sources, engine)
            + _source_signature(sources),
        )
        lock_entry = self._acquire_key_lock(key)
        try:
            entry = self._parallel_entries.get(key)
            if entry is None:
                entry = self._build_parallel(canonical, sources, engine)
                if entry is None:
                    entry = _SEQUENTIAL
                with self._lock:
                    self._parallel_entries[key] = entry
        finally:
            self._release_key_lock(key, lock_entry)
        return None if entry is _SEQUENTIAL else entry

    def _build_parallel(
        self, canonical: CanonicalQuery, sources: List[Any], engine: str
    ) -> Optional[ParallelQuery]:
        """Build morsel kernels for a plan, or None for sequential fallback.

        Runs after the sequential artifact compiled successfully, so the
        plan is already analyzed, validated, and inside the engine's
        fragment; anything the *partial* plans still trip over (or a shape
        :func:`parallel_split` rejects) downgrades to sequential execution
        rather than erroring.
        """
        self._analysis_for(canonical, sources)
        plan = optimize(
            translate(canonical.tree, self.translate_options),
            self.optimize_options,
            statistics=self._statistics,
            param_values=canonical.bindings,
        )
        split = self._ir_for(canonical, sources, plan, engine).split
        if not split.parallel:
            return None
        backend = _make_backend(engine)

        def compile_kernel(partial):
            # partial plans differ from the cached sequential IR, so each
            # lowers its own — with the same statistics, so conjunct order
            # (and therefore kernel code) matches the sequential artifact
            partial_ir = lower_plan(
                partial,
                morsel_ordinal=split.morsel_ordinal,
                statistics=self._statistics,
                param_values=canonical.bindings,
            )
            partial_ir.facts = analyze_ir(
                partial_ir,
                param_values=canonical.bindings,
                statistics=self._statistics,
            )
            return backend.compile(
                partial,
                sources,
                morsel_ordinal=split.morsel_ordinal,
                ir=partial_ir,
            )

        try:
            return build_parallel_query(split, compile_kernel)
        except UnsupportedQueryError:
            return None

    # -- distributed execution (sharded multi-process; DESIGN.md §16) ------------

    def _resolve_distributed(self, distributed: Optional[int]) -> int:
        """Worker-process count: explicit request beats the environment.

        ``REPRO_DISTRIBUTED=1`` (or ``true``) enables distribution with
        ``REPRO_DIST_WORKERS`` workers (default 2); a numeric value > 1
        is itself the worker count; 0 is the explicit off switch.
        """
        if distributed is not None:
            return max(0, int(distributed))
        env = os.environ.get("REPRO_DISTRIBUTED", "").strip().lower()
        if not env or env in ("0", "false", "off", "no"):
            return 0
        if env in ("1", "true", "on", "yes"):
            workers_env = os.environ.get("REPRO_DIST_WORKERS", "").strip()
            try:
                return max(2, int(workers_env)) if workers_env else 2
            except ValueError:
                return 2
        try:
            return max(0, int(env))
        except ValueError:
            return 0

    def _distributed_plan(
        self,
        expr: Expr,
        sources: List[Any],
        engine: str,
        distributed: Optional[int],
        scalar: bool,
        params: Dict[str, Any],
    ) -> Optional[tuple]:
        """(workers, DistributedQuery) — or None to fall through to the
        thread tier / sequential artifact.

        Shards own column buffers, so every source must be a StructArray;
        parameters must survive the process boundary.  Both checks fall
        back (counted in ``dist.fallbacks``) rather than erroring: asking
        for distribution never makes a supported query fail.
        """
        workers = self._resolve_distributed(distributed)
        if workers < 2 or engine not in DISTRIBUTED_ENGINES:
            return None
        if not sources or not all(isinstance(s, StructArray) for s in sources):
            return None
        artifact = self._distributed_for(expr, sources, engine)
        if artifact is None or artifact.scalar != scalar:
            return None
        from ..distributed import wire

        try:
            wire.encode_params(params)
        except Exception:  # noqa: BLE001 - unshippable params: thread tier
            METRICS.counter("dist.fallbacks").add()
            return None
        return workers, artifact

    def _distributed_for(
        self, expr: Expr, sources: List[Any], engine: str
    ) -> Optional[Any]:
        canonical = canonicalize(expr)
        # no worker count in the key: the broadcast artifact is
        # shape-only, and one compilation serves any shard fan-out
        key = cache_key(
            canonical,
            f"{engine}::distributed",
            self._options_token()
            + self._facts_component(canonical, sources, engine)
            + _source_signature(sources),
        )
        lock_entry = self._acquire_key_lock(key)
        try:
            entry = self._distributed_entries.get(key)
            if entry is None:
                entry = self._build_distributed(canonical, sources, engine, key)
                if entry is None:
                    entry = _SEQUENTIAL
                with self._lock:
                    self._distributed_entries[key] = entry
        finally:
            self._release_key_lock(key, lock_entry)
        return None if entry is _SEQUENTIAL else entry

    def _build_distributed(
        self,
        canonical: CanonicalQuery,
        sources: List[Any],
        engine: str,
        key: Any,
    ) -> Optional[Any]:
        """Compile the broadcast artifact, or None for thread/sequential.

        Mirrors :meth:`_build_parallel` but splits with
        :func:`~repro.plans.validate.distributed_split` (inner joins
        distribute via broadcast builds instead of blocking) and wraps
        the kernels with their namespace wire recipes.  A namespace that
        cannot cross processes downgrades, never errors.
        """
        from ..distributed.coordinator import build_distributed_query
        from ..distributed.wire import UnshippableError

        self._analysis_for(canonical, sources)
        plan = optimize(
            translate(canonical.tree, self.translate_options),
            self.optimize_options,
            statistics=self._statistics,
            param_values=canonical.bindings,
        )
        split = distributed_split(plan)
        if not split.parallel:
            return None
        backend = _make_backend(engine)

        def compile_kernel(partial):
            partial_ir = lower_plan(
                partial,
                morsel_ordinal=split.morsel_ordinal,
                statistics=self._statistics,
                param_values=canonical.bindings,
            )
            partial_ir.facts = analyze_ir(
                partial_ir,
                param_values=canonical.bindings,
                statistics=self._statistics,
            )
            return backend.compile(
                partial,
                sources,
                morsel_ordinal=split.morsel_ordinal,
                ir=partial_ir,
            )

        artifact_key = hashlib.sha256(repr(key).encode()).hexdigest()[:16]
        try:
            return build_distributed_query(split, compile_kernel, artifact_key)
        except (UnsupportedQueryError, UnshippableError):
            METRICS.counter("dist.fallbacks").add()
            return None

    def _options_token(self) -> tuple:
        topts = self.translate_options
        return (
            topts.fuse_aggregates,
            topts.share_aggregates,
            self._statistics_version,
        ) + self.optimize_options.token

    def _facts_for(
        self,
        canonical: CanonicalQuery,
        sources: List[Any],
        plan: Any = None,
        engine: str = "",
    ) -> Any:
        """Derive (or recall) the dataflow facts for one query + bindings.

        Facts look through auto-lifted parameter values, so they are
        memoized per binding set; the expensive path (plan + lowering)
        only runs once per distinct binding set, and re-executions hit
        the dictionary.
        """
        base = cache_key(
            canonical,
            "::facts",
            self._options_token() + _source_signature(sources),
        )
        frozen = _frozen_bindings(canonical.bindings)
        key = None if frozen is None else (base, frozen)
        if key is not None:
            with self._lock:
                facts = self._facts_cache.get(key)
            if facts is not None:
                return facts
        if plan is None:
            plan = optimize(
                translate(canonical.tree, self.translate_options),
                self.optimize_options,
                statistics=self._statistics,
                param_values=canonical.bindings,
            )
        ir = self._ir_for(canonical, sources, plan, engine)
        with TRACER.span("query.analyze_dataflow", engine=engine):
            facts = analyze_ir(
                ir,
                param_values=canonical.bindings,
                statistics=self._statistics,
            )
            if verification_enabled():
                check_facts(
                    ir, canonical.bindings, self._statistics, facts=facts
                )
        self._record_facts_metrics(facts)
        if key is not None:
            with self._lock:
                self._facts_cache[key] = facts
                self._facts_cache.move_to_end(key)
                while len(self._facts_cache) > _MAX_FACTS_ENTRIES:
                    self._facts_cache.popitem(last=False)
        return facts

    def _facts_component(
        self, canonical: CanonicalQuery, sources: List[Any], engine: str
    ) -> tuple:
        """Cache-key component for binding-dependent emission decisions.

        Keys carry the facts' :meth:`~repro.analysis.DataflowFacts.cache_token`
        — not the raw bindings — so parameterized queries keep sharing
        compiled code unless a proof outcome actually changed.  The
        elision flag itself joins the key so flipping
        ``REPRO_GUARD_ELISION`` mid-process never reuses elided code.
        """
        try:
            facts = self._facts_for(canonical, sources, engine=engine)
        except Exception:  # noqa: BLE001 - deferred, not swallowed
            # the query does not plan/lower (ill-typed, unsupported, …):
            # _compile re-runs the same stages and reports the real error
            # with its proper type
            return ("nofacts",)
        return (elision_enabled(),) + facts.cache_token()

    def _analysis_for(
        self, canonical: CanonicalQuery, sources: List[Any]
    ) -> QueryAnalysis:
        """Type-check the canonical tree, caching alongside compiled code.

        Raises :class:`~repro.errors.QueryAnalysisError` for ill-typed
        queries — the same error on every engine, before any codegen.
        """
        key = cache_key(canonical, "::analysis", _source_signature(sources))
        with TRACER.span("query.analyze") as span:
            analysis = self.cache.find_analysis(key)
            if analysis is None:
                analysis = analyze_query(
                    canonical.tree, sources, params=canonical.bindings
                )
                self.cache.store_analysis(key, analysis)
                span.set(cached=False)
            else:
                span.set(cached=True)
        return analysis

    def _ir_for(
        self,
        canonical: CanonicalQuery,
        sources: List[Any],
        plan: Any,
        engine: str,
    ) -> QueryIR:
        """Lower *plan* to the pipeline IR, caching per canonical query.

        The IR is engine-independent (morsel parameterization happens on
        the partial plans), so one lowering serves every backend.
        """
        key = cache_key(
            canonical, "::ir", self._options_token() + _source_signature(sources)
        )
        with self._lock:
            ir = self._ir_cache.get(key)
        if ir is not None:
            return ir
        with TRACER.span("query.lower", engine=engine):
            ir = lower_plan(
                plan,
                statistics=self._statistics,
                param_values=canonical.bindings,
            )
            if verification_enabled():
                check_ir(ir)
        with self._lock:
            self._ir_cache[key] = ir
        return ir

    @staticmethod
    def _record_facts_metrics(facts: Any) -> None:
        METRICS.counter("analysis.facts_derived").add()
        if elision_enabled():
            elidable = facts.guards_elidable()
            if elidable:
                METRICS.counter("analysis.guards_elided").add(elidable)
            if facts.dead_pipelines:
                METRICS.counter("analysis.pipelines_killed").add(
                    len(facts.dead_pipelines)
                )
        if facts.effects.impure:
            METRICS.counter("analysis.impure_downgrades").add()

    def _compile(
        self, canonical: CanonicalQuery, sources: List[Any], engine: str
    ) -> CompiledQuery:
        # layer 1: expression-tree type inference (QueryAnalysisError on
        # ill-typed queries, before any plan or source exists)
        analysis = self._analysis_for(canonical, sources)
        with TRACER.span("query.optimize", engine=engine):
            plan = optimize(
                translate(canonical.tree, self.translate_options),
                self.optimize_options,
                statistics=self._statistics,
                param_values=canonical.bindings,
            )
        backend = _make_backend(engine)  # raises for unknown engines
        # layer 2: operator preconditions + one capability report per
        # engine (replaces scattered in-backend fragment checks)
        with TRACER.span("query.validate", engine=engine):
            plan_types = validate_plan(
                plan, analysis.source_types, params=canonical.bindings
            )
            report = capability_report(plan, engine, sources, plan_types)
        if not report.supported:
            raise UnsupportedQueryError(report.describe())
        ir = self._ir_for(canonical, sources, plan, engine)
        facts = self._facts_for(canonical, sources, plan=plan, engine=engine)
        # the cached IR is shared across binding sets whose facts differ,
        # so the facts ride on a per-compilation shallow copy
        ir = copy.copy(ir)
        ir.facts = facts
        with TRACER.span("query.compile", engine=engine) as span:
            compiled = backend.compile(plan, sources, ir=ir)
            span.set(
                codegen_seconds=compiled.codegen_seconds,
                compile_seconds=compiled.compile_seconds,
            )
        METRICS.counter(f"compile.{engine}.count").add()
        METRICS.histogram(f"compile.{engine}.codegen_seconds").observe(
            compiled.codegen_seconds
        )
        METRICS.histogram(f"compile.{engine}.compile_seconds").observe(
            compiled.compile_seconds
        )
        compiled.plan_text = plan_to_text(plan)
        compiled.engine = engine
        compiled.analysis = analysis
        compiled.capability = report
        # layer 3 ran inside compile_source; recover the verifier report
        if compiled.verifier_report is None and compiled.fn is not None:
            compiled.verifier_report = getattr(
                compiled.fn, "__globals__", {}
            ).get("__verifier_report__")
        return compiled


def _observe_rows(
    iterator: Iterator[Any],
    controller: AdaptiveController,
    key: str,
    decision: Decision,
    engine: str,
    estimate: Optional[RowEstimate],
    started: float,
) -> Iterator[Any]:
    """Yield through *iterator*, feeding the profile once it finishes.

    The observation covers kernel invocation plus consumption (the lazy
    sequential path does its work while being drained); an abandoned
    iterator still records whatever it produced.
    """
    count = 0
    try:
        for row in iterator:
            count += 1
            yield row
    finally:
        controller.observe(
            key,
            decision,
            engine,
            1,
            0,
            (time.perf_counter() - started) * 1e3,
            count,
            estimate,
        )


class _KeyLockEntry:
    """A per-key compile lock plus the count of threads holding/awaiting it."""

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


def _source_signature(sources: List[Any]) -> tuple:
    """Physical-design fingerprint of the sources (indexes, clustering).

    Compiled code can depend on which indexes exist, so the cache key must
    too — creating an index after a query was compiled must trigger a
    recompilation, not reuse of the scan-based code.  Clustering is read
    through the version-aware ``clustering`` property: an array whose
    clustering went stale (appends since ``cluster_by``) must not reuse
    binary-search code compiled for the sorted prefix.
    """
    signature = []
    for source in sources:
        index_fields = getattr(source, "index_fields", None)
        if callable(index_fields):
            names = index_fields()
        else:
            indexes = getattr(source, "_index_store", None)
            names = tuple(sorted(indexes)) if indexes else ()
        clustering = getattr(source, "clustering", None)
        if clustering is None:
            clustering = getattr(source, "clustered_by", None)
        signature.append((names, clustering))
    return tuple(signature)


def pin_sources(sources: List[Any]) -> List[Any]:
    """Replace live versioned arrays with O(1) snapshots for one execution.

    Pinning a watermark up front makes every scan of the same ordinal see
    one consistent prefix even while writers append concurrently — the
    generated code is byte-identical, only the length it observes is
    frozen.  Non-versioned sources (plain collections, already-pinned
    snapshots) pass through untouched.
    """
    pinned = None
    for i, source in enumerate(sources):
        if isinstance(source, StructArray) and not source.frozen:
            if pinned is None:
                pinned = list(sources)
            pinned[i] = source.snapshot()
    return pinned if pinned is not None else sources


def _make_backend(engine: str):
    if engine == "compiled":
        from ..codegen.python_backend import PythonBackend

        return PythonBackend()
    if engine == "native":
        from ..codegen.native_backend import NativeBackend

        return NativeBackend()
    if engine.startswith("hybrid"):
        from ..codegen.hybrid_backend import HybridBackend

        return HybridBackend(
            buffered="buffered" in engine,
            minimal="min" in engine.split("_"),
        )
    raise UnsupportedQueryError(
        f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
    )


_DEFAULT_PROVIDER: Optional[QueryProvider] = None
_DEFAULT_LOCK = threading.Lock()


def default_provider() -> QueryProvider:
    """The process-wide provider (shared cache), created on first use."""
    global _DEFAULT_PROVIDER
    if _DEFAULT_PROVIDER is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_PROVIDER is None:
                _DEFAULT_PROVIDER = QueryProvider()
    return _DEFAULT_PROVIDER
