"""The LINQ-to-objects analogue: interpreted, operator-at-a-time execution.

This engine is the paper's *baseline*, and it deliberately preserves every
inefficiency §2.3 catalogues:

* **execution paradigm** — each operator is its own lazy generator pulling
  from the previous one, so every element pays a chain of frame switches
  (the analogue of two virtual calls per iterator per element);
* **lambda interpretation** — predicates and selectors are *interpreted*
  against the expression tree for every element (the analogue of
  un-inlined lambda invocations on generic iterators);
* **per-aggregate passes** — a group result selector evaluates each
  aggregate with its own loop over the group, recomputing overlapping
  work (no fusion, no shared counts);
* **no optimization** — the operator chain runs exactly as written: no
  selection pushdown, no predicate reordering, no OrderBy+Take fusion.

Do not "fix" any of the above: the compiled engines exist for that, and
half the benchmark suite measures precisely these gaps.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Sequence

from ..errors import ExecutionError, UnsupportedQueryError
from ..expressions.evaluator import interpret, make_callable
from ..expressions.nodes import Expr, Lambda, QueryOp, SourceExpr
from ..runtime.hashtable import GroupTable, JoinTable
from ..runtime.sorting import CompositeKey, quicksort_indexes

__all__ = ["enumerate_query", "scalar_query"]


def enumerate_query(
    expr: Expr, sources: Sequence[Any], params: Dict[str, Any]
) -> Iterator[Any]:
    """Lazily evaluate a query expression tree, operator at a time."""
    return _Enumerator(sources, params).iterate(expr)


def scalar_query(expr: Expr, sources: Sequence[Any], params: Dict[str, Any]) -> Any:
    """Evaluate a terminal aggregate (count/sum/min/max/average)."""
    if not isinstance(expr, QueryOp):
        raise ExecutionError("scalar evaluation requires a terminal query operator")
    enumerator = _Enumerator(sources, params)
    return enumerator.scalar(expr)


class _Enumerator:
    def __init__(self, sources: Sequence[Any], params: Dict[str, Any]):
        self._sources = sources
        self._params = params

    def _fn(self, lam: Lambda):
        """Per-element interpreted lambda — the baseline's slow path."""
        return make_callable(lam, self._params)

    # -- pipeline construction ---------------------------------------------------

    def iterate(self, expr: Expr) -> Iterator[Any]:
        if isinstance(expr, SourceExpr):
            try:
                source = self._sources[expr.ordinal]
            except IndexError:
                raise ExecutionError(
                    f"query references source_{expr.ordinal} but only "
                    f"{len(self._sources)} source(s) were supplied"
                ) from None
            return iter(source)
        if not isinstance(expr, QueryOp):
            raise ExecutionError(f"cannot enumerate node {type(expr).__name__}")
        handler = getattr(self, f"_op_{expr.name}", None)
        if handler is None:
            raise UnsupportedQueryError(
                f"operator {expr.name!r} is not supported by the linq engine"
            )
        return handler(expr)

    def _op_where(self, expr: QueryOp) -> Iterator[Any]:
        predicate = self._fn(expr.args[0])
        return (e for e in self.iterate(expr.source) if predicate(e))

    def _op_select(self, expr: QueryOp) -> Iterator[Any]:
        selector = self._fn(expr.args[0])
        return (selector(e) for e in self.iterate(expr.source))

    def _op_select_many(self, expr: QueryOp) -> Iterator[Any]:
        collection = self._fn(expr.args[0])
        result = self._fn(expr.args[1]) if len(expr.args) > 1 else None

        def generate():
            for outer in self.iterate(expr.source):
                for inner in collection(outer):
                    yield result(outer, inner) if result else inner

        return generate()

    def _op_join(self, expr: QueryOp) -> Iterator[Any]:
        inner_expr, outer_key, inner_key, result = expr.args
        outer_key_fn = self._fn(outer_key)
        inner_key_fn = self._fn(inner_key)
        result_fn = self._fn(result)

        def generate():
            # LINQ's Join builds a lookup over the inner sequence lazily on
            # the first pull, then streams the outer side.
            table = JoinTable()
            for element in self.iterate(inner_expr):
                table.add(inner_key_fn(element), element)
            for outer in self.iterate(expr.source):
                for inner in table.probe(outer_key_fn(outer)):
                    yield result_fn(outer, inner)

        return generate()

    def _op_left_outer_join(self, expr: QueryOp) -> Iterator[Any]:
        inner_expr, outer_key, inner_key, result, default = expr.args
        outer_key_fn = self._fn(outer_key)
        inner_key_fn = self._fn(inner_key)
        result_fn = self._fn(result)

        def generate():
            default_element = interpret(default, params=self._params)
            table = JoinTable()
            for element in self.iterate(inner_expr):
                table.add(inner_key_fn(element), element)
            for outer in self.iterate(expr.source):
                matches = table.probe(outer_key_fn(outer))
                if matches:
                    for inner in matches:
                        yield result_fn(outer, inner)
                else:
                    yield result_fn(outer, default_element)

        return generate()

    def _op_join_semi(self, expr: QueryOp) -> Iterator[Any]:
        return self._existence_join(expr, keep_matched=True)

    def _op_join_anti(self, expr: QueryOp) -> Iterator[Any]:
        return self._existence_join(expr, keep_matched=False)

    def _existence_join(self, expr: QueryOp, keep_matched: bool) -> Iterator[Any]:
        inner_expr, outer_key, inner_key = expr.args
        outer_key_fn = self._fn(outer_key)
        inner_key_fn = self._fn(inner_key)

        def generate():
            keys = {inner_key_fn(e) for e in self.iterate(inner_expr)}
            for outer in self.iterate(expr.source):
                if (outer_key_fn(outer) in keys) == keep_matched:
                    yield outer

        return generate()

    def _op_group_by(self, expr: QueryOp) -> Iterator[Any]:
        key_fn = self._fn(expr.args[0])
        result_fn = self._fn(expr.args[1]) if len(expr.args) > 1 else None

        def generate():
            table = GroupTable()
            for element in self.iterate(expr.source):
                table.add(key_fn(element), element)
            for grouping in table.groupings():
                # the selector interprets every AggCall with its own pass
                # over the grouping (see evaluator._eval_aggregate)
                yield result_fn(grouping) if result_fn else grouping

        return generate()

    # -- ordering ------------------------------------------------------------------

    def _op_order_by(self, expr: QueryOp) -> Iterator[Any]:
        return self._sorted(expr, descending=False)

    def _op_order_by_desc(self, expr: QueryOp) -> Iterator[Any]:
        return self._sorted(expr, descending=True)

    def _op_then_by(self, expr: QueryOp) -> Iterator[Any]:
        return self._sorted_chain(expr, descending=False)

    def _op_then_by_desc(self, expr: QueryOp) -> Iterator[Any]:
        return self._sorted_chain(expr, descending=True)

    def _collect_sort_chain(self, expr: QueryOp, descending: bool):
        """Unwind an order_by ... then_by chain into (source, keys, dirs)."""
        keys: List[Lambda] = [expr.args[0]]
        directions: List[bool] = [descending]
        node = expr.source
        while isinstance(node, QueryOp) and node.name in (
            "then_by",
            "then_by_desc",
            "order_by",
            "order_by_desc",
        ):
            keys.append(node.args[0])
            directions.append(node.name.endswith("desc"))
            source = node.source
            if node.name in ("order_by", "order_by_desc"):
                node = source
                break
            node = source
        keys.reverse()
        directions.reverse()
        return node, keys, directions

    def _sorted(self, expr: QueryOp, descending: bool) -> Iterator[Any]:
        def generate():
            elements = list(self.iterate(expr.source))
            key_fn = self._fn(expr.args[0])
            # LINQ materializes elements, keys and an index array, then
            # quicksorts the indexes (§6.1.1's description) — all of it in
            # the managed runtime.
            keys = [key_fn(e) for e in elements]
            for i in quicksort_indexes(keys, descending=descending):
                yield elements[i]

        return generate()

    def _sorted_chain(self, expr: QueryOp, descending: bool) -> Iterator[Any]:
        source, key_lams, directions = self._collect_sort_chain(expr, descending)

        def generate():
            elements = list(self.iterate(source))
            key_fns = [self._fn(k) for k in key_lams]
            dirs = tuple(directions)
            keys = [
                (CompositeKey(tuple(fn(e) for fn in key_fns), dirs), i)
                for i, e in enumerate(elements)
            ]
            for i in quicksort_indexes(keys):
                yield elements[i]

        return generate()

    # -- limiting / set operators ---------------------------------------------------

    def _op_take(self, expr: QueryOp) -> Iterator[Any]:
        count = interpret(expr.args[0], params=self._params)
        return itertools.islice(self.iterate(expr.source), count)

    def _op_skip(self, expr: QueryOp) -> Iterator[Any]:
        count = interpret(expr.args[0], params=self._params)
        return itertools.islice(self.iterate(expr.source), count, None)

    def _op_distinct(self, expr: QueryOp) -> Iterator[Any]:
        def generate():
            seen = set()
            for element in self.iterate(expr.source):
                if element not in seen:
                    seen.add(element)
                    yield element

        return generate()

    def _op_concat(self, expr: QueryOp) -> Iterator[Any]:
        return itertools.chain(self.iterate(expr.source), self.iterate(expr.args[0]))

    def _op_union(self, expr: QueryOp) -> Iterator[Any]:
        def generate():
            seen = set()
            for element in itertools.chain(
                self.iterate(expr.source), self.iterate(expr.args[0])
            ):
                if element not in seen:
                    seen.add(element)
                    yield element

        return generate()

    def _op_union_all(self, expr: QueryOp) -> Iterator[Any]:
        return itertools.chain(self.iterate(expr.source), self.iterate(expr.args[0]))

    def _op_intersect(self, expr: QueryOp) -> Iterator[Any]:
        return self._setop(expr, keep_matched=True)

    def _op_except_(self, expr: QueryOp) -> Iterator[Any]:
        return self._setop(expr, keep_matched=False)

    def _setop(self, expr: QueryOp, keep_matched: bool) -> Iterator[Any]:
        """Bag-semantics intersect/except by probe-and-decrement."""

        def generate():
            counts: Dict[Any, int] = {}
            for element in self.iterate(expr.args[0]):
                counts[element] = counts.get(element, 0) + 1
            for element in self.iterate(expr.source):
                remaining = counts.get(element, 0)
                if remaining > 0:
                    counts[element] = remaining - 1
                    if keep_matched:
                        yield element
                elif not keep_matched:
                    yield element

        return generate()

    # -- terminal scalar aggregates ----------------------------------------------

    def scalar(self, expr: QueryOp) -> Any:
        name = expr.name
        if name == "count":
            source = self.iterate(expr.source)
            if expr.args:
                predicate = self._fn(expr.args[0])
                return sum(1 for e in source if predicate(e))
            return sum(1 for _ in source)
        if name in ("sum", "min", "max", "average"):
            selector = self._fn(expr.args[0]) if expr.args else (lambda e: e)
            values = (selector(e) for e in self.iterate(expr.source))
            if name == "sum":
                return sum(values)
            if name in ("min", "max"):
                try:
                    return min(values) if name == "min" else max(values)
                except ValueError:
                    raise ExecutionError(
                        "aggregate of an empty sequence has no value"
                    ) from None
            total, count = 0, 0
            for v in values:
                total += v
                count += 1
            if count == 0:
                raise ExecutionError("aggregate of an empty sequence has no value")
            return total / count
        raise UnsupportedQueryError(f"not a scalar operator: {name!r}")
