"""The coordinator: compile once, scatter shards, gather, merge.

A :class:`DistributedQuery` is the distributed twin of
:class:`~repro.runtime.parallel.ParallelQuery` — in fact it *wraps* one.
The provider runs the entire front half of the pipeline exactly once
(canonicalize → analyze → optimize → lower → codegen → verify, the
same ``build_parallel_query`` decomposition the thread tier uses) and
this module adds only what crosses process boundaries: the broadcast
artifact payload (generated source + namespace recipes per kernel) and
the scatter/gather protocol.

Execution per query:

1. **scatter** (``dist.scatter`` span) — pin every source's
   ``(buffer, length, version)`` snapshot, split the driver into
   ``grant`` contiguous shards (the admission-degraded worker grant),
   and build one task per shard: the driver shard token plus a
   broadcast ``("full",)`` token for every other source — the
   broadcast-build join strategy, where a build side is shipped once
   per worker and built once per worker process.
2. **gather** (``dist.gather`` span) — the scheduler places tasks on
   resident workers, detects losses, resubmits; partials come back in
   shard-index order.  Worker-reported kernel seconds are recorded as
   the ``dist.worker`` phase.
3. **merge** (``dist.merge`` span) — the *same* pure merge functions
   the thread tier uses (`merge_scalar_slots` / `merge_group_table` /
   post-op re-application), so a distributed result is bit-identical to
   the sequential one whenever the thread-parallel result is.

Cancellation is checkpointed coordinator-side between gather polls (the
token holds a lock and cannot ship); a cancelled query stops consuming
partials and releases its slot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..observability.metrics import METRICS
from ..observability.tracer import TRACER
from ..plans.logical import Plan
from ..plans.validate import ParallelSplit
from ..runtime.cancellation import cancel_check
from ..runtime.parallel import (
    ParallelQuery,
    apply_post_ops,
    build_parallel_query,
    finalize_group_table,
    finalize_scalar,
    merge_group_table,
    merge_scalar_slots,
)
from . import shards, wire
from .scheduler import get_pool

__all__ = ["DistributedQuery", "build_distributed_query"]


@dataclass
class DistributedQuery:
    """A broadcastable compiled query: kernels plus the merge recipe.

    Cached by the provider exactly like a :class:`ParallelQuery`; the
    merge specs, output expressions and post-ops stay coordinator-side
    (expressions never cross processes), only ``payload`` ships.
    """

    key: str
    parallel: ParallelQuery
    payload: Dict[str, Any]

    @property
    def mode(self) -> str:
        return self.parallel.mode

    @property
    def scalar(self) -> bool:
        return self.parallel.scalar

    @property
    def morsel_ordinal(self) -> int:
        return self.parallel.morsel_ordinal

    @property
    def source_code(self) -> str:
        return self.parallel.source_code

    def execute(
        self, sources: List[Any], params: Dict[str, Any], workers: int
    ) -> Any:
        pool = get_pool(workers)
        ticket = pool.acquire(workers)
        try:
            grant = max(1, ticket.parallelism or 1)
            METRICS.counter("dist.executions").add()
            with TRACER.span(
                "dist.execute", mode=self.mode, workers=workers, grant=grant
            ):
                with TRACER.span("dist.scatter", shards=grant):
                    pinned = [shards.pin(s) for s in sources]
                    plans, payload_for = self._shard_plans(pinned, grant)
                    params_blob = wire.encode_params(params)
                cancel_check(params)
                with TRACER.span("dist.gather", shards=len(plans)):
                    encoded, worker_seconds = pool.run_tasks(
                        self.key,
                        self.payload,
                        plans,
                        params_blob,
                        payload_for,
                        cancel=lambda: cancel_check(params),
                    )
                now = time.perf_counter()
                TRACER.record(
                    "dist.worker",
                    now - worker_seconds,
                    now,
                    tasks=len(plans),
                    remote=True,
                )
                with TRACER.span("dist.merge", mode=self.mode):
                    return self._merge(encoded, params)
        finally:
            ticket.release()

    # -- scatter planning ---------------------------------------------------------

    def _shard_plans(self, pinned: List[Any], grant: int):
        """Token plans per shard task + the payload builder for shipping.

        The builder re-slices from the pinned snapshots on demand, so a
        resubmission after worker loss re-creates byte-identical
        payloads without the coordinator retaining any pickled bytes.
        """
        ordinal = self.morsel_ordinal
        driver = pinned[ordinal]
        bounds = shards.shard_bounds(len(driver), grant)
        recipes: Dict[tuple, Callable[[], Any]] = {}
        broadcast_tokens: List[tuple] = []
        for i, source in enumerate(pinned):
            if i == ordinal:
                broadcast_tokens.append(None)
                continue
            token = shards.table_token(source, ("full",))
            recipes[token] = (
                lambda s=source: shards.shard_payload_full(s)
            )
            broadcast_tokens.append(token)
        plans: List[tuple] = []
        for lo, hi in bounds:
            token = shards.table_token(driver, ("shard", lo, hi))
            recipes[token] = (
                lambda s=driver, a=lo, b=hi: shards.shard_payload(s, a, b)
            )
            plans.append(
                tuple(
                    token if i == ordinal else broadcast_tokens[i]
                    for i in range(len(pinned))
                )
            )

        def payload_for(token: tuple):
            return recipes[token]()

        return plans, payload_for

    # -- merge --------------------------------------------------------------------

    def _merge(self, encoded: List[List[Any]], params: Dict[str, Any]) -> Any:
        pq = self.parallel
        partials = [
            [wire.decode_value(value) for value in part] for part in encoded
        ]
        if pq.mode == "scalar":
            merged = merge_scalar_slots(pq.scalar_spec.slot_kinds, partials)
            return finalize_scalar(pq.scalar_spec, pq.output, merged, params)
        if pq.mode == "group":
            table = merge_group_table(pq.group_spec, partials)
            rows = finalize_group_table(pq.group_spec, pq.output, table, params)
        else:
            rows = [row for part in partials for row in part]
        return apply_post_ops(pq.post_ops, rows, params)


def build_distributed_query(
    split: ParallelSplit,
    compile_kernel: Callable[[Plan], Any],
    key: str,
) -> DistributedQuery:
    """Compile the shard kernels once and package the broadcast payload.

    Raises :class:`~repro.distributed.wire.UnshippableError` when a
    kernel namespace cannot cross processes — the provider treats that
    as "does not distribute" and falls back to the thread tier.
    """
    parallel = build_parallel_query(split, compile_kernel)
    kernels_payload = [
        (kernel.source_code, wire.encode_namespace(kernel.fn.__globals__))
        for kernel in parallel.kernels
    ]
    payload = {
        "mode": parallel.mode,
        "morsel_ordinal": parallel.morsel_ordinal,
        "slot_kinds": tuple(
            parallel.scalar_spec.slot_kinds if parallel.scalar_spec else ()
        ),
        "kernels": kernels_payload,
    }
    return DistributedQuery(key=key, parallel=parallel, payload=payload)
