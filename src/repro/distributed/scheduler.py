"""The cluster scheduler: slots, placement, loss detection, resubmission.

:class:`ClusterScheduler` promotes the service tier's
:class:`~repro.service.admission.AdmissionController` from "how many
queries may run" to "how much of the worker pool may one query take":
each distributed query acquires a slot whose queue-depth-aware
degradation shrinks its *shard fan-out* — a saturated pool admits more
queries at lower per-query parallelism, the same policy the thread tier
applies to morsel workers.

Placement is residency-first: a shard task goes to the live worker that
already holds the most of its table payloads (warm queries ship no
table bytes at all), ties broken by the smallest in-flight queue, then
by worker index — deterministic for tests.

Failure handling: every worker has a *private* result queue (a SIGKILL
mid-``put`` can only ever corrupt the dead worker's own channel, never
a shared one).  The gather loop polls result queues and process
liveness together; when a worker dies its in-flight tasks are re-shipped
to survivors — payloads are re-sliced from the coordinator's pinned
snapshot via the ``payload_for`` callback, not retained in memory — and
the partials slot into the same shard positions, so a resubmitted query
is still bit-identical.  When no workers survive, the query fails with
a typed :class:`~repro.errors.DistributedError`.

Workers are spawn-context (fork would duplicate locks and the whole
coordinator heap) and long-lived: pools are process-wide, keyed by
worker count, healed lazily (dead slots respawn at the next query) and
torn down atexit.
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import errors as errors_module
from ..errors import DistributedError, ExecutionError, ReproError
from ..observability.metrics import METRICS
from ..service.admission import AdmissionController, AdmissionTicket
from .worker import worker_main

__all__ = [
    "ClusterScheduler",
    "DistTask",
    "get_pool",
    "shutdown_pools",
]

#: how often the gather loop re-checks worker liveness (seconds)
_LIVENESS_INTERVAL = 0.05
#: gather poll sleep when no result is ready (seconds)
_POLL_SLEEP = 0.002


@dataclass
class DistTask:
    """One shard task: which artifact over which resident tables."""

    task_id: int
    index: int  # shard position — partials merge in this order
    artifact_key: str
    tokens: Tuple[tuple, ...]
    params_blob: bytes


@dataclass(eq=False)  # identity semantics: handles live in sets
class _WorkerHandle:
    worker_id: int
    process: Any
    tasks: Any
    results: Any
    artifacts: set = field(default_factory=set)
    tables: set = field(default_factory=set)
    inflight: Dict[int, DistTask] = field(default_factory=dict)

    def alive(self) -> bool:
        return self.process.is_alive()


def _repro_src_dir() -> str:
    # src/repro/distributed/scheduler.py -> src
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )


class ClusterScheduler:
    """A pool of spawn-context worker processes plus the dispatch logic."""

    def __init__(self, workers: int):
        if workers < 1:
            raise DistributedError("a worker pool needs at least one worker")
        self.size = workers
        self._ctx = get_context("spawn")
        self._handles: List[_WorkerHandle] = []
        self._worker_ids = itertools.count()
        self._task_ids = itertools.count()
        self._lock = threading.Lock()
        #: one query scatters/gathers at a time; concurrency between
        #: queries comes from the admission queue in front
        self._dispatch_lock = threading.Lock()
        self._closed = False
        #: the promoted admission controller: slots bound concurrent
        #: distributed queries, queue depth degrades shard fan-out
        self.admission = AdmissionController(slots=workers, max_queue=8 * workers)

    # -- pool lifecycle -----------------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        worker_id = next(self._worker_ids)
        tasks = self._ctx.Queue()
        results = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, tasks, results),
            daemon=True,
            name=f"repro-dist-worker-{worker_id}",
        )
        # the spawned interpreter must be able to import repro: prepend
        # the package's src dir for the duration of the start() call
        src_dir = _repro_src_dir()
        previous = os.environ.get("PYTHONPATH")
        parts = [src_dir] + ([previous] if previous else [])
        os.environ["PYTHONPATH"] = os.pathsep.join(parts)
        try:
            process.start()
        finally:
            if previous is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = previous
        METRICS.counter("dist.workers_spawned").add()
        return _WorkerHandle(worker_id, process, tasks, results)

    def ensure_workers(self) -> List[_WorkerHandle]:
        """Heal the pool: drop dead handles, respawn up to ``size``."""
        with self._lock:
            if self._closed:
                raise DistributedError("worker pool is shut down")
            dead = [h for h in self._handles if not h.alive()]
            for handle in dead:
                self._handles.remove(handle)
                self._reap(handle)
            while len(self._handles) < self.size:
                self._handles.append(self._spawn())
            return list(self._handles)

    @staticmethod
    def _reap(handle: _WorkerHandle) -> None:
        # drop the queues first, and never join their feeder threads: a
        # dead worker's task pipe may be full (nobody drains it), which
        # would block a joining feeder — and this process — forever
        for q in (handle.tasks, handle.results):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass
        try:
            handle.process.join(timeout=1.0)
            handle.process.close()
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass

    def live_handles(self) -> List[_WorkerHandle]:
        with self._lock:
            return [h for h in self._handles if h.alive()]

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            handles, self._handles = self._handles, []
        for handle in handles:
            try:
                if handle.alive():
                    handle.tasks.put(("stop",))
            except Exception:  # noqa: BLE001
                pass
        deadline = time.monotonic() + 5.0
        for handle in handles:
            try:
                handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            except Exception:  # noqa: BLE001
                pass
        for handle in handles:
            self._reap(handle)

    # -- admission ----------------------------------------------------------------

    def acquire(self, requested: int) -> AdmissionTicket:
        """A run slot whose (degraded) grant is this query's shard count."""
        return self.admission.acquire(parallelism=requested)

    # -- shipping -----------------------------------------------------------------

    def _ship_artifact(
        self, handle: _WorkerHandle, key: str, payload: Dict[str, Any]
    ) -> None:
        if key not in handle.artifacts:
            handle.tasks.put(("artifact", key, payload))
            handle.artifacts.add(key)
            METRICS.counter("dist.artifacts_broadcast").add()

    def _ship_tables(
        self,
        handle: _WorkerHandle,
        tokens: Tuple[tuple, ...],
        payload_for: Callable[[tuple], Any],
    ) -> None:
        for token in tokens:
            if token in handle.tables:
                METRICS.counter("dist.table_hits").add()
                continue
            uid, version, length = token[:3]
            # mirror the worker's shard-ownership rule: a newer watermark
            # for the same table supersedes every older resident
            handle.tables = {
                t
                for t in handle.tables
                if t[0] != uid or (t[1], t[2]) == (version, length)
            }
            handle.tasks.put(("table", payload_for(token)))
            handle.tables.add(token)
            METRICS.counter("dist.tables_shipped").add()

    # -- placement ----------------------------------------------------------------

    @staticmethod
    def _place(
        handles: List[_WorkerHandle], tokens: Tuple[tuple, ...]
    ) -> _WorkerHandle:
        def score(handle: _WorkerHandle) -> tuple:
            resident = sum(1 for t in tokens if t in handle.tables)
            return (-resident, len(handle.inflight), handle.worker_id)

        return min(handles, key=score)

    # -- scatter / gather ---------------------------------------------------------

    def run_tasks(
        self,
        artifact_key: str,
        artifact_payload: Dict[str, Any],
        token_plans: List[Tuple[tuple, ...]],
        params_blob: bytes,
        payload_for: Callable[[tuple], Any],
        cancel: Optional[Callable[[], None]] = None,
    ) -> Tuple[List[Any], float]:
        """Scatter one task per token plan, gather partials in plan order.

        Returns ``(partials, worker_seconds)`` where *worker_seconds*
        sums the kernel wall time the workers reported — the remote half
        of the ``dist.worker`` phase in ``explain_analyze``.
        """
        with self._dispatch_lock:
            handles = self.ensure_workers()
            tasks = [
                DistTask(
                    task_id=next(self._task_ids),
                    index=i,
                    artifact_key=artifact_key,
                    tokens=tuple(tokens),
                    params_blob=params_blob,
                )
                for i, tokens in enumerate(token_plans)
            ]
            assigned: Dict[int, _WorkerHandle] = {}
            for task in tasks:
                handle = self._place(handles, task.tokens)
                self._submit(handle, task, artifact_payload, payload_for)
                assigned[task.task_id] = handle
            METRICS.counter("dist.tasks_dispatched").add(len(tasks))
            try:
                return self._gather(
                    tasks, assigned, artifact_payload, payload_for, cancel
                )
            finally:
                # a failed/cancelled gather leaves no accounting behind:
                # late results are ignored by task-id, so only the
                # in-flight bookkeeping needs scrubbing
                for handle in set(assigned.values()):
                    for task in tasks:
                        handle.inflight.pop(task.task_id, None)

    def _submit(
        self,
        handle: _WorkerHandle,
        task: DistTask,
        artifact_payload: Dict[str, Any],
        payload_for: Callable[[tuple], Any],
    ) -> None:
        self._ship_artifact(handle, task.artifact_key, artifact_payload)
        self._ship_tables(handle, task.tokens, payload_for)
        handle.inflight[task.task_id] = task
        handle.tasks.put(
            ("task", task.task_id, task.artifact_key, task.tokens, task.params_blob)
        )

    def _gather(
        self,
        tasks: List[DistTask],
        assigned: Dict[int, _WorkerHandle],
        artifact_payload: Dict[str, Any],
        payload_for: Callable[[tuple], Any],
        cancel: Optional[Callable[[], None]],
    ) -> Tuple[List[Any], float]:
        pending = {task.task_id: task for task in tasks}
        partials: Dict[int, Any] = {}
        worker_seconds = 0.0
        next_liveness = time.monotonic() + _LIVENESS_INTERVAL
        while pending:
            if cancel is not None:
                cancel()
            progressed = False
            for handle in set(assigned.values()):
                while True:
                    try:
                        message = handle.results.get_nowait()
                    except queue_module.Empty:
                        break
                    except (EOFError, OSError):
                        break
                    progressed = True
                    kind, worker_id, task_id = message[0], message[1], message[2]
                    task = pending.get(task_id)
                    if task is None:
                        continue  # duplicate after resubmission, or stale
                    worker_seconds += float(message[3])
                    if kind == "done":
                        partials[task.index] = message[4]
                        del pending[task_id]
                        handle.inflight.pop(task_id, None)
                    else:
                        handle.inflight.pop(task_id, None)
                        self._raise_worker_error(message[4], message[5])
            if not pending:
                break
            now = time.monotonic()
            if not progressed and now >= next_liveness:
                next_liveness = now + _LIVENESS_INTERVAL
                self._resubmit_lost(
                    pending, assigned, artifact_payload, payload_for
                )
            if not progressed:
                time.sleep(_POLL_SLEEP)
        ordered = [partials[i] for i in range(len(tasks))]
        return ordered, worker_seconds

    def _resubmit_lost(
        self,
        pending: Dict[int, DistTask],
        assigned: Dict[int, _WorkerHandle],
        artifact_payload: Dict[str, Any],
        payload_for: Callable[[tuple], Any],
    ) -> None:
        dead = {
            h for h in set(assigned.values()) if h.inflight and not h.alive()
        }
        if not dead:
            return
        with self._lock:
            for handle in dead:
                if handle in self._handles:
                    self._handles.remove(handle)
            survivors = [h for h in self._handles if h.alive()]
        for handle in dead:
            self._reap(handle)
        METRICS.counter("dist.worker_losses").add(len(dead))
        orphaned = [
            task
            for task_id, task in sorted(pending.items())
            if assigned[task_id] in dead
        ]
        if not orphaned:
            return
        if not survivors:
            raise DistributedError(
                f"all workers died with {len(orphaned)} shard task(s) "
                f"outstanding; no survivors to resubmit to"
            )
        for task in orphaned:
            handle = self._place(survivors, task.tokens)
            self._submit(handle, task, artifact_payload, payload_for)
            assigned[task.task_id] = handle
            METRICS.counter("dist.resubmissions").add()

    @staticmethod
    def _raise_worker_error(error_type: str, message: str) -> None:
        """Re-raise a worker-side failure under its sequential type."""
        cls = getattr(errors_module, error_type, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            try:
                error = cls(message)
            except TypeError:
                error = None
            if error is not None:
                raise error
        raise ExecutionError(f"distributed worker failed: {error_type}: {message}")


# ---------------------------------------------------------------------------
# Process-wide pools (keyed by worker count, torn down atexit)
# ---------------------------------------------------------------------------

_POOLS: Dict[int, ClusterScheduler] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(workers: int) -> ClusterScheduler:
    """The process-wide pool for *workers*, created/replaced on demand."""
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is not None and pool._closed:
            pool = None
        if pool is None:
            pool = ClusterScheduler(workers)
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Stop every pool and join its workers (idempotent; atexit hook)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)
