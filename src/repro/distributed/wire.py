"""Wire encoding for the distributed tier: artifacts, rows, params.

Everything that crosses the coordinator/worker process boundary goes
through this module, and the encoding is deliberately boring: tagged
tuples plus pickle.  Three kinds of payload exist —

* **namespace specs** — a compiled kernel is broadcast as its generated
  *source* plus a recipe for rebuilding the module globals the printer
  bound (record types, runtime helpers, numpy).  Modules travel by name,
  runtime record types by ``(type_name, fields)`` (rebuilt through the
  shared :func:`~repro.expressions.evaluator.make_record_type` cache so
  both processes agree on row identity), and everything else by pickle.
  Functions *defined by the generated module itself* are skipped — the
  worker's ``exec`` of the source re-creates them.
* **result values** — partial rows may be namedtuple records, plain
  tuples, dates, or numpy scalars.  Every tuple is tagged (``__rec__`` /
  ``__tup__``) so decoding is unambiguous, and the private
  ``_NO_VALUE`` sentinel of the scalar merge travels as its own tag
  (object identity does not survive pickling).
* **params** — the user's parameter dict, minus the reserved morsel
  window keys and the cancellation token (a token holds a lock; the
  coordinator checkpoints cancellation between gather steps instead).

A value that cannot be encoded raises :class:`UnshippableError`; the
provider treats that as "this query does not distribute" and falls back
to the thread tier — never as a query failure.
"""

from __future__ import annotations

import importlib
import inspect
import pickle
from typing import Any, Dict, List, Tuple

from ..errors import DistributedError
from ..expressions.evaluator import make_record_type
from ..runtime.cancellation import CANCEL_PARAM
from ..runtime.parallel import MORSEL_START, MORSEL_STOP, _NO_VALUE

__all__ = [
    "UnshippableError",
    "decode_namespace",
    "decode_value",
    "encode_namespace",
    "encode_params",
    "encode_value",
]


class UnshippableError(DistributedError):
    """A kernel namespace or parameter set cannot cross processes.

    Not a query failure: the provider catches this while planning and
    runs the query on the thread tier instead.
    """


#: namespace names never shipped: rebuilt by ``exec`` / interpreter-local
_SKIP_BINDINGS = frozenset({"__builtins__", "__verifier_report__"})


def encode_namespace(namespace: Dict[str, Any]) -> List[Tuple[Any, ...]]:
    """Recipe for rebuilding a generated module's globals in a worker."""
    spec: List[Tuple[Any, ...]] = []
    for name, value in namespace.items():
        if name in _SKIP_BINDINGS:
            continue
        if getattr(value, "__globals__", None) is namespace:
            # defined by the generated module itself; exec re-creates it
            continue
        if inspect.ismodule(value):
            spec.append((name, "module", value.__name__))
        elif (
            isinstance(value, type)
            and issubclass(value, tuple)
            and hasattr(value, "_fields")
        ):
            spec.append((name, "record", value.__name__, tuple(value._fields)))
        else:
            try:
                spec.append((name, "pickle", pickle.dumps(value)))
            except Exception as exc:
                raise UnshippableError(
                    f"kernel binding {name!r} ({type(value).__name__}) "
                    f"cannot cross the process boundary: {exc}"
                ) from exc
    return spec


def decode_namespace(spec: List[Tuple[Any, ...]]) -> Dict[str, Any]:
    namespace: Dict[str, Any] = {}
    for entry in spec:
        name, kind = entry[0], entry[1]
        if kind == "module":
            namespace[name] = importlib.import_module(entry[2])
        elif kind == "record":
            type_name, fields = entry[2], entry[3]
            namespace[name] = make_record_type(
                fields, None if type_name == "Row" else type_name
            )
        else:
            namespace[name] = pickle.loads(entry[2])
    return namespace


def encode_value(value: Any) -> Any:
    """Tag tuples/records/sentinels so decode is unambiguous."""
    if value is _NO_VALUE:
        return ("__noval__",)
    if isinstance(value, tuple):
        if hasattr(value, "_fields"):
            return (
                "__rec__",
                type(value).__name__,
                tuple(value._fields),
                tuple(encode_value(v) for v in value),
            )
        return ("__tup__", tuple(encode_value(v) for v in value))
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, tuple) and value:
        tag = value[0]
        if tag == "__noval__":
            return _NO_VALUE
        if tag == "__rec__":
            type_name, fields = value[1], value[2]
            record_type = make_record_type(
                fields, None if type_name == "Row" else type_name
            )
            return record_type(*(decode_value(v) for v in value[3]))
        if tag == "__tup__":
            return tuple(decode_value(v) for v in value[1])
    return value


def encode_params(params: Dict[str, Any]) -> bytes:
    """Pickle the user params minus process-local reserved keys."""
    shippable = {
        k: v
        for k, v in params.items()
        if k not in (CANCEL_PARAM, MORSEL_START, MORSEL_STOP)
    }
    try:
        return pickle.dumps(shippable)
    except Exception as exc:
        raise UnshippableError(
            f"query parameters cannot cross the process boundary: {exc}"
        ) from exc
