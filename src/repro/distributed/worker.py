"""The long-lived worker process: compile-once, execute per shard.

``worker_main`` is the spawn entry point.  A worker owns two caches:

* **artifacts** — compiled kernel modules keyed by the coordinator's
  artifact key.  The coordinator runs the whole front half of the
  pipeline exactly once (canonicalize → analyze → optimize → lower →
  codegen → verify) and broadcasts the *generated source* plus a
  namespace recipe; the worker only ``exec``-compiles it.  A query
  shape is therefore compiled once per worker process, ever — never
  re-planned.
* **tables** — materialized shards/broadcast tables keyed by their
  ``(uid, version, length, part)`` token.  When a payload with a newer
  watermark for the same table arrives, superseded residents are
  dropped (shard ownership follows the newest snapshot).

The protocol is deliberately small.  Requests on the worker's private
task queue::

    ("artifact", key, payload)        # broadcast compile
    ("table", TableShard)             # shard / broadcast residency
    ("task", task_id, key, tokens, params_blob)
    ("stop",)

Replies on the worker's private result queue (private per worker so a
SIGKILL mid-``put`` can never corrupt a queue another worker shares)::

    ("done", worker_id, task_id, kernel_seconds, encoded_partial)
    ("err",  worker_id, task_id, kernel_seconds, error_type, message)

Kernel failures reply ``err`` with the original error type name: the
coordinator re-raises the sequential error class, so distribution never
changes *what* error a query produces.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict

from ..codegen.compiler import compile_source
from ..errors import ExecutionError
from ..runtime.parallel import (
    MORSEL_START,
    MORSEL_STOP,
    _EMPTY_AGGREGATE_MSG,
    _NO_VALUE,
)
from . import shards, wire

__all__ = ["worker_main"]


def _compile_artifact(payload: Dict[str, Any]) -> Dict[str, Any]:
    kernels = []
    for source, ns_spec in payload["kernels"]:
        namespace = wire.decode_namespace(ns_spec)
        # the coordinator's backend already ran the AST verifier on this
        # exact source; the worker trusts the broadcast artifact
        fn, _ = compile_source(source, namespace, verify=False)
        kernels.append(fn)
    return {
        "mode": payload["mode"],
        "morsel_ordinal": payload["morsel_ordinal"],
        "slot_kinds": payload.get("slot_kinds", ()),
        "kernels": kernels,
    }


def _run_task(
    artifact: Dict[str, Any],
    sources: list,
    params: Dict[str, Any],
) -> list:
    """One kernel invocation over the whole local shard (start=0)."""
    shard_rows = len(sources[artifact["morsel_ordinal"]])
    params = dict(params)
    params[MORSEL_START] = 0
    params[MORSEL_STOP] = shard_rows
    if artifact["mode"] == "scalar":
        partial = []
        for fn, kind in zip(artifact["kernels"], artifact["slot_kinds"]):
            try:
                partial.append(fn(sources, params))
            except ExecutionError as exc:
                # an empty *shard* has no min/max but the whole input
                # may; the coordinator's merge re-raises only when every
                # shard is empty — same rule as the thread tier
                if kind in ("min", "max") and str(exc) == _EMPTY_AGGREGATE_MSG:
                    partial.append(_NO_VALUE)
                else:
                    raise
        return [wire.encode_value(v) for v in partial]
    rows = list(artifact["kernels"][0](sources, params))
    return [wire.encode_value(row) for row in rows]


def worker_main(worker_id: int, tasks: Any, results: Any) -> None:
    artifacts: Dict[str, Any] = {}
    tables: Dict[tuple, Any] = {}
    while True:
        try:
            message = tasks.get()
        except (EOFError, OSError):
            return
        op = message[0]
        if op == "stop":
            return
        if op == "artifact":
            _, key, payload = message
            try:
                artifacts[key] = _compile_artifact(payload)
            except Exception as exc:  # noqa: BLE001 - reported per task
                artifacts[key] = exc
            continue
        if op == "table":
            shard = message[1]
            uid, version, length = shard.token[:3]
            superseded = [
                token
                for token in tables
                if token[0] == uid and (token[1], token[2]) != (version, length)
            ]
            for token in superseded:
                del tables[token]
            tables[shard.token] = shards.materialize(shard)
            continue
        if op == "task":
            _, task_id, key, tokens, params_blob = message
            started = time.perf_counter()
            try:
                artifact = artifacts.get(key)
                if artifact is None:
                    raise ExecutionError(
                        f"worker {worker_id} has no artifact {key!r}"
                    )
                if isinstance(artifact, Exception):
                    raise artifact
                missing = [t for t in tokens if t not in tables]
                if missing:
                    raise ExecutionError(
                        f"worker {worker_id} missing table payloads: {missing}"
                    )
                sources = [tables[t] for t in tokens]
                partial = _run_task(artifact, sources, pickle.loads(params_blob))
                results.put(
                    (
                        "done",
                        worker_id,
                        task_id,
                        time.perf_counter() - started,
                        partial,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - typed reply
                results.put(
                    (
                        "err",
                        worker_id,
                        task_id,
                        time.perf_counter() - started,
                        type(exc).__name__,
                        str(exc),
                    )
                )
