"""Sharded multi-process distributed execution (DESIGN.md §16).

The GIL caps the thread tier's speedup on managed-side work; this
package scales past it with worker *processes* that own table shards
and execute the same compiled artifacts:

* :mod:`~repro.distributed.shards` — pin a StructArray's atomic
  snapshot, slice column buffers per worker, track residency tokens;
* :mod:`~repro.distributed.worker` — the long-lived spawn entry point:
  compile broadcast artifacts once, cache tables, run shard kernels;
* :mod:`~repro.distributed.scheduler` — the cluster scheduler grown out
  of ``AdmissionController``: slots, queue-depth-aware fan-out,
  residency-first placement, worker-loss resubmission;
* :mod:`~repro.distributed.coordinator` — scatter/gather plus the same
  pure merge algebra the thread tier uses, so distributed ≡ sequential;
* :mod:`~repro.distributed.wire` — the process-boundary encodings.

Entry points for users: ``Queryable.distributed(workers=…)``,
``using(distributed=…)``, or ``REPRO_DISTRIBUTED=1`` with
``REPRO_DIST_WORKERS``.
"""

from .coordinator import DistributedQuery, build_distributed_query
from .scheduler import ClusterScheduler, get_pool, shutdown_pools
from .shards import (
    TableShard,
    materialize,
    pin,
    shard_bounds,
    shard_payload,
    table_token,
)
from .wire import UnshippableError

__all__ = [
    "ClusterScheduler",
    "DistributedQuery",
    "TableShard",
    "UnshippableError",
    "build_distributed_query",
    "get_pool",
    "materialize",
    "pin",
    "shard_bounds",
    "shard_payload",
    "shutdown_pools",
    "table_token",
]
