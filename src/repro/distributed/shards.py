"""Shard ownership: partitioning pinned StructArray snapshots for workers.

A shard is built in three steps, each chosen to keep the distributed
results bit-identical to sequential execution:

1. **Pin** — the live array's atomic ``(buffer, length, version)`` state
   is captured with :meth:`~repro.storage.struct_array.StructArray.
   snapshot` (O(1), shares the buffer).  Concurrent appends after the
   pin are invisible to every shard, exactly like the sequential and
   thread-parallel paths.
2. **Slice** — ``data[lo:hi]`` of the pinned prefix is a zero-copy NumPy
   view; pickling it across the spawn boundary copies just those rows
   (column buffers travel as one contiguous structured block, no
   per-row encode/decode).
3. **Token** — every payload carries a stable identity
   ``(table_uid, version, length, part)``.  Workers cache materialized
   tables by token, so a warm query ships only small task messages;
   ``table_uid`` comes from a weak registry (not a raw ``id()``, whose
   values the allocator reuses) and is anchored on the *live* array, so
   successive snapshots of one table share cache residency.

Physical design travels with the payload: indexed column names (the
worker rebuilds prefix-correct hash indexes locally — shipping index
dicts would be larger than the data) and the clustering column (a
contiguous slice of a sorted array is still sorted, so binary-search
range scans stay valid per shard).
"""

from __future__ import annotations

import pickle
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, List, Tuple

import numpy as np

from ..storage.struct_array import StructArray

__all__ = [
    "TableShard",
    "broadcast_payload",
    "materialize",
    "pin",
    "probe_shard",
    "shard_bounds",
    "shard_payload",
    "table_token",
    "table_uid",
]


#: weak registry assigning process-unique table ids (id() values recycle)
_UID_LOCK = threading.Lock()
_UIDS: "weakref.WeakValueDictionary[int, StructArray]" = (
    weakref.WeakValueDictionary()
)
_UID_BY_TABLE: "weakref.WeakKeyDictionary[StructArray, int]" = (
    weakref.WeakKeyDictionary()
)
_NEXT_UID = [0]


def pin(source: StructArray) -> StructArray:
    """An immutable snapshot of *source* (the source itself if frozen)."""
    return source if source.frozen else source.snapshot()


def table_uid(source: StructArray) -> int:
    """Process-unique id of the *live* table behind a snapshot.

    Anchored on the snapshot's parent so that two snapshots of the same
    table — or the same snapshot pinned twice — share one uid, which is
    what lets workers keep shards resident across queries.
    """
    anchor = source
    if source.frozen and source._parent is not None:
        anchor = source._parent
    with _UID_LOCK:
        uid = _UID_BY_TABLE.get(anchor)
        if uid is None:
            _NEXT_UID[0] += 1
            uid = _NEXT_UID[0]
            _UID_BY_TABLE[anchor] = uid
            _UIDS[uid] = anchor
        return uid


def table_token(snapshot: StructArray, part: Tuple[Any, ...]) -> tuple:
    """Worker-cache identity of one payload: uid + watermark + part."""
    version, length = snapshot.watermark
    return (table_uid(snapshot), version, length, part)


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Deterministic contiguous split of ``[0, total)`` into *shards*.

    Mirrors :func:`~repro.runtime.parallel.morsel_bounds`: an empty
    driver still yields one empty shard so aggregate kernels run and
    reproduce sequential empty-input semantics.  Earlier shards get the
    remainder rows, so the split depends only on ``(total, shards)`` —
    a resubmitted task re-slices to identical bounds.
    """
    shards = max(1, shards)
    if total <= 0:
        return [(0, 0)]
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass
class TableShard:
    """One picklable table payload: rows plus physical-design metadata."""

    token: tuple
    schema: Any
    raw: np.ndarray
    version: int
    index_fields: Tuple[str, ...] = ()
    clustering: Any = None
    #: original [lo, hi) window in the pinned snapshot (for diagnostics)
    window: Tuple[int, int] = field(default=(0, 0))


def shard_payload(snapshot: StructArray, lo: int, hi: int) -> TableShard:
    """Payload for rows ``[lo, hi)`` of a pinned snapshot."""
    return TableShard(
        token=table_token(snapshot, ("shard", lo, hi)),
        schema=snapshot.schema,
        # np.array copies the zero-copy view into one contiguous block
        # sized exactly to the shard, which is what pickle transmits
        raw=np.array(snapshot.data[lo:hi]),
        version=snapshot.version,
        index_fields=tuple(snapshot.index_fields()),
        clustering=snapshot.clustering,
        window=(lo, hi),
    )


def broadcast_payload(snapshot: StructArray) -> TableShard:
    """Payload for a whole pinned snapshot (join build sides)."""
    return shard_payload_full(snapshot)


def shard_payload_full(snapshot: StructArray) -> TableShard:
    length = len(snapshot)
    shard = shard_payload(snapshot, 0, length)
    return TableShard(
        token=table_token(snapshot, ("full",)),
        schema=shard.schema,
        raw=shard.raw,
        version=shard.version,
        index_fields=shard.index_fields,
        clustering=shard.clustering,
        window=(0, length),
    )


def materialize(shard: TableShard) -> StructArray:
    """Rebuild a worker-local StructArray from a shipped payload.

    The array is frozen at the shipped version (shards are immutable
    snapshots), indexes are rebuilt locally over the shard's own rows,
    and clustering metadata is pinned at that version so the staleness
    rules behave exactly as they would on the coordinator's snapshot.
    """
    array = StructArray(shard.schema, shard.raw)
    array._state = (shard.raw, len(shard.raw), shard.version)
    array._frozen = True
    if shard.clustering:
        array._clustered_by = shard.clustering
        array._clustered_version = shard.version
    for name in shard.index_fields:
        array.create_index(name)
    return array


def probe_shard(blob: bytes) -> dict:
    """Round-trip diagnostic: unpickle + materialize + describe.

    Module-level so a spawn-context child process can import and run it
    (``tests/test_distributed_shards.py`` asserts the result against the
    parent-side snapshot).
    """
    shard = pickle.loads(blob)
    array = materialize(shard)
    index_ok = all(
        array.get_index(name) is not None and not array.get_index(name).stale()
        for name in shard.index_fields
    )
    return {
        "token": shard.token,
        "dtype": str(array.data.dtype),
        "length": len(array),
        "version": array.version,
        "watermark": array.watermark,
        "frozen": array.frozen,
        "index_fields": tuple(array.index_fields()),
        "indexes_fresh": index_ok,
        "clustering": array.clustering,
        "first_row": tuple(array.data[0].item()) if len(array) else None,
        "last_row": tuple(array.data[-1].item()) if len(array) else None,
    }
