"""Schemas: the bridge between object-land and native-land layouts.

The paper's §5 restricts native processing to "arrays of structs without
references" — flat value types with a fixed byte layout.  A
:class:`Schema` describes exactly such a layout: every field maps to a
fixed-width NumPy dtype (the C struct member), and the same schema also
produces the record class used on the managed (plain Python) side, so one
definition covers both worlds and the object↔native mapping of §6.2 is
mechanical.

Supported field kinds and their native representations:

==========  =======================  ============================
kind        Python value             native dtype
==========  =======================  ============================
``int``     int                      int64
``int32``   int                      int32
``float``   float                    float64
``bool``    bool                     bool
``str``     str                      ``S<size>`` fixed-width bytes
``date``    datetime.date            int32 (days since 1970-01-01)
==========  =======================  ============================
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from ..errors import SchemaError

__all__ = [
    "Field",
    "Schema",
    "date_to_days",
    "days_to_date",
    "encode_value",
    "decode_value",
]

_EPOCH = datetime.date(1970, 1, 1)

_KIND_DTYPES = {
    "int": np.dtype(np.int64),
    "int32": np.dtype(np.int32),
    "float": np.dtype(np.float64),
    "bool": np.dtype(np.bool_),
    "date": np.dtype(np.int32),
}

_VALID_KINDS = frozenset(_KIND_DTYPES) | {"str"}


def date_to_days(value: datetime.date) -> int:
    """Encode a date as days since the Unix epoch (native representation)."""
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Decode a days-since-epoch integer back into a date."""
    return _EPOCH + datetime.timedelta(days=int(days))


@dataclass(frozen=True)
class Field:
    """One flat struct member.

    ``size`` is required for ``str`` fields (the fixed byte width, like a C
    ``char[size]``) and rejected elsewhere.
    """

    name: str
    kind: str
    size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise SchemaError(
                f"unknown field kind {self.kind!r}; valid: {sorted(_VALID_KINDS)}"
            )
        if self.kind == "str":
            if not self.size or self.size <= 0:
                raise SchemaError(f"str field {self.name!r} requires a positive size")
        elif self.size is not None:
            raise SchemaError(
                f"field {self.name!r} of kind {self.kind!r} takes no size"
            )

    @property
    def dtype(self) -> np.dtype:
        if self.kind == "str":
            return np.dtype(f"S{self.size}")
        return _KIND_DTYPES[self.kind]


def encode_value(field: Field, value: Any) -> Any:
    """Convert one managed-side value to its native representation."""
    if value is None:
        raise SchemaError(f"field {field.name!r} cannot be None")
    if field.kind == "str":
        encoded = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        if len(encoded) > (field.size or 0):
            raise SchemaError(
                f"value for {field.name!r} exceeds declared width "
                f"{field.size}: {value!r}"
            )
        return encoded
    if field.kind == "date":
        if isinstance(value, datetime.date):
            return date_to_days(value)
        return int(value)
    return value


def decode_value(field: Field, value: Any) -> Any:
    """Convert one native value back to its managed-side representation."""
    if field.kind == "str":
        raw = bytes(value)
        return raw.rstrip(b"\x00").decode("utf-8")
    if field.kind == "date":
        return days_to_date(int(value))
    if field.kind in ("int", "int32"):
        return int(value)
    if field.kind == "float":
        return float(value)
    if field.kind == "bool":
        return bool(value)
    return value


class Schema:
    """An ordered collection of flat fields with derived layouts."""

    def __init__(self, fields: Sequence[Field], name: str = "Record"):
        if not fields:
            raise SchemaError("a schema requires at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        self.fields: Tuple[Field, ...] = tuple(fields)
        self.name = name
        self._by_name: Dict[str, Field] = {f.name: f for f in self.fields}

    # -- introspection -------------------------------------------------------

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no field {name!r}; "
                f"fields: {list(self.field_names)}"
            ) from None

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        parts = ", ".join(f"{f.name}:{f.kind}" for f in self.fields)
        return f"Schema({self.name}: {parts})"

    @property
    def token(self) -> str:
        """Structural identity used in :class:`SourceExpr` schema tokens."""
        parts = ",".join(f"{f.name}:{f.kind}:{f.size or 0}" for f in self.fields)
        return f"{self.name}({parts})"

    # -- derived layouts -----------------------------------------------------

    def numpy_dtype(self) -> np.dtype:
        """The native struct layout (row-store element type)."""
        return np.dtype([(f.name, f.dtype) for f in self.fields])

    def record_type(self) -> type:
        """The managed-side record class (a named tuple, value semantics)."""
        from ..expressions.evaluator import make_record_type

        return make_record_type(self.field_names, self.name)

    def project(self, names: Sequence[str], name: str | None = None) -> "Schema":
        """A schema containing only *names*, in the given order."""
        return Schema([self[n] for n in names], name=name or f"{self.name}_proj")

    # -- row conversion --------------------------------------------------------

    def encode_row(self, obj: Any) -> Tuple:
        """Object (attribute access) → native tuple in field order."""
        return tuple(
            encode_value(f, getattr(obj, f.name)) for f in self.fields
        )

    def encode_values(self, values: Sequence[Any]) -> Tuple:
        """Positional values → native tuple in field order."""
        if len(values) != len(self.fields):
            raise SchemaError(
                f"expected {len(self.fields)} values, got {len(values)}"
            )
        return tuple(encode_value(f, v) for f, v in zip(self.fields, values))

    def decode_row(self, native_row: Any) -> Any:
        """Native struct row → managed record instance."""
        record_type = self.record_type()
        return record_type(
            *(decode_value(f, native_row[f.name]) for f in self.fields)
        )

    def struct_size(self) -> int:
        """Bytes per element in the native layout (used by the cache model)."""
        return self.numpy_dtype().itemsize
