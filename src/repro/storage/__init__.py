"""Data layout substrate: schemas, row stores, column stores, staging buffers."""

from .buffers import DEFAULT_PAGE_BYTES, BufferList, BufferPage, StreamingBuffer
from .columns import ColumnSet
from .index import HashIndex
from .schema import (
    Field,
    Schema,
    date_to_days,
    days_to_date,
    decode_value,
    encode_value,
)
from .struct_array import StructArray

__all__ = [
    "Field",
    "Schema",
    "date_to_days",
    "days_to_date",
    "encode_value",
    "decode_value",
    "StructArray",
    "ColumnSet",
    "HashIndex",
    "BufferPage",
    "BufferList",
    "StreamingBuffer",
    "DEFAULT_PAGE_BYTES",
]
