"""Hash indexes over struct arrays — a §9 future-work extension.

The paper's conclusion lists "the introduction of structures such as
indexes" as the next step beyond query compilation.  A :class:`HashIndex`
maps each distinct value of one column to the row positions holding it;
the native backend consults a source's registered indexes and compiles
equality filters on indexed columns into index lookups instead of full
scans (see ``repro.codegen.native_backend``).

Indexes are maintained eagerly at build time and are immutable thereafter
— but the array under them no longer is: an index remembers the
``(version, length)`` watermark it was built at, and
:meth:`HashIndex.stale` reports whether the array has grown since.  The
array's ``get_index``/``create_index`` rebuild stale indexes before
handing them out (rebuild-or-bypass — a stale index never answers).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from .schema import encode_value
from .struct_array import StructArray

__all__ = ["HashIndex"]

_EMPTY = np.zeros(0, dtype=np.int64)


class HashIndex:
    """value → sorted row positions, for one column of a StructArray."""

    def __init__(self, array: StructArray, field_name: str):
        self.field = array.schema[field_name]
        self._array = array
        #: the (version, length) watermark this index covers; the array
        #: publishes both atomically, so a build racing an append covers
        #: exactly the prefix it read
        self.built_at = getattr(array, "watermark", (0, len(array)))
        column = array.column(field_name)
        order = np.argsort(column, kind="stable")
        sorted_values = column[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_values[1:] != sorted_values[:-1]))
        )
        self._rows: Dict[Any, np.ndarray] = {}
        for i, start in enumerate(boundaries):
            stop = boundaries[i + 1] if i + 1 < len(boundaries) else len(order)
            value = sorted_values[start]
            key = value.item() if hasattr(value, "item") else value
            self._rows[key] = np.sort(order[start:stop])

    def stale(self) -> bool:
        """True when the array grew past the watermark this index covers."""
        return getattr(self._array, "watermark", self.built_at) != self.built_at

    def lookup(self, value: Any) -> np.ndarray:
        """Row positions whose column equals *value* (managed or native
        representation), in ascending order."""
        native = encode_value(self.field, value)
        return self._rows.get(native, _EMPTY)

    def __len__(self) -> int:
        return len(self._rows)
