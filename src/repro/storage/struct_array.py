"""StructArray — the array-of-structs row store of paper §5.

"In C#, structs are considered value types.  Hence, an array of structs
stores the data elements at each array position instead of a reference.
Storing the source data in fixed-length arrays of structs without
references leads to consecutive storage of data in memory and to a flat
representation of each data element, comparable to a row-store in a
database system."

A :class:`StructArray` wraps a NumPy structured array (which has exactly
that memory layout) together with its :class:`~repro.storage.schema.Schema`.
The native engine generates vectorized code against the raw array; the
managed side can still read individual rows as record objects — the
two-runtime access the paper exploits.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence

import numpy as np

from ..errors import SchemaError
from .schema import Schema

__all__ = ["StructArray"]


class StructArray:
    """Fixed-layout, contiguous row storage over a schema."""

    def __init__(self, schema: Schema, data: np.ndarray):
        expected = schema.numpy_dtype()
        if data.dtype != expected:
            raise SchemaError(
                f"array dtype {data.dtype} does not match schema layout {expected}"
            )
        self.schema = schema
        self.data = data

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema, length: int) -> "StructArray":
        return cls(schema, np.zeros(length, dtype=schema.numpy_dtype()))

    @classmethod
    def from_objects(cls, schema: Schema, objects: Iterable[Any]) -> "StructArray":
        """Build from objects exposing the schema's fields as attributes."""
        rows = [schema.encode_row(obj) for obj in objects]
        return cls._from_encoded(schema, rows)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "StructArray":
        """Build from positional value sequences in schema field order."""
        encoded = [schema.encode_values(row) for row in rows]
        return cls._from_encoded(schema, encoded)

    @classmethod
    def from_columns(cls, schema: Schema, columns: dict) -> "StructArray":
        """Build from per-field arrays (already in native representation)."""
        missing = [n for n in schema.field_names if n not in columns]
        if missing:
            raise SchemaError(f"missing columns: {missing}")
        lengths = {len(columns[n]) for n in schema.field_names}
        if len(lengths) > 1:
            raise SchemaError(f"column length mismatch: {sorted(lengths)}")
        (length,) = lengths or {0}
        data = np.zeros(length, dtype=schema.numpy_dtype())
        for name in schema.field_names:
            data[name] = columns[name]
        return cls(schema, data)

    @classmethod
    def _from_encoded(cls, schema: Schema, rows: List[tuple]) -> "StructArray":
        data = np.array(rows, dtype=schema.numpy_dtype()) if rows else np.zeros(
            0, dtype=schema.numpy_dtype()
        )
        return cls(schema, data)

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one field across all rows."""
        self.schema[name]  # validates the field exists
        return self.data[name]

    def row(self, index: int) -> Any:
        """Decode one row into a managed-side record object."""
        return self.schema.decode_row(self.data[index])

    def __iter__(self) -> Iterator[Any]:
        decode = self.schema.decode_row
        for native_row in self.data:
            yield decode(native_row)

    def to_objects(self) -> List[Any]:
        """Materialize every row as a record object (managed representation)."""
        return list(self)

    def take(self, indexes: np.ndarray) -> "StructArray":
        """Row subset / reordering by index array (copy, stays contiguous)."""
        return StructArray(self.schema, self.data[indexes])

    def filter(self, mask: np.ndarray) -> "StructArray":
        """Row subset by boolean mask (copy, stays contiguous)."""
        return StructArray(self.schema, self.data[mask])

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    # -- clustering (§9 future-work extension) ------------------------------------

    def cluster_by(self, field_name: str) -> "StructArray":
        """A copy physically ordered by *field_name* (§9 "clustering").

        Range predicates on the clustering column compile to binary-search
        bounds instead of full-array masks (see the native backend).  The
        clustering column is recorded on the result.
        """
        import numpy as np

        self.schema[field_name]  # validates
        order = np.argsort(self.data[field_name], kind="stable")
        clustered = StructArray(self.schema, self.data[order])
        clustered.clustered_by = field_name
        return clustered

    @property
    def clustering(self) -> str | None:
        """The column this array is physically ordered by, if any."""
        return getattr(self, "clustered_by", None)

    # -- indexes (§9 future-work extension) --------------------------------------

    def create_index(self, field_name: str):
        """Build (and register) a hash index on *field_name*.

        Registered indexes are found by the native code generator, which
        compiles equality predicates on indexed columns into lookups.
        """
        from .index import HashIndex

        if field_name not in self._indexes:
            self._indexes[field_name] = HashIndex(self, field_name)
        return self._indexes[field_name]

    def get_index(self, field_name: str):
        """The registered index on *field_name*, or None."""
        return self._indexes.get(field_name)

    @property
    def _indexes(self) -> dict:
        if not hasattr(self, "_index_store"):
            self._index_store = {}
        return self._index_store

    def __repr__(self) -> str:
        return f"StructArray({self.schema.name}, n={len(self)}, {self.nbytes()} bytes)"
