"""StructArray — the array-of-structs row store of paper §5.

"In C#, structs are considered value types.  Hence, an array of structs
stores the data elements at each array position instead of a reference.
Storing the source data in fixed-length arrays of structs without
references leads to consecutive storage of data in memory and to a flat
representation of each data element, comparable to a row-store in a
database system."

A :class:`StructArray` wraps a NumPy structured array (which has exactly
that memory layout) together with its :class:`~repro.storage.schema.Schema`.
The native engine generates vectorized code against the raw array; the
managed side can still read individual rows as record objects — the
two-runtime access the paper exploits.

Beyond the paper's static-collection setting, a StructArray is
**append-only mutable with snapshot isolation**: :meth:`append_rows` /
:meth:`append_objects` grow the array past a *watermark* published
atomically as one ``(buffer, length, version)`` state tuple, so readers
never observe a torn length — every read sees a fully-written prefix.
:meth:`snapshot` is O(1): it pins the current state tuple, sharing the
backing buffer zero-copy (rows below the watermark are never mutated
again).  The monotonically increasing :attr:`version` lets the result
recycler distinguish "grew by appends" from "unchanged" and re-run
compiled kernels over only the ``[old_watermark, new_watermark)`` range.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError, SchemaError
from .schema import Schema

__all__ = ["StructArray"]

#: smallest capacity the append path over-allocates to (rows)
_MIN_GROW_ROWS = 64


class StructArray:
    """Fixed-layout, contiguous row storage over a schema.

    Thread-safety contract: appends serialize on a writer lock; readers
    are lock-free.  The backing state is one ``(buffer, length, version)``
    tuple swapped atomically, so any reader sees a consistent prefix —
    rows ``[0, length)`` are immutable once published.
    """

    def __init__(self, schema: Schema, data: np.ndarray):
        expected = schema.numpy_dtype()
        if data.dtype != expected:
            raise SchemaError(
                f"array dtype {data.dtype} does not match schema layout {expected}"
            )
        self.schema = schema
        #: single atomically-published (buffer, length, version) tuple;
        #: readers read it once and never see a half-applied append
        self._state = (data, len(data), 0)
        self._write_lock = threading.Lock()
        #: snapshots refuse appends — their watermark is their identity
        self._frozen = False
        #: field name → HashIndex; always starts empty, even on derived
        #: arrays (take/filter/cluster_by) — indexes describe *this*
        #: array's physical design, never a parent's
        self._index_store: dict = {}
        #: clustering column + the version it was established at; stale
        #: clustering (appends since) is bypassed, never trusted
        self._clustered_by: Optional[str] = None
        self._clustered_version = -1
        #: the live array a snapshot was pinned from (None on live arrays);
        #: lets the snapshot inherit the parent's *logical* index design
        #: while materializing prefix-correct indexes on demand
        self._parent: Optional["StructArray"] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema, length: int) -> "StructArray":
        return cls(schema, np.zeros(length, dtype=schema.numpy_dtype()))

    @classmethod
    def from_objects(cls, schema: Schema, objects: Iterable[Any]) -> "StructArray":
        """Build from objects exposing the schema's fields as attributes."""
        rows = [schema.encode_row(obj) for obj in objects]
        return cls._from_encoded(schema, rows)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "StructArray":
        """Build from positional value sequences in schema field order."""
        encoded = [schema.encode_values(row) for row in rows]
        return cls._from_encoded(schema, encoded)

    @classmethod
    def from_columns(cls, schema: Schema, columns: dict) -> "StructArray":
        """Build from per-field arrays (already in native representation)."""
        missing = [n for n in schema.field_names if n not in columns]
        if missing:
            raise SchemaError(f"missing columns: {missing}")
        lengths = {len(columns[n]) for n in schema.field_names}
        if len(lengths) > 1:
            raise SchemaError(f"column length mismatch: {sorted(lengths)}")
        (length,) = lengths or {0}
        data = np.zeros(length, dtype=schema.numpy_dtype())
        for name in schema.field_names:
            data[name] = columns[name]
        return cls(schema, data)

    @classmethod
    def _from_encoded(cls, schema: Schema, rows: List[tuple]) -> "StructArray":
        data = np.array(rows, dtype=schema.numpy_dtype()) if rows else np.zeros(
            0, dtype=schema.numpy_dtype()
        )
        return cls(schema, data)

    # -- versioned state ---------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The published rows as one contiguous structured array.

        Zero-copy: when the backing buffer is exactly full this is the
        buffer itself; an over-allocated buffer yields a prefix *view*.
        """
        buffer, length, _ = self._state
        return buffer if len(buffer) == length else buffer[:length]

    @property
    def version(self) -> int:
        """Monotonic append counter; bumps exactly once per non-empty
        sanctioned append.  Out-of-band writes (``arr.data[i] = ...``) do
        not bump it — see :meth:`append_rows`."""
        return self._state[2]

    @property
    def watermark(self) -> tuple:
        """Consistent ``(version, length)`` pair for cache keying."""
        _, length, version = self._state
        return (version, length)

    # -- ingest (append path) ----------------------------------------------------

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append positional value sequences; returns the new version.

        The sanctioned mutation API: encodes outside the lock, publishes
        buffer-then-watermark so concurrent readers (including pinned
        snapshots and in-flight morsel kernels) keep iterating their own
        prefix untouched.  An empty batch is a no-op (no version bump).
        """
        encoded = [self.schema.encode_values(row) for row in rows]
        return self._append_encoded(encoded)

    def append_objects(self, objects: Iterable[Any]) -> int:
        """Append objects exposing the schema's fields as attributes."""
        encoded = [self.schema.encode_row(obj) for obj in objects]
        return self._append_encoded(encoded)

    def _append_encoded(self, encoded: List[tuple]) -> int:
        from .buffers import encode_chunks

        if self._frozen:
            raise ExecutionError(
                "cannot append to a snapshot; append to the live array"
            )
        if not encoded:
            return self.version
        chunk = encode_chunks(self.schema, encoded)
        with self._write_lock:
            buffer, length, version = self._state
            need = length + len(chunk)
            if need > len(buffer):
                capacity = max(need, 2 * len(buffer), _MIN_GROW_ROWS)
                grown = np.zeros(capacity, dtype=buffer.dtype)
                grown[:length] = buffer[:length]
                buffer = grown
            # write the new rows *before* publishing the state: a reader
            # that still sees the old tuple reads the old prefix; one
            # that sees the new tuple finds its rows fully written
            buffer[length:need] = chunk
            self._state = (buffer, need, version + 1)
            return version + 1

    def snapshot(self) -> "StructArray":
        """An O(1) immutable view pinned at the current watermark.

        Shares the backing buffer (rows below the watermark never change);
        refuses further appends.  Clustering metadata carries over only
        when still valid at the pinned version; indexes do not carry over
        — they belong to the live array's physical design.
        """
        if self._frozen:
            return self
        snap = StructArray.__new__(StructArray)
        snap.schema = self.schema
        state = self._state
        snap._state = state
        snap._write_lock = threading.Lock()
        snap._frozen = True
        snap._index_store = {}
        snap._parent = self
        if self._clustered_by is not None and self._clustered_version == state[2]:
            snap._clustered_by = self._clustered_by
            snap._clustered_version = state[2]
        else:
            snap._clustered_by = None
            snap._clustered_version = -1
        return snap

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._state[1]

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one field across all rows."""
        self.schema[name]  # validates the field exists
        return self.data[name]

    def row(self, index: int) -> Any:
        """Decode one row into a managed-side record object."""
        return self.schema.decode_row(self.data[index])

    def __iter__(self) -> Iterator[Any]:
        decode = self.schema.decode_row
        for native_row in self.data:
            yield decode(native_row)

    def to_objects(self) -> List[Any]:
        """Materialize every row as a record object (managed representation)."""
        return list(self)

    def take(self, indexes: np.ndarray) -> "StructArray":
        """Row subset / reordering by index array (copy, stays contiguous).

        The result is a fresh array: version 0, no indexes, no clustering
        — derived physical design never aliases the parent's.
        """
        return StructArray(self.schema, self.data[indexes])

    def filter(self, mask: np.ndarray) -> "StructArray":
        """Row subset by boolean mask (copy, stays contiguous; fresh
        version and empty index table, like :meth:`take`)."""
        return StructArray(self.schema, self.data[mask])

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    # -- clustering (§9 future-work extension) ------------------------------------

    def cluster_by(self, field_name: str) -> "StructArray":
        """A copy physically ordered by *field_name* (§9 "clustering").

        Range predicates on the clustering column compile to binary-search
        bounds instead of full-array masks (see the native backend).  The
        clustering column is recorded on the result at its current
        version; appending past it makes the clustering *stale* and the
        :attr:`clustering` property stops reporting it (bypass — appended
        rows are not in sorted position, so binary search would lie).
        """
        self.schema[field_name]  # validates
        order = np.argsort(self.data[field_name], kind="stable")
        clustered = StructArray(self.schema, self.data[order])
        clustered._clustered_by = field_name
        clustered._clustered_version = clustered.version
        return clustered

    @property
    def clustering(self) -> str | None:
        """The column this array is physically ordered by, if that fact
        is still current (no appends since :meth:`cluster_by`)."""
        if self._clustered_by is None:
            return None
        return self._clustered_by if self._clustered_version == self.version else None

    @property
    def clustered_by(self) -> str | None:
        """Backwards-compatible alias of :attr:`clustering`."""
        return self.clustering

    # -- indexes (§9 future-work extension) --------------------------------------

    def create_index(self, field_name: str):
        """Build (and register) a hash index on *field_name*.

        Registered indexes are found by the native code generator, which
        compiles equality predicates on indexed columns into lookups.
        A stale registered index (the array grew since it was built) is
        rebuilt in place.
        """
        from .index import HashIndex

        index = self._index_store.get(field_name)
        if index is None or index.stale():
            index = HashIndex(self, field_name)
            self._index_store[field_name] = index
        return index

    def get_index(self, field_name: str):
        """The registered index on *field_name*, or None.

        Called by *generated* native code at kernel runtime: a stale
        index is rebuilt here (rebuild-or-bypass, never wrong answers),
        so compiled index-lookup artifacts stay correct across appends.
        A snapshot inherits the parent's registered index columns and
        materializes a prefix-correct index on first use (reusing the
        parent's object when the watermarks still agree).
        """
        index = self._index_store.get(field_name)
        if index is not None and index.stale():
            index = self.create_index(field_name)
        if (
            index is None
            and self._parent is not None
            and field_name in self._parent._index_store
        ):
            parent_index = self._parent.get_index(field_name)
            if parent_index is not None and parent_index.built_at != self.watermark:
                from .index import HashIndex

                parent_index = HashIndex(self, field_name)
            index = self._index_store[field_name] = parent_index
        return index

    def index_fields(self) -> tuple:
        """Sorted names of the indexed columns (the physical-design
        component of the provider's source signature); a snapshot reports
        its parent's registered columns."""
        names = set(self._index_store)
        if self._parent is not None:
            names.update(self._parent._index_store)
        return tuple(sorted(names))

    @property
    def _indexes(self) -> dict:
        return self._index_store

    def __repr__(self) -> str:
        return (
            f"StructArray({self.schema.name}, n={len(self)}, "
            f"v{self.version}, {self.nbytes()} bytes)"
        )
