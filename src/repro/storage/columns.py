"""ColumnSet — structure-of-arrays storage for the mini relational engine.

The VectorWise analogue in :mod:`repro.relational.vectorized` processes
column batches; this container is its table representation.  It shares the
:class:`~repro.storage.schema.Schema` vocabulary with the row-store
:class:`~repro.storage.struct_array.StructArray`, and the two convert
losslessly in both directions (the §6.1.1 choice between "columnar" and
"row-wise" staged layouts).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from .schema import Schema
from .struct_array import StructArray

__all__ = ["ColumnSet"]


class ColumnSet:
    """One NumPy array per field, all equal length."""

    def __init__(self, schema: Schema, columns: Dict[str, np.ndarray]):
        missing = [n for n in schema.field_names if n not in columns]
        if missing:
            raise SchemaError(f"missing columns: {missing}")
        lengths = {len(columns[n]) for n in schema.field_names}
        if len(lengths) > 1:
            raise SchemaError(f"column length mismatch: {sorted(lengths)}")
        self.schema = schema
        self.columns = {
            f.name: np.asarray(columns[f.name], dtype=f.dtype) for f in schema.fields
        }
        self._length = lengths.pop() if lengths else 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_struct_array(cls, array: StructArray) -> "ColumnSet":
        columns = {name: array.data[name].copy() for name in array.schema.field_names}
        return cls(array.schema, columns)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence]) -> "ColumnSet":
        return cls.from_struct_array(StructArray.from_rows(schema, rows))

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        self.schema[name]
        return self.columns[name]

    def to_struct_array(self) -> StructArray:
        return StructArray.from_columns(self.schema, self.columns)

    def take(self, indexes: np.ndarray) -> "ColumnSet":
        return ColumnSet(
            self.schema, {n: c[indexes] for n, c in self.columns.items()}
        )

    def filter(self, mask: np.ndarray) -> "ColumnSet":
        return ColumnSet(self.schema, {n: c[mask] for n, c in self.columns.items()})

    def batches(self, batch_size: int) -> Iterator["ColumnSet"]:
        """Stream fixed-size column batches (the vectorized unit of work)."""
        for start in range(0, self._length, batch_size):
            stop = min(start + batch_size, self._length)
            yield ColumnSet(
                self.schema,
                {n: c[start:stop] for n, c in self.columns.items()},
            )

    def decode_rows(self) -> List[Tuple]:
        """All rows as managed record objects (test/verification helper)."""
        return self.to_struct_array().to_objects()

    def nbytes(self) -> int:
        return int(sum(c.nbytes for c in self.columns.values()))

    def __repr__(self) -> str:
        return f"ColumnSet({self.schema.name}, n={len(self)})"
