"""Staging buffers for the hybrid engine (paper §6.1).

The generated managed code copies query-relevant fields into "a linked
list of buffer pages ... allocated in unmanaged memory".  Our pages are
NumPy structured arrays — contiguous, fixed-layout memory the vectorized
kernels consume directly.

Two protocols exist, matching the paper exactly:

* **full materialization** (§6.1.1) — :class:`BufferList` appends a new
  page whenever the current one fills; once staging finishes, the kernels
  see all pages (``materialize`` concatenates, or ``pages()`` streams).
* **buffered materialization** (§6.1.2) — :class:`StreamingBuffer` holds a
  single page and invokes a consumer callback each time it fills, keeping
  the memory footprint fixed at one page.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from ..errors import ExecutionError
from .schema import Schema

__all__ = [
    "BufferPage",
    "BufferList",
    "StreamingBuffer",
    "DEFAULT_PAGE_BYTES",
    "encode_chunks",
]

#: 64 KiB — the paper tested several sizes, found no significant impact,
#: and "settled for a modest buffer size of 64KB" (§7.1).
DEFAULT_PAGE_BYTES = 64 * 1024


def _elems_per_page(schema: Schema, page_bytes: int) -> int:
    per_elem = schema.struct_size()
    return max(1, page_bytes // per_elem)


class BufferPage:
    """One fixed-capacity page of staged rows."""

    __slots__ = ("data", "count", "capacity")

    def __init__(self, schema: Schema, capacity: int):
        self.data = np.zeros(capacity, dtype=schema.numpy_dtype())
        self.count = 0
        self.capacity = capacity

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    def append(self, values: Tuple) -> None:
        """Append one encoded row; caller must check :attr:`full` first."""
        if self.count >= self.capacity:
            raise ExecutionError("buffer page overflow; check .full before append")
        self.data[self.count] = values
        self.count += 1

    def rows(self) -> np.ndarray:
        """The filled prefix of the page."""
        return self.data[: self.count]

    def reset(self) -> None:
        self.count = 0


class BufferList:
    """Full-materialization staging: a growing linked list of pages."""

    def __init__(self, schema: Schema, page_bytes: int = DEFAULT_PAGE_BYTES):
        self.schema = schema
        self.page_capacity = _elems_per_page(schema, page_bytes)
        self._pages: List[BufferPage] = []
        self._current: BufferPage | None = None

    def add_buffer(self) -> BufferPage:
        """Start a new page (the generated code's ``AddBuffer(ctx)``)."""
        page = BufferPage(self.schema, self.page_capacity)
        self._pages.append(page)
        self._current = page
        return page

    def append(self, values: Tuple) -> None:
        """Append one encoded row, growing onto a new page when full."""
        page = self._current
        if page is None or page.full:
            page = self.add_buffer()
        page.append(values)

    def __len__(self) -> int:
        return sum(p.count for p in self._pages)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def pages(self) -> Iterator[np.ndarray]:
        """Stream the filled prefix of every page, in staging order."""
        for page in self._pages:
            if page.count:
                yield page.rows()

    def materialize(self) -> np.ndarray:
        """Concatenate all pages into one contiguous array."""
        filled = [p.rows() for p in self._pages if p.count]
        if not filled:
            return np.zeros(0, dtype=self.schema.numpy_dtype())
        if len(filled) == 1:
            return filled[0]
        return np.concatenate(filled)

    def staged_bytes(self) -> int:
        """Total bytes allocated for staging (the §6.1.2 footprint metric)."""
        return sum(p.data.nbytes for p in self._pages)


def encode_chunks(schema: Schema, encoded_rows: List[Tuple]) -> np.ndarray:
    """Stage encoded rows through fixed-size pages into one native array.

    The ingest path of :meth:`~repro.storage.struct_array.StructArray.
    append_rows`: rows land in §6.1-style chunked buffer pages (bounded
    per-chunk working set, no giant intermediate Python list → ndarray
    conversion in one step) and the filled pages concatenate into the
    contiguous block the append publishes.
    """
    buffers = BufferList(schema)
    for row in encoded_rows:
        buffers.append(row)
    return buffers.materialize()


class StreamingBuffer:
    """Buffered materialization: one reusable page + a consumer callback.

    ``consumer`` is the generated native code's entry point: it is invoked
    with the filled rows each time the page fills ("call the generated C
    code to process the content of a buffer page once it is full"), and
    once more from :meth:`finish` for the final partial page.
    """

    def __init__(
        self,
        schema: Schema,
        consumer: Callable[[np.ndarray], None],
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        self.schema = schema
        self.page = BufferPage(schema, _elems_per_page(schema, page_bytes))
        self._consumer = consumer
        self._staged_total = 0
        self._flushes = 0

    def append(self, values: Tuple) -> None:
        if self.page.full:
            self.flush()
        self.page.append(values)

    def flush(self) -> None:
        if self.page.count:
            self._consumer(self.page.rows())
            self._staged_total += self.page.count
            self._flushes += 1
            self.page.reset()

    def finish(self) -> None:
        """Signal end of input (the ``streaming_done`` flag of §6.1.2)."""
        self.flush()

    @property
    def staged_total(self) -> int:
        return self._staged_total

    @property
    def flushes(self) -> int:
        return self._flushes

    def footprint_bytes(self) -> int:
        """Fixed staging footprint: exactly one page, regardless of input."""
        return int(self.page.data.nbytes)
