"""Shared TPC-H plans for the Table-1 engine comparison.

The three relational executors must run *identical* plans so the
comparison isolates the execution paradigm.  A :class:`PlanBundle`
packages one optimized logical plan (derived from the same LINQ query
builders the main engines use) together with its parameter bindings and
both source representations: object lists for the tuple-at-a-time and
compiled executors, struct arrays for the vectorized one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..expressions.canonical import canonicalize
from ..plans.logical import Plan
from ..plans.optimizer import optimize
from ..plans.translate import translate
from ..tpch.datagen import TPCHData
from ..tpch import queries as _queries

__all__ = ["PlanBundle", "tpch_bundle", "TPCH_QUERY_NAMES"]

TPCH_QUERY_NAMES = ("q1", "q2", "q3")


@dataclass
class PlanBundle:
    """One optimized plan with everything needed to run it anywhere."""

    name: str
    plan: Plan
    object_sources: List[Any]
    array_sources: List[Any]
    params: Dict[str, Any]

    def run(self, executor) -> list:
        """Execute on *executor*, choosing the source representation it needs."""
        sources = (
            self.array_sources
            if type(executor).__name__ == "VectorizedExecutor"
            else self.object_sources
        )
        return list(executor.execute(self.plan, sources, self.params))


def tpch_bundle(data: TPCHData, name: str) -> PlanBundle:
    """Build the shared plan bundle for one of q1/q2/q3."""
    try:
        builder = getattr(_queries, name)
    except AttributeError:
        raise ValueError(f"unknown TPC-H query {name!r}; use one of {TPCH_QUERY_NAMES}")
    object_query = builder(data, "compiled")
    array_query = builder(data, "native")
    canonical = canonicalize(object_query.expr)
    plan = optimize(translate(canonical.tree))
    params = {**canonical.bindings, **object_query.params}
    return PlanBundle(
        name=name,
        plan=plan,
        object_sources=list(object_query.sources),
        array_sources=list(array_query.sources),
        params=params,
    )
