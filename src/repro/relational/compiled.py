"""Compiled plan executor (the Hekaton analogue).

SQL Server's in-memory OLTP engine compiles stored procedures to native
code; Table 1 reports a roughly three-fold improvement over the
interpreted engine on the same data.  Our analogue compiles the *same
logical plan* the Volcano executor interprets into a fused-loop Python
function, reusing the §4 backend — the whole point of the comparison is
that only the execution paradigm changes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence

from ..codegen.compiler import CompiledQuery
from ..codegen.python_backend import PythonBackend
from ..errors import ExecutionError
from ..plans.logical import Plan, ScalarAggregate, plan_key

__all__ = ["CompiledExecutor"]


class CompiledExecutor:
    """Plan → generated Python, with a per-executor compiled-plan cache."""

    name = "compiled"

    def __init__(self) -> None:
        self._backend = PythonBackend()
        self._cache: Dict[Any, CompiledQuery] = {}

    def _compiled(self, plan: Plan, sources: Sequence[Any]) -> CompiledQuery:
        key = plan_key(plan)
        compiled = self._cache.get(key)
        if compiled is None:
            compiled = self._backend.compile(plan, list(sources))
            self._cache[key] = compiled
        return compiled

    def execute(
        self,
        plan: Plan,
        sources: Sequence[Any],
        params: Dict[str, Any],
    ) -> Iterator[Any]:
        compiled = self._compiled(plan, sources)
        if compiled.scalar:
            raise ExecutionError("scalar plans run through execute_scalar")
        return iter(compiled.execute(list(sources), params))

    def execute_scalar(
        self,
        plan: Plan,
        sources: Sequence[Any],
        params: Dict[str, Any],
    ) -> Any:
        if not isinstance(plan, ScalarAggregate):
            raise ExecutionError("not a scalar plan")
        compiled = self._compiled(plan, sources)
        return compiled.execute(list(sources), params)
