"""Named-table catalog for the mini relational engine."""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import ExecutionError
from ..storage.columns import ColumnSet
from ..storage.struct_array import StructArray

__all__ = ["Catalog"]


class Catalog:
    """Tables by name, available in row (objects), struct-array and
    columnar form — one registration serves all three executors."""

    def __init__(self) -> None:
        self._tables: Dict[str, StructArray] = {}
        self._objects: Dict[str, List[Any]] = {}
        self._columns: Dict[str, ColumnSet] = {}

    def register(self, name: str, table: StructArray) -> None:
        self._tables[name] = table
        self._objects.pop(name, None)
        self._columns.pop(name, None)

    def table(self, name: str) -> StructArray:
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def objects(self, name: str) -> List[Any]:
        if name not in self._objects:
            self._objects[name] = self.table(name).to_objects()
        return self._objects[name]

    def columns(self, name: str) -> ColumnSet:
        if name not in self._columns:
            self._columns[name] = ColumnSet.from_struct_array(self.table(name))
        return self._columns[name]

    def names(self) -> List[str]:
        return sorted(self._tables)

    @classmethod
    def for_tpch(cls, data) -> "Catalog":
        """Load every TPC-H relation from a generated dataset."""
        from ..tpch.schema import RELATION_NAMES

        catalog = cls()
        for name in RELATION_NAMES:
            catalog.register(name, data.arrays(name))
        return catalog
