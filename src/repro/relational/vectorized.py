"""Column-batch interpreted plan executor (the VectorWise analogue).

The third execution paradigm of Table 1: the plan is *interpreted* (no
code generation), but each interpretation step processes a whole batch of
column vectors with compiled primitives — vectorized execution amortizes
the interpretation overhead over the batch [2, 20].

Batches flow as :class:`VBatch` (named column arrays plus value kinds);
expressions are evaluated batch-at-a-time by :func:`vec_eval`, a direct
NumPy interpreter for the same expression trees the other engines compile.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError, UnsupportedQueryError
from ..expressions.nodes import (
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
)
from ..plans.logical import (
    Concat,
    Distinct,
    Filter,
    GroupAggregate,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
)
from ..runtime import vectorized as _vec
from ..runtime.streaming import StreamingGroupAggregator, StreamingJoinProbe
from ..storage.columns import ColumnSet
from ..storage.schema import date_to_days
from ..storage.struct_array import StructArray

__all__ = ["VectorizedExecutor", "VBatch", "vec_eval", "DEFAULT_BATCH_SIZE"]

DEFAULT_BATCH_SIZE = 4096


@dataclass
class VBatch:
    """One vector batch: named columns plus their value kinds."""

    columns: Dict[str, np.ndarray]
    kinds: Dict[str, str]

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def take(self, indexes: np.ndarray) -> "VBatch":
        return VBatch({n: c[indexes] for n, c in self.columns.items()}, self.kinds)

    def mask(self, mask: np.ndarray) -> "VBatch":
        return VBatch({n: c[mask] for n, c in self.columns.items()}, self.kinds)

    @classmethod
    def concat(cls, batches: List["VBatch"]) -> "VBatch":
        if not batches:
            raise ExecutionError("cannot concatenate zero batches")
        first = batches[0]
        if len(batches) == 1:
            return first
        columns = {
            n: np.concatenate([b.columns[n] for b in batches]) for n in first.columns
        }
        return cls(columns, first.kinds)


# -- vectorized expression interpretation -------------------------------------


def _coerce_operand(value: Any, kind: str) -> Any:
    if kind == "str" and isinstance(value, str):
        return value.encode("utf-8")
    if kind == "date" and isinstance(value, datetime.date):
        return date_to_days(value)
    return value


def _kind_of(expr: Expr, env: Dict[str, VBatch]) -> str:
    if isinstance(expr, Member):
        target = expr.target
        if isinstance(target, Var) and target.name in env:
            return env[target.name].kinds.get(expr.name, "unknown")
    if isinstance(expr, Constant):
        if isinstance(expr.value, (str, bytes)):
            return "str"
        if isinstance(expr.value, datetime.date):
            return "date"
    if isinstance(expr, Method) and expr.name in ("lower", "upper", "strip"):
        return "str"
    return "unknown"


def vec_eval(
    expr: Expr,
    env: Dict[str, VBatch],
    params: Dict[str, Any],
) -> Any:
    """Evaluate a scalar expression over column batches.

    Returns an array (or a Python scalar for constant subtrees); the caller
    broadcasts as needed.
    """
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Param):
        try:
            return params[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound query parameter: {expr.name!r}") from None
    if isinstance(expr, Member):
        target = expr.target
        if not isinstance(target, Var) or target.name not in env:
            raise UnsupportedQueryError(
                "vectorized interpretation requires flat member access"
            )
        batch = env[target.name]
        try:
            return batch.columns[expr.name]
        except KeyError:
            raise ExecutionError(
                f"batch has no column {expr.name!r}; columns: "
                f"{sorted(batch.columns)}"
            ) from None
    if isinstance(expr, Var):
        batch = env.get(expr.name)
        if batch is not None and list(batch.columns) == ["__value"]:
            return batch.columns["__value"]
        raise UnsupportedQueryError("whole-record values are not vectorizable")
    if isinstance(expr, Binary):
        left_kind = _kind_of(expr.left, env)
        right_kind = _kind_of(expr.right, env)
        coerce = left_kind if left_kind in ("str", "date") else right_kind
        left = vec_eval(expr.left, env, params)
        right = vec_eval(expr.right, env, params)
        if coerce in ("str", "date"):
            left = _coerce_operand(left, coerce)
            right = _coerce_operand(right, coerce)
        return _BINARY_UFUNCS[expr.op](left, right)
    if isinstance(expr, Unary):
        operand = vec_eval(expr.operand, env, params)
        if expr.op == "not":
            return ~operand
        if expr.op == "neg":
            return -operand
        if expr.op == "abs":
            return np.abs(operand)
        return +operand
    if isinstance(expr, Conditional):
        return np.where(
            vec_eval(expr.cond, env, params),
            vec_eval(expr.then, env, params),
            vec_eval(expr.other, env, params),
        )
    if isinstance(expr, Method):
        target = vec_eval(expr.target, env, params)
        target_kind = _kind_of(expr.target, env)
        args = [vec_eval(a, env, params) for a in expr.args]
        if target_kind == "str":
            args = [_coerce_operand(a, "str") for a in args]
        if expr.name == "startswith":
            return np.char.startswith(target, args[0])
        if expr.name == "endswith":
            return np.char.endswith(target, args[0])
        if expr.name == "contains":
            return np.char.find(target, args[0]) >= 0
        if expr.name in ("lower", "upper", "strip"):
            return getattr(np.char, expr.name)(target)
        raise UnsupportedQueryError(f"method {expr.name!r} is not vectorizable")
    if isinstance(expr, Call):
        if expr.name == "abs":
            return np.abs(vec_eval(expr.args[0], env, params))
        raise UnsupportedQueryError(f"function {expr.name!r} is not vectorizable")
    raise UnsupportedQueryError(
        f"cannot vectorize expression node {type(expr).__name__}"
    )


_BINARY_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "truediv": np.true_divide,
    "floordiv": np.floor_divide,
    "mod": np.mod,
    "pow": np.power,
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "and": np.logical_and,
    "or": np.logical_or,
}


def _kind_of_result(expr: Expr, env: Dict[str, VBatch]) -> str:
    known = _kind_of(expr, env)
    if known != "unknown":
        return known
    if isinstance(expr, Binary) and expr.op in (
        "eq", "ne", "lt", "le", "gt", "ge", "and", "or",
    ):
        return "bool"
    if isinstance(expr, Binary):
        left = _kind_of_result(expr.left, env)
        right = _kind_of_result(expr.right, env)
        if expr.op == "truediv" or "float" in (left, right):
            return "float"
        if "int" in (left, right):
            return "int"
    if isinstance(expr, Constant):
        if isinstance(expr.value, bool):
            return "bool"
        if isinstance(expr.value, int):
            return "int"
        if isinstance(expr.value, float):
            return "float"
    return "unknown"


def _output_batch(
    body: Expr, env: Dict[str, VBatch], params: Dict[str, Any], length: int
) -> VBatch:
    def broadcast(value: Any) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return value
        return np.full(length, value)

    if isinstance(body, New):
        columns = {}
        kinds = {}
        for name, expr in body.fields:
            columns[name] = broadcast(vec_eval(expr, env, params))
            kinds[name] = _kind_of_result(expr, env)
        return VBatch(columns, kinds)
    value = broadcast(vec_eval(body, env, params))
    return VBatch({"__value": value}, {"__value": _kind_of_result(body, env)})


# -- the executor ---------------------------------------------------------------


class VectorizedExecutor:
    """Batch-at-a-time interpreted execution over columnar tables."""

    name = "vectorized"

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE):
        self.batch_size = batch_size

    def execute(
        self,
        plan: Plan,
        sources: Sequence[Any],
        params: Dict[str, Any],
    ) -> Iterator[Any]:
        runner = _BatchRunner(sources, params, self.batch_size)
        final = VBatch.concat(list(runner.batches(plan)) or [VBatch({}, {})])
        yield from _decode_batch(final)

    def execute_scalar(
        self,
        plan: Plan,
        sources: Sequence[Any],
        params: Dict[str, Any],
    ) -> Any:
        if not isinstance(plan, ScalarAggregate):
            raise ExecutionError("not a scalar plan")
        runner = _BatchRunner(sources, params, self.batch_size)
        return runner.scalar(plan)


def _decode_batch(batch: VBatch) -> Iterator[Any]:
    from ..expressions.evaluator import make_record_type

    names = list(batch.columns)
    if not names:
        return
    if names == ["__value"]:
        yield from _vec.decode_values(
            batch.columns["__value"], batch.kinds["__value"]
        )
        return
    record_type = make_record_type(tuple(names))
    yield from _vec.decode_rows(
        [batch.columns[n] for n in names],
        [batch.kinds[n] for n in names],
        record_type,
    )


class _BatchRunner:
    def __init__(self, sources: Sequence[Any], params: Dict[str, Any], batch_size: int):
        self._sources = sources
        self._params = params
        self._batch_size = batch_size

    # -- batch streams per operator ------------------------------------------------

    def batches(self, plan: Plan) -> Iterator[VBatch]:
        handler = getattr(self, f"_run_{type(plan).__name__}", None)
        if handler is None:
            raise UnsupportedQueryError(
                f"vectorized executor has no operator for {type(plan).__name__}"
            )
        return handler(plan)

    def _materialize(self, plan: Plan) -> VBatch:
        parts = list(self.batches(plan))
        if not parts:
            return VBatch({}, {})
        return VBatch.concat(parts)

    def _run_Scan(self, plan: Scan) -> Iterator[VBatch]:
        source = self._sources[plan.ordinal]
        if isinstance(source, StructArray):
            source = ColumnSet.from_struct_array(source)
        if not isinstance(source, ColumnSet):
            raise UnsupportedQueryError(
                "the vectorized executor requires ColumnSet/StructArray tables"
            )
        kinds = {f.name: f.kind for f in source.schema.fields}
        for start in range(0, len(source), self._batch_size):
            stop = min(start + self._batch_size, len(source))
            columns = {n: c[start:stop] for n, c in source.columns.items()}
            yield VBatch(columns, kinds)

    def _run_Filter(self, plan: Filter) -> Iterator[VBatch]:
        (param,) = plan.predicate.params
        for batch in self.batches(plan.child):
            mask = vec_eval(plan.predicate.body, {param: batch}, self._params)
            mask = np.asarray(mask, dtype=bool)
            if mask.any():
                yield batch.mask(mask)

    def _run_Project(self, plan: Project) -> Iterator[VBatch]:
        (param,) = plan.selector.params
        for batch in self.batches(plan.child):
            yield _output_batch(
                plan.selector.body, {param: batch}, self._params, len(batch)
            )

    def _run_Join(self, plan: Join) -> Iterator[VBatch]:
        build = self._materialize(plan.right)
        if not build.columns:
            return
        (rparam,) = plan.right_key.params
        build_keys = np.asarray(
            vec_eval(plan.right_key.body, {rparam: build}, self._params)
        )
        probe = StreamingJoinProbe(build_keys)
        (lparam,) = plan.left_key.params
        lvar, rvar = plan.result.params
        for batch in self.batches(plan.left):
            keys = np.asarray(
                vec_eval(plan.left_key.body, {lparam: batch}, self._params)
            )
            li, ri = probe.probe(keys)
            if len(li) == 0:
                continue
            env = {lvar: batch.take(li), rvar: build.take(ri)}
            yield _output_batch(plan.result.body, env, self._params, len(li))

    def _run_GroupAggregate(self, plan: GroupAggregate) -> Iterator[VBatch]:
        # decompose avg into mergeable sum + shared count for page merging
        physical: List[Tuple[str, Optional[Lambda]]] = []
        index_of: Dict[Any, int] = {}

        def slot_for(kind: str, selector: Optional[Lambda]) -> int:
            from ..expressions.nodes import structural_key

            key = (kind, structural_key(selector) if selector else None)
            if key not in index_of:
                index_of[key] = len(physical)
                physical.append((kind, selector))
            return index_of[key]

        extract: List[Tuple[str, int, int]] = []
        for agg in plan.aggregates:
            if agg.kind == "avg":
                extract.append(
                    ("avg", slot_for("sum", agg.selector), slot_for("count", None))
                )
            else:
                extract.append(("direct", slot_for(agg.kind, agg.selector), -1))

        key_body = plan.key.body
        key_fields = (
            list(key_body.fields)
            if isinstance(key_body, New)
            else [("__single", key_body)]
        )
        (key_param,) = plan.key.params
        merger = StreamingGroupAggregator(
            len(key_fields), [kind for kind, _ in physical]
        )
        key_kinds: Dict[str, str] = {}
        for batch in self.batches(plan.child):
            env = {key_param: batch}
            keys = tuple(
                np.asarray(vec_eval(expr, env, self._params))
                for _, expr in key_fields
            )
            if not key_kinds:
                key_kinds = {
                    name: _kind_of_result(expr, env) for name, expr in key_fields
                }
            values = []
            for kind, selector in physical:
                if selector is None:
                    values.append(None)
                else:
                    (p,) = selector.params
                    values.append(
                        np.asarray(vec_eval(selector.body, {p: batch}, self._params))
                    )
            merger.consume_page(keys, values)
        gkeys, gaggs = merger.finalize()

        key_columns = {
            name: gkeys[i] for i, (name, _) in enumerate(key_fields)
        }
        key_batch = VBatch(
            key_columns, {n: key_kinds.get(n, "unknown") for n in key_columns}
        )
        env: Dict[str, VBatch] = {"__key": key_batch}
        n = len(gkeys[0]) if gkeys else 0
        for i, (mode, a, b) in enumerate(extract):
            if mode == "avg":
                column = gaggs[a] / np.maximum(gaggs[b], 1)
                kind = "float"
            else:
                column = gaggs[a]
                kind = "float" if physical[a][0] == "sum" else "int"
            env[f"__agg{i}"] = VBatch({"__value": column}, {"__value": kind})
        output_env = _GroupOutputEnv(env, key_batch)
        yield _output_batch(plan.output, output_env, self._params, n)

    def scalar(self, plan: ScalarAggregate) -> Any:
        if len(plan.aggregates) != 1:
            raise UnsupportedQueryError("vectorized scalar supports one aggregate")
        (agg,) = plan.aggregates
        count = 0
        total = 0.0
        best: Optional[Any] = None
        for batch in self.batches(plan.child):
            n = len(batch)
            if n == 0:
                continue
            count += n
            if agg.selector is not None:
                (p,) = agg.selector.params
                values = np.asarray(
                    vec_eval(agg.selector.body, {p: batch}, self._params)
                )
                if agg.kind in ("sum", "avg"):
                    total += float(values.sum())
                elif agg.kind == "min":
                    page = values.min()
                    best = page if best is None else min(best, page)
                elif agg.kind == "max":
                    page = values.max()
                    best = page if best is None else max(best, page)
        if agg.kind == "count":
            return count
        if agg.kind == "sum":
            return total
        if count == 0:
            raise ExecutionError("aggregate of an empty sequence has no value")
        if agg.kind == "avg":
            return total / count
        return best.item() if hasattr(best, "item") else best

    def _run_Sort(self, plan: Sort) -> Iterator[VBatch]:
        whole = self._materialize(plan.child)
        if not whole.columns:
            return
        keys = []
        for key in plan.keys:
            (p,) = key.params
            keys.append(np.asarray(vec_eval(key.body, {p: whole}, self._params)))
        order = _vec.sort_indexes(keys, plan.descending)
        yield whole.take(order)

    def _run_TopN(self, plan: TopN) -> Iterator[VBatch]:
        from ..expressions.evaluator import interpret

        whole = self._materialize(plan.child)
        if not whole.columns:
            return
        keys = []
        for key in plan.keys:
            (p,) = key.params
            keys.append(np.asarray(vec_eval(key.body, {p: whole}, self._params)))
        n = int(interpret(plan.count, params=self._params))
        idx = _vec.topn_indexes(keys, plan.descending, n)
        yield whole.take(idx)

    def _run_Limit(self, plan: Limit) -> Iterator[VBatch]:
        from ..expressions.evaluator import interpret

        whole = self._materialize(plan.child)
        if not whole.columns:
            return
        start = (
            int(interpret(plan.offset, params=self._params))
            if plan.offset is not None
            else 0
        )
        stop = (
            start + int(interpret(plan.count, params=self._params))
            if plan.count is not None
            else len(whole)
        )
        index = np.arange(start, min(stop, len(whole)))
        yield whole.take(index)

    def _run_Distinct(self, plan: Distinct) -> Iterator[VBatch]:
        whole = self._materialize(plan.child)
        if not whole.columns:
            return
        idx = _vec.distinct_indexes(list(whole.columns.values()))
        yield whole.take(idx)

    def _run_Concat(self, plan: Concat) -> Iterator[VBatch]:
        yield from self.batches(plan.left)
        yield from self.batches(plan.right)


class _GroupOutputEnv(dict):
    """Env for GroupAggregate outputs: __key member access + __agg slots.

    ``Member(Var('__key'), f)`` resolves through the key batch; bare
    ``Var('__aggN')`` resolves to single-column batches.
    """

    def __init__(self, env: Dict[str, VBatch], key_batch: VBatch):
        super().__init__(env)
        single = list(key_batch.columns)
        if single == ["__single"]:
            # scalar group key: Var('__key') itself is the value column
            self["__key"] = VBatch(
                {"__value": key_batch.columns["__single"]},
                {"__value": key_batch.kinds.get("__single", "unknown")},
            )
