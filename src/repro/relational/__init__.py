"""Mini in-memory relational engine — three paradigms, one plan (Table 1).

* :class:`~repro.relational.volcano.VolcanoExecutor` — tuple-at-a-time
  interpreted (≈ SQL Server 2014 classic engine);
* :class:`~repro.relational.compiled.CompiledExecutor` — plan compiled to
  fused loops (≈ Hekaton native stored procedures);
* :class:`~repro.relational.vectorized.VectorizedExecutor` — column-batch
  interpreted (≈ VectorWise).
"""

from .catalog import Catalog
from .compiled import CompiledExecutor
from .sql_plans import TPCH_QUERY_NAMES, PlanBundle, tpch_bundle
from .vectorized import VBatch, VectorizedExecutor, vec_eval
from .volcano import VolcanoExecutor

__all__ = [
    "Catalog",
    "VolcanoExecutor",
    "CompiledExecutor",
    "VectorizedExecutor",
    "VBatch",
    "vec_eval",
    "PlanBundle",
    "tpch_bundle",
    "TPCH_QUERY_NAMES",
]
