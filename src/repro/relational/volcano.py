"""Tuple-at-a-time interpreted plan executor (the SQL Server 2014 analogue).

Table 1 compares the paper's approach against a classical interpreted
relational engine.  This executor is that paradigm: a Volcano-style [8]
iterator per plan operator, one ``next()`` chain traversal per tuple, and
per-tuple *interpretation* of every predicate and selector against the
expression tree.  Unlike the LINQ baseline it fuses grouping with
aggregation (real database engines do); the remaining per-tuple costs are
the paradigm's own.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence

from ..errors import ExecutionError
from ..expressions.evaluator import interpret, make_callable
from ..plans.logical import (
    AggregateSpec,
    Concat,
    Distinct,
    Filter,
    GroupAggregate,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
)
from ..runtime.aggregates import AggSpec, plan_accumulators
from ..runtime.hashtable import JoinTable
from ..runtime.sorting import CompositeKey, quicksort_indexes
from ..runtime.topn import TopNHeap
from ..expressions.nodes import structural_key

__all__ = ["VolcanoExecutor"]


class VolcanoExecutor:
    """Pull-based interpreted execution of a logical plan."""

    name = "volcano"

    def execute(
        self,
        plan: Plan,
        sources: Sequence[Any],
        params: Dict[str, Any],
    ) -> Iterator[Any]:
        return _Cursor(sources, params).open(plan)

    def execute_scalar(
        self,
        plan: Plan,
        sources: Sequence[Any],
        params: Dict[str, Any],
    ) -> Any:
        if not isinstance(plan, ScalarAggregate):
            raise ExecutionError("not a scalar plan")
        cursor = _Cursor(sources, params)
        return cursor.scalar(plan)


class _Cursor:
    def __init__(self, sources: Sequence[Any], params: Dict[str, Any]):
        self._sources = sources
        self._params = params

    def _fn(self, lam):
        return make_callable(lam, self._params)

    def open(self, plan: Plan) -> Iterator[Any]:
        handler = getattr(self, f"_open_{type(plan).__name__}", None)
        if handler is None:
            raise ExecutionError(
                f"volcano executor has no operator for {type(plan).__name__}"
            )
        return handler(plan)

    # -- operators -----------------------------------------------------------

    def _open_Scan(self, plan: Scan) -> Iterator[Any]:
        return iter(self._sources[plan.ordinal])

    def _open_Filter(self, plan: Filter) -> Iterator[Any]:
        predicate = self._fn(plan.predicate)
        return (row for row in self.open(plan.child) if predicate(row))

    def _open_Project(self, plan: Project) -> Iterator[Any]:
        selector = self._fn(plan.selector)
        return (selector(row) for row in self.open(plan.child))

    def _open_Join(self, plan: Join) -> Iterator[Any]:
        left_key = self._fn(plan.left_key)
        right_key = self._fn(plan.right_key)
        result = self._fn(plan.result)

        def generate():
            table = JoinTable()
            for row in self.open(plan.right):
                table.add(right_key(row), row)
            for row in self.open(plan.left):
                for match in table.probe(left_key(row)):
                    yield result(row, match)

        return generate()

    def _open_GroupAggregate(self, plan: GroupAggregate) -> Iterator[Any]:
        key_fn = self._fn(plan.key)
        acc_plan = plan_accumulators(
            [_agg_spec(spec, self._params) for spec in plan.aggregates]
        )

        def generate():
            groups: Dict[Any, Any] = {}
            for row in self.open(plan.child):
                key = key_fn(row)
                acc = groups.get(key)
                if acc is None:
                    acc = groups[key] = acc_plan.new_accumulator()
                acc.update(row)
            for key, acc in groups.items():
                values = acc_plan.finalize(acc)
                yield _evaluate_output(plan.output, key, values, self._params)

        return generate()

    def _open_ScalarAggregate(self, plan: ScalarAggregate):
        raise ExecutionError("scalar plans run through execute_scalar")

    def scalar(self, plan: ScalarAggregate) -> Any:
        acc_plan = plan_accumulators(
            [_agg_spec(spec, self._params) for spec in plan.aggregates]
        )
        acc = acc_plan.new_accumulator()
        for row in self.open(plan.child):
            acc.update(row)
        values = acc_plan.finalize(acc)
        result = _evaluate_output(plan.output, None, values, self._params)
        if result is None:
            raise ExecutionError("aggregate of an empty sequence has no value")
        return result

    def _open_Sort(self, plan: Sort) -> Iterator[Any]:
        key_fns = [self._fn(k) for k in plan.keys]
        directions = tuple(plan.descending)

        def generate():
            rows = list(self.open(plan.child))
            if len(key_fns) == 1:
                keys: List[Any] = [key_fns[0](r) for r in rows]
                order = quicksort_indexes(keys, descending=directions[0])
            else:
                keys = [
                    (CompositeKey(tuple(fn(r) for fn in key_fns), directions), i)
                    for i, r in enumerate(rows)
                ]
                order = quicksort_indexes(keys)
            for i in order:
                yield rows[i]

        return generate()

    def _open_TopN(self, plan: TopN) -> Iterator[Any]:
        key_fns = [self._fn(k) for k in plan.keys]
        limit = int(interpret(plan.count, params=self._params))

        def generate():
            heap = TopNHeap(limit, plan.descending)
            for row in self.open(plan.child):
                heap.offer(tuple(fn(row) for fn in key_fns), row)
            yield from heap.results()

        return generate()

    def _open_Limit(self, plan: Limit) -> Iterator[Any]:
        import itertools

        start = (
            int(interpret(plan.offset, params=self._params))
            if plan.offset is not None
            else 0
        )
        stop = (
            start + int(interpret(plan.count, params=self._params))
            if plan.count is not None
            else None
        )
        return itertools.islice(self.open(plan.child), start, stop)

    def _open_Distinct(self, plan: Distinct) -> Iterator[Any]:
        def generate():
            seen = set()
            for row in self.open(plan.child):
                if row not in seen:
                    seen.add(row)
                    yield row

        return generate()

    def _open_Concat(self, plan: Concat) -> Iterator[Any]:
        import itertools

        return itertools.chain(self.open(plan.left), self.open(plan.right))


def _agg_spec(spec: AggregateSpec, params: Dict[str, Any]) -> AggSpec:
    selector = make_callable(spec.selector, params) if spec.selector else None
    selector_key = structural_key(spec.selector) if spec.selector else None
    return AggSpec(spec.kind, selector_key, selector)


def _evaluate_output(output, key, agg_values, params):
    """Evaluate a GroupAggregate output expr for one finished group."""
    env = {f"__agg{i}": v for i, v in enumerate(agg_values)}
    if key is not None:
        env["__key"] = key
    return interpret(output, env=env, params=params)
