"""Bounded heap for fused ``OrderBy`` + ``Take(N)``.

Paper §2.3 ("Independent operators"): LINQ-to-objects sorts the entire
input and then takes the first N results; "a better approach would be to
merge both operations and maintain a heap with the N highest/lowest
values".  The optimizer rewrites ``order_by(...).take(n)`` into a ``TopN``
plan node and the compiled engines use this structure for it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Sequence, Tuple

from .sorting import multi_key_less

__all__ = ["TopNHeap"]


class TopNHeap:
    """Keeps the N smallest elements under a multi-key ordering.

    ``directions[i]`` is True when key ``i`` orders descending; "smallest"
    is interpreted under that combined order, so the heap yields exactly
    what ``order_by ... then_by ... take(n)`` would produce.

    Implementation detail: Python's heapq is a min-heap, so we keep the
    *largest-so-far* retained element on top by pushing inverted comparison
    wrappers, and evict it when a smaller candidate arrives.
    """

    __slots__ = ("_limit", "_directions", "_heap", "_tiebreak")

    def __init__(self, limit: int, directions: Sequence[bool]):
        if limit < 0:
            raise ValueError("TopN limit must be non-negative")
        self._limit = limit
        self._directions = tuple(directions)
        self._heap: List[Tuple["_Inverted", int, Any]] = []
        # insertion counter keeps the sort stable for equal keys
        self._tiebreak = itertools.count()

    def offer(self, key: Tuple, element: Any) -> None:
        """Consider one element; retains it only if it ranks in the top N."""
        if self._limit == 0:
            return
        # negated counter: after the reverse=True sort in results(), equal
        # keys come out in insertion order (stable, like LINQ's OrderBy)
        entry = (_Inverted(key, self._directions), -next(self._tiebreak), element)
        if len(self._heap) < self._limit:
            heapq.heappush(self._heap, entry)
        elif self._heap[0][0] < entry[0]:
            # current worst retained element ranks after the candidate
            heapq.heapreplace(self._heap, entry)

    def results(self) -> List[Any]:
        """Return retained elements in the requested order."""
        ordered = sorted(self._heap, reverse=True)
        return [element for _, _, element in ordered]

    def __len__(self) -> int:
        return len(self._heap)


class _Inverted:
    """Comparison wrapper that reverses the multi-key order for heapq."""

    __slots__ = ("key", "directions")

    def __init__(self, key: Tuple, directions: Tuple[bool, ...]):
        self.key = key if isinstance(key, tuple) else (key,)
        self.directions = directions

    def __lt__(self, other: "_Inverted") -> bool:
        # inverted: self < other  ⇔  self ranks *after* other
        return multi_key_less(other.key, self.key, self.directions)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and self.key == other.key
