"""Runtime guard helpers shared by the evaluator and generated code.

Division by zero inside a query expression raises
:class:`~repro.errors.ExecutionError` with a uniform message across
every engine — the interpreted evaluator, the generated Python/hybrid
loops, and the vectorized native kernels all funnel through these
helpers, which is what makes proof-driven guard elision observable only
as a performance change, never a behaviour change.

The scalar helpers live on :mod:`repro.expressions.evaluator` (the
semantic reference interpreter, which cannot import this package) and
are re-exported here under their runtime-facing home.
"""

from __future__ import annotations

import numpy as _np

from ..errors import ExecutionError
from ..expressions.evaluator import (
    DIV_BY_ZERO,
    guarded_floordiv,
    guarded_mod,
    guarded_truediv,
)

__all__ = [
    "DIV_BY_ZERO",
    "guarded_truediv",
    "guarded_floordiv",
    "guarded_mod",
    "ensure_nonzero_array",
]


def ensure_nonzero_array(values):
    """Raise if any divisor in a vectorized division is zero."""
    arr = _np.asarray(values)
    if arr.ndim == 0:
        if arr == 0:
            raise ExecutionError(DIV_BY_ZERO)
        return values
    if arr.size and bool((arr == 0).any()):
        raise ExecutionError(DIV_BY_ZERO)
    return values
