"""Vectorized (NumPy) kernels called by generated native code.

These are the Python stand-ins for the paper's generated C: compiled,
whole-array routines over contiguous memory.  The native backend's
generated source composes them with inline vectorized expressions; no
per-element Python executes between kernel calls.

Kernel design notes:

* grouping factorizes keys with ``np.unique(return_inverse=True)`` and
  aggregates with ``np.bincount`` / ``ufunc.at`` — one pass per physical
  aggregate over contiguous arrays;
* the hash join sorts the build side once and probes with
  ``np.searchsorted`` (binary search on contiguous keys), expanding
  multi-matches with ``np.repeat`` — the cache-friendly equivalent of a
  bucket-chain hash table;
* multi-key ordering uses ``np.lexsort`` after mapping each key to an
  ascending-sortable form (descending numeric keys negate; descending
  byte-string keys negate their factorized codes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "factorize",
    "group_aggregate",
    "hash_join_indexes",
    "left_join_indexes",
    "gather_defaulted",
    "multiset_mask",
    "probe_sorted",
    "semi_join_mask",
    "sort_indexes",
    "topn_indexes",
    "distinct_indexes",
    "decode_rows",
    "decode_values",
    "coerce_str",
    "coerce_date",
]


def factorize(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return (codes, uniques): codes are ranks in sorted unique order."""
    uniques, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64, copy=False), uniques


def _combined_codes(
    keys: Sequence[np.ndarray],
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...], np.ndarray]:
    """Factorize a composite key: dense codes, per-key group values, and the
    first-occurrence row of each group.

    Combines per-key codes positionally (mixed radix), then refactorizes the
    combination so codes are dense.
    """
    if len(keys) == 1:
        uniques, first_rows, codes = np.unique(
            keys[0], return_index=True, return_inverse=True
        )
        return codes.astype(np.int64, copy=False), (uniques,), first_rows
    per_key = [factorize(k) for k in keys]
    combined = np.zeros(len(keys[0]), dtype=np.int64)
    for codes, uniques in per_key:
        combined *= max(len(uniques), 1)
        combined += codes
    dense, first_rows = np.unique(combined, return_index=True)
    lookup = np.searchsorted(dense, combined)
    key_values = tuple(k[first_rows] for k in keys)
    return lookup, key_values, first_rows


def _group_sum(
    codes: np.ndarray, values: np.ndarray, ngroups: int
) -> np.ndarray:
    """Per-group sums with a dtype-exact accumulator.

    ``np.bincount(weights=...)`` always accumulates in float64, which
    silently loses exactness for int64 values above 2**53.  Integer and
    boolean inputs therefore get an int64 accumulator instead; floats
    keep the bincount fast path.
    """
    assert values is not None
    if np.issubdtype(values.dtype, np.integer) or values.dtype == np.bool_:
        out = np.zeros(ngroups, dtype=np.int64)
        np.add.at(out, codes, values)
        return out
    return np.bincount(codes, weights=values, minlength=ngroups)


def group_aggregate(
    keys: Sequence[np.ndarray],
    aggs: Sequence[Tuple[str, Optional[np.ndarray]]],
) -> Tuple[Tuple[np.ndarray, ...], List[np.ndarray]]:
    """Group rows by composite *keys* and compute *aggs* per group.

    ``aggs`` entries are ``(kind, values)`` with ``values`` None only for
    ``count``.  Returns per-key unique-value arrays (group order = sorted
    composite key order) and one result array per aggregate.
    """
    if not keys:
        raise ValueError("group_aggregate requires at least one key")
    codes, key_values, first_rows = _combined_codes(keys)
    ngroups = len(key_values[0])
    results: List[np.ndarray] = []
    counts: Optional[np.ndarray] = None
    for kind, values in aggs:
        if kind == "count":
            if counts is None:
                counts = np.bincount(codes, minlength=ngroups)
            results.append(counts)
        elif kind == "sum":
            results.append(_group_sum(codes, values, ngroups))
        elif kind == "avg":
            if counts is None:
                counts = np.bincount(codes, minlength=ngroups)
            sums = np.bincount(codes, weights=values, minlength=ngroups)
            results.append(sums / counts)
        elif kind in ("min", "max"):
            assert values is not None
            if np.issubdtype(values.dtype, np.number):
                fill = (
                    (np.inf if kind == "min" else -np.inf)
                    if np.issubdtype(values.dtype, np.floating)
                    else (
                        np.iinfo(values.dtype).max
                        if kind == "min"
                        else np.iinfo(values.dtype).min
                    )
                )
                out = np.full(ngroups, fill, dtype=values.dtype)
                ufunc = np.minimum if kind == "min" else np.maximum
                ufunc.at(out, codes, values)
                results.append(out)
            else:
                # byte-string min/max: sort by (code, value) and slice edges
                order = np.lexsort((values, codes))
                boundaries = np.searchsorted(codes[order], np.arange(ngroups))
                if kind == "min":
                    results.append(values[order][boundaries])
                else:
                    ends = np.append(boundaries[1:], len(values)) - 1
                    results.append(values[order][ends])
        else:
            raise ValueError(f"unknown aggregate kind {kind!r}")
    # reorder groups to first-seen order, matching the hash-table engines
    perm = np.argsort(first_rows, kind="stable")
    key_values = tuple(k[perm] for k in key_values)
    results = [r[perm] for r in results]
    return key_values, results


def hash_join_indexes(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Equi-join: return aligned (left_idx, right_idx) for all matches.

    Output preserves left (probe) order; ties on the build side expand in
    build order — matching the row-order contract of the hash-join the
    other engines use.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_keys, kind="stable")
    return probe_sorted(right_keys[order], order, left_keys)


def probe_sorted(
    sorted_right: np.ndarray, order: np.ndarray, left_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Probe a pre-sorted build side (shared with the streaming join)."""
    if len(left_keys) == 0 or len(sorted_right) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    if len(left_idx) == 0:
        return left_idx, left_idx.copy()
    # ranges [lo_i, hi_i) flattened in left order
    offsets = np.repeat(lo, counts)
    within = np.arange(len(left_idx)) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order[offsets + within]
    return left_idx, right_idx


def semi_join_mask(left_keys: np.ndarray, right_keys: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows whose key appears in right_keys."""
    if len(right_keys) == 0:
        return np.zeros(len(left_keys), dtype=bool)
    return np.isin(left_keys, right_keys)


def left_join_indexes(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Left-outer equi-join: aligned ``(left_idx, right_idx, matched)``.

    Matched rows expand exactly like :func:`hash_join_indexes`; each
    unmatched probe row appears once with ``matched`` False and a
    placeholder ``right_idx`` of 0 (never dereference it — gather through
    :func:`gather_defaulted` instead).  Probe order is preserved.
    """
    li, ri = hash_join_indexes(left_keys, right_keys)
    matched_probe = semi_join_mask(left_keys, right_keys)
    missing = np.flatnonzero(~matched_probe)
    if len(missing) == 0:
        return li, ri, np.ones(len(li), dtype=bool)
    all_li = np.concatenate([li, missing])
    all_ri = np.concatenate([ri, np.zeros(len(missing), dtype=np.int64)])
    matched = np.concatenate(
        [np.ones(len(li), dtype=bool), np.zeros(len(missing), dtype=bool)]
    )
    # a probe row is either matched or unmatched, never both, so a stable
    # sort on the left index restores probe order without reordering ties
    order = np.argsort(all_li, kind="stable")
    return all_li[order], all_ri[order], matched[order]


def gather_defaulted(
    column: np.ndarray, indexes: np.ndarray, matched: np.ndarray, default, kind: str
) -> np.ndarray:
    """Gather ``column[indexes]`` but substitute *default* where unmatched.

    The build column may be empty (every probe row unmatched), a constant
    projection may hand us a scalar instead of an array, and a byte-string
    default may be wider than the column's fixed itemsize — all widen or
    broadcast instead of faulting.
    """
    if kind == "str":
        default = coerce_str(default)
    elif kind == "date":
        default = coerce_date(default)
    n = len(indexes)
    if not isinstance(column, np.ndarray):
        if kind == "str":
            column = coerce_str(column)
        elif kind == "date":
            column = coerce_date(column)
        return np.where(matched, column, default)
    if len(column) == 0:
        return np.full(n, default)
    out = column[np.where(matched, indexes, 0)]
    if matched.all():
        return out
    if isinstance(default, bytes) and out.dtype.itemsize < len(default):
        out = out.astype(f"S{len(default)}")
    elif isinstance(default, float) and not np.issubdtype(
        out.dtype, np.floating
    ):
        out = out.astype(np.float64)
    out[~matched] = default
    return out


def multiset_mask(
    left_cols: Sequence[np.ndarray],
    right_cols: Sequence[np.ndarray],
    keep_matched: bool,
) -> np.ndarray:
    """Bag-semantics intersect/except mask over whole rows.

    Counts each distinct right row, then keeps a left row when its
    occurrence rank (0-based, in input order) is below the right count
    (``keep_matched`` — INTERSECT ALL) or at/after it (EXCEPT ALL).
    Matches the probe-and-decrement order the row engines use: the
    *first* ``min(l, r)`` copies survive an intersect, the copies beyond
    the right count survive an except.
    """
    nleft = len(left_cols[0]) if left_cols else 0
    nright = len(right_cols[0]) if right_cols else 0
    if nleft == 0:
        return np.zeros(0, dtype=bool)
    if nright == 0:
        fill = not keep_matched
        return np.full(nleft, fill, dtype=bool)
    # factorize both sides on a shared code space
    joint = [np.concatenate([l, r]) for l, r in zip(left_cols, right_cols)]
    codes, _, _ = _combined_codes(joint)
    lcodes, rcodes = codes[:nleft], codes[nleft:]
    ncodes = int(codes.max()) + 1
    counts = np.bincount(rcodes, minlength=ncodes)
    # occurrence rank of each left row among equal rows, in input order
    order = np.argsort(lcodes, kind="stable")
    sorted_codes = lcodes[order]
    starts = np.flatnonzero(np.r_[True, sorted_codes[1:] != sorted_codes[:-1]])
    run_lengths = np.diff(np.r_[starts, nleft])
    ranks_sorted = np.arange(nleft) - np.repeat(starts, run_lengths)
    ranks = np.empty(nleft, dtype=np.int64)
    ranks[order] = ranks_sorted
    if keep_matched:
        return ranks < counts[lcodes]
    return ranks >= counts[lcodes]


def _ascending_form(key: np.ndarray, descending: bool) -> np.ndarray:
    """Map *key* to an array whose ascending order realizes the direction."""
    if not descending:
        return key
    if np.issubdtype(key.dtype, np.number):
        return (
            -key.astype(np.float64)
            if np.issubdtype(key.dtype, np.unsignedinteger)
            else -key
        )
    codes, _ = factorize(key)
    return -codes


def sort_indexes(
    keys: Sequence[np.ndarray], descending: Sequence[bool]
) -> np.ndarray:
    """Stable multi-key, mixed-direction argsort (primary key first)."""
    transformed = [
        _ascending_form(k, d) for k, d in zip(keys, descending)
    ]
    if len(transformed) == 1:
        return np.argsort(transformed[0], kind="stable")
    # lexsort treats the LAST key as primary
    return np.lexsort(tuple(reversed(transformed)))


def topn_indexes(
    keys: Sequence[np.ndarray], descending: Sequence[bool], n: int
) -> np.ndarray:
    """Indexes of the top-*n* rows under the requested ordering.

    Uses ``argpartition`` to shrink the candidate set before the full sort
    — the vectorized counterpart of the bounded heap.
    """
    total = len(keys[0])
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if n >= total:
        return sort_indexes(keys, descending)
    if len(keys) == 1 and np.issubdtype(keys[0].dtype, np.number):
        primary = _ascending_form(keys[0], descending[0])
        partitioned = np.argpartition(primary, n - 1)
        # widen to every row tied with the boundary value so the stable
        # (original-index) tie-break matches the heap's semantics
        boundary = primary[partitioned[n - 1]]
        candidates = np.flatnonzero(primary <= boundary)
        order = np.lexsort((candidates, primary[candidates]))
        return candidates[order][:n]
    full = sort_indexes(keys, descending)
    return full[:n]


#: rows decoded per native→managed crossing; one "EvaluateQuery call"
#: hands back a block of results rather than a single element
_DECODE_CHUNK = 1024


def _decode_column(column: np.ndarray, kind: str) -> list:
    """Bulk-convert one native column chunk to managed values."""
    if kind == "str":
        return [raw.rstrip(b"\x00").decode("utf-8") for raw in column.tolist()]
    if kind == "date":
        import datetime

        epoch = datetime.date(1970, 1, 1)
        day = datetime.timedelta(days=1)
        return [epoch + days * day for days in column.tolist()]
    # tolist() converts numeric/bool dtypes to Python scalars natively
    return column.tolist()


def decode_rows(columns: Sequence[np.ndarray], kinds: Sequence[str], record_type):
    """Yield result records from column arrays, a chunk at a time.

    The native result surface: each chunk boundary is a crossing back into
    the managed (Python) world — the "return result" cost the breakdown
    figures report — while within a chunk conversion stays in compiled
    code.  Lazy beyond the current chunk, preserving deferred execution.
    """
    n = len(columns[0]) if columns else 0
    for start in range(0, n, _DECODE_CHUNK):
        stop = min(start + _DECODE_CHUNK, n)
        decoded = [
            _decode_column(col[start:stop], kind)
            for col, kind in zip(columns, kinds)
        ]
        for values in zip(*decoded):
            yield record_type(*values)


def decode_values(column: np.ndarray, kind: str):
    """Yield scalar results (projection to a single value), chunked."""
    for start in range(0, len(column), _DECODE_CHUNK):
        stop = min(start + _DECODE_CHUNK, len(column))
        yield from _decode_column(column[start:stop], kind)


class RowView:
    """A pointer into native result memory — nothing is copied up front.

    The paper's §5 avoids copying result structs: "we return a pointer to
    the result element as IntPtr ... and cast it to the correct type in
    the caller.  This significantly reduces the cost of queries with huge
    results."  A RowView is that pointer: field access decodes exactly the
    cell touched.
    """

    __slots__ = ("_columns", "_kinds", "_names", "_index")

    def __init__(self, columns: dict, kinds: dict, names: tuple, index: int):
        object.__setattr__(self, "_columns", columns)
        object.__setattr__(self, "_kinds", kinds)
        object.__setattr__(self, "_names", names)
        object.__setattr__(self, "_index", index)

    def __getattr__(self, name: str):
        columns = object.__getattribute__(self, "_columns")
        try:
            column = columns[name]
        except KeyError:
            raise AttributeError(name) from None
        kinds = object.__getattribute__(self, "_kinds")
        index = object.__getattribute__(self, "_index")
        return _decode_column(column[index : index + 1], kinds[name])[0]

    def __iter__(self):
        for name in object.__getattribute__(self, "_names"):
            yield getattr(self, name)

    def __eq__(self, other) -> bool:
        return tuple(self) == tuple(other)

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={getattr(self, n)!r}" for n in self._names)
        return f"RowView({fields})"


def view_rows(columns: dict, kinds: dict, names: tuple):
    """Yield one :class:`RowView` per result row (the no-copy path)."""
    n = len(next(iter(columns.values()))) if columns else 0
    for index in range(n):
        yield RowView(columns, kinds, names, index)


def coerce_str(value) -> bytes:
    """Managed str → native fixed-width-bytes comparison operand."""
    if isinstance(value, str):
        return value.encode("utf-8")
    return value


def coerce_date(value):
    """Managed date → native days-since-epoch comparison operand."""
    import datetime

    if isinstance(value, datetime.date):
        from ..storage.schema import date_to_days

        return date_to_days(value)
    return value


def distinct_indexes(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Indexes of the first occurrence of each distinct row, in input order."""
    if not columns:
        raise ValueError("distinct_indexes requires at least one column")
    _, _, first_rows = _combined_codes(columns)
    return np.sort(first_rows)
