"""Fused aggregate accumulators.

Paper §2.3 ("Aggregation") measures three compounding wins over
LINQ-to-objects: computing all aggregates of a group in *one* loop (~38%),
sharing overlapping computations such as the group count (~12%), and
collapsing grouping and aggregation into a single pass (~10%).  The
compiled engines realize all three through this module:

* an :class:`AggSpec` describes one requested aggregate;
* :func:`plan_accumulators` deduplicates specs (common-subexpression
  elimination: two ``avg``/``count`` pairs needing the same count share one
  slot);
* :class:`FusedAccumulator` updates every distinct slot in a single call
  per element, and is keyed per group inside one hash-grouping pass.

The LINQ-to-objects baseline bypasses all of this on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["AggSpec", "AccumulatorPlan", "FusedAccumulator", "plan_accumulators"]


@dataclass(frozen=True)
class AggSpec:
    """One requested aggregate: a kind plus a value-selector identity.

    ``selector_key`` identifies the selector *expression* (structural key of
    its lambda), so equal selectors dedupe even when traced from distinct
    Python function objects.  ``selector`` is the callable evaluated per
    element (None for ``count``).
    """

    kind: str
    selector_key: Any
    selector: Optional[Callable[[Any], Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in {"sum", "count", "avg", "min", "max"}:
            raise ValueError(f"unknown aggregate kind: {self.kind!r}")
        if self.kind != "count" and self.selector is None:
            raise ValueError(f"aggregate {self.kind!r} requires a selector")


#: one physical accumulator slot: (kind, selector) after CSE
_Slot = Tuple[str, Optional[Callable]]


@dataclass
class AccumulatorPlan:
    """The result of planning: physical slots plus per-spec extraction.

    ``extract[i]`` maps the i-th requested :class:`AggSpec` to a function of
    the slot-value list.  ``avg`` extracts ``sum_slot / count_slot`` —
    that is the shared-count optimization: no avg ever owns a private count.
    """

    slots: List[_Slot]
    extract: List[Callable[[List[Any]], Any]]

    def new_accumulator(self) -> "FusedAccumulator":
        return FusedAccumulator(self.slots)

    def finalize(self, acc: "FusedAccumulator") -> List[Any]:
        values = acc.values()
        return [fn(values) for fn in self.extract]


class FusedAccumulator:
    """Single-pass accumulator over all planned slots."""

    __slots__ = ("_slots", "_state")

    def __init__(self, slots: Sequence[_Slot]):
        self._slots = slots
        self._state: List[Any] = [
            0 if kind in ("sum", "count") else None for kind, _ in slots
        ]

    def update(self, element: Any) -> None:
        state = self._state
        for i, (kind, selector) in enumerate(self._slots):
            if kind == "count":
                state[i] += 1
            elif kind == "sum":
                state[i] += selector(element)
            elif kind == "min":
                value = selector(element)
                if state[i] is None or value < state[i]:
                    state[i] = value
            elif kind == "max":
                value = selector(element)
                if state[i] is None or value > state[i]:
                    state[i] = value

    def values(self) -> List[Any]:
        return list(self._state)


def plan_accumulators(specs: Sequence[AggSpec]) -> AccumulatorPlan:
    """Deduplicate *specs* into physical slots and extraction functions.

    * identical (kind, selector_key) pairs share one slot;
    * ``avg`` is decomposed into a shared ``sum`` and the shared ``count``;
    * at most one ``count`` slot ever exists.
    """
    slot_index: Dict[Tuple[str, Any], int] = {}
    slots: List[_Slot] = []

    def slot_for(kind: str, selector_key: Any, selector: Optional[Callable]) -> int:
        key = (kind, selector_key if kind != "count" else None)
        index = slot_index.get(key)
        if index is None:
            index = len(slots)
            slot_index[key] = index
            slots.append((kind, selector))
        return index

    extract: List[Callable[[List[Any]], Any]] = []
    for spec in specs:
        if spec.kind == "avg":
            sum_i = slot_for("sum", spec.selector_key, spec.selector)
            count_i = slot_for("count", None, None)
            extract.append(_make_avg_extract(sum_i, count_i))
        else:
            index = slot_for(spec.kind, spec.selector_key, spec.selector)
            extract.append(_make_direct_extract(index))
    return AccumulatorPlan(slots=slots, extract=extract)


def _make_direct_extract(index: int) -> Callable[[List[Any]], Any]:
    def get(values: List[Any]) -> Any:
        return values[index]

    return get


def _make_avg_extract(sum_index: int, count_index: int) -> Callable[[List[Any]], Any]:
    def get(values: List[Any]) -> Any:
        count = values[count_index]
        return values[sum_index] / count if count else None

    return get
