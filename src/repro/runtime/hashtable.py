"""Hash-based runtime structures used by generated code.

The compiled-Python engine (paper §4) processes joins as *hash joins* and
grouping as a single hash-partitioned pass — "the operations inside each
loop are modeled after common database practices".  Generated source calls
into these classes; they are deliberately thin wrappers over ``dict`` so the
per-element path stays short.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List

__all__ = ["Grouping", "GroupTable", "JoinTable", "build_join_table"]


class Grouping:
    """One group produced by ``group_by``: a key plus its elements.

    Mirrors LINQ's ``IGrouping<TKey, TElement>``: iterable, with a ``key``
    property.  The LINQ-to-objects analogue hands these to the group result
    selector, whose every aggregate then re-iterates the group — the paper's
    §2.3 inefficiency, preserved on purpose in the baseline engine.
    """

    __slots__ = ("key", "_items")

    def __init__(self, key: Hashable, items: List[Any]):
        self.key = key
        self._items = items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Grouping(key={self.key!r}, n={len(self._items)})"


class GroupTable:
    """Hash-partitions elements by key in one pass."""

    __slots__ = ("_groups",)

    def __init__(self) -> None:
        self._groups: Dict[Hashable, List[Any]] = {}

    def add(self, key: Hashable, element: Any) -> None:
        bucket = self._groups.get(key)
        if bucket is None:
            self._groups[key] = [element]
        else:
            bucket.append(element)

    def groupings(self) -> Iterator[Grouping]:
        """Yield groups in first-seen key order (LINQ's documented order)."""
        for key, items in self._groups.items():
            yield Grouping(key, items)

    def __len__(self) -> int:
        return len(self._groups)


class JoinTable:
    """Build side of a hash join: key → list of build elements."""

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: Dict[Hashable, List[Any]] = {}

    def add(self, key: Hashable, element: Any) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [element]
        else:
            bucket.append(element)

    def probe(self, key: Hashable) -> List[Any]:
        """Return all build elements matching *key* (empty list on miss)."""
        return self._buckets.get(key, _EMPTY)

    def __len__(self) -> int:
        return len(self._buckets)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._buckets


_EMPTY: List[Any] = []


def build_join_table(
    elements: Iterable[Any], key_fn: Callable[[Any], Hashable]
) -> JoinTable:
    """Build a :class:`JoinTable` over *elements* keyed by *key_fn*."""
    table = JoinTable()
    for element in elements:
        table.add(key_fn(element), element)
    return table
