"""Cooperative cancellation for running queries (serving-layer support).

Generated code is straight-line Python or vectorized NumPy — there is no
scheduler that can preempt it.  Instead, every execution path carries a
shared :class:`CancellationToken` in its parameter dictionary under the
reserved name :data:`CANCEL_PARAM` (exactly how the morsel runtime passes
``__morsel_start`` / ``__morsel_stop``), and checks it at well-defined
**checkpoints**:

* each pipeline of the IR emits one ``_cancel_check(_params)`` call at
  its head (all three code-generating backends — see
  ``Pipeline.cancel_checkpoint`` set by :func:`repro.codegen.lower.
  lower_plan`);
* the morsel scheduler checks before dispatching each morsel kernel
  (:mod:`repro.runtime.parallel`);
* the serving executor checks while draining lazy result iterators, so
  the interpreted ``linq`` engine participates too.

Checkpoints are deliberately coarse — per pipeline and per morsel, never
per element — so the generated hot loops stay exactly as fast as before;
the check itself is one dict lookup when no token is present.

A token may carry a **deadline** (absolute :func:`time.monotonic` time):
the token reports itself cancelled once the deadline passes even if
nobody called :meth:`CancellationToken.cancel`, so a worker thread whose
caller already timed out and left still stops at its next checkpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..errors import QueryCancelled, QueryTimeoutError

__all__ = [
    "CANCEL_PARAM",
    "CancellationToken",
    "cancel_check",
]

#: reserved parameter name the executor smuggles the token under; like the
#: morsel bounds, it never collides with user parameters (P() names are
#: identifiers, and identifiers cannot start with ``__`` here by contract)
CANCEL_PARAM = "__cancel"


class CancellationToken:
    """A thread-safe cancel/deadline flag shared by one query execution.

    The caller-facing side (:meth:`cancel`) and the query-side
    (:meth:`check`, called from checkpoints) may run on different
    threads; the flag only ever transitions unset → set.
    """

    __slots__ = ("_cancelled", "_reason", "_deadline", "_lock")

    def __init__(self, deadline: Optional[float] = None):
        self._cancelled = False
        self._reason = ""
        self._deadline = deadline
        self._lock = threading.Lock()

    @classmethod
    def with_timeout(cls, seconds: Optional[float]) -> "CancellationToken":
        """A token that self-expires *seconds* from now (None = never)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.monotonic() + seconds)

    # -- caller side -------------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the token; the query stops at its next checkpoint."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    # -- query side --------------------------------------------------------------

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    @property
    def cancelled(self) -> bool:
        """True once cancelled explicitly or past the deadline."""
        if self._cancelled:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return True
        return False

    @property
    def reason(self) -> str:
        if self._cancelled:
            return self._reason
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return "deadline"
        return ""

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None = no deadline; >= 0 always)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def check(self) -> None:
        """Raise if cancelled — the checkpoint primitive.

        :class:`~repro.errors.QueryTimeoutError` for a deadline,
        :class:`~repro.errors.QueryCancelled` for an explicit cancel.
        """
        if self._cancelled:
            if self._reason == "deadline":
                raise QueryTimeoutError()
            raise QueryCancelled(
                f"query cancelled: {self._reason}", reason=self._reason
            )
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.cancel("deadline")
            raise QueryTimeoutError()


def cancel_check(params: Dict[str, Any]) -> None:
    """Checkpoint helper injected into generated-code namespaces.

    One dict lookup when no token travels with the query — cheap enough
    to sit at every pipeline head without moving the benchmarks.
    """
    token = params.get(CANCEL_PARAM)
    if token is not None:
        token.check()
