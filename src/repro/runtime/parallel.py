"""Morsel-driven parallel execution (a departure from the paper).

The paper's generated code is single-threaded; this module adds a
HyPer-style scheduler on top of it.  The source driving a query is
partitioned into fixed-size **morsels**; the compiled kernel — generated
with ``morsel_ordinal`` so its driver scan takes ``[start:stop)`` slice
parameters — runs once per morsel on a thread pool (the NumPy kernels in
:mod:`repro.runtime.vectorized` release the GIL), and the partial results
merge deterministically in morsel order:

* **rows** — pipelined plans (scan/filter/project/flat-map/join probes)
  concatenate their morsel outputs; the probe order of
  :func:`~repro.runtime.vectorized.hash_join_indexes` is preserved, so the
  concatenation reproduces the sequential row order exactly.
* **scalar** — one partial kernel per physical aggregate slot (``avg``
  decomposed into ``sum`` + ``count`` first, exactly like the §6.1.2
  streaming decomposition); partials fold with ``+`` / ``min`` / ``max``.
* **group** — the per-morsel kernel emits its group table flat
  (``k0..kn, s0..sm``); partial tables merge through the *existing*
  :class:`~repro.runtime.streaming.StreamingGroupAggregator` — the paper's
  buffered-materialization state is precisely a partial-result algebra —
  and the group output expression is re-evaluated per merged group with
  the tree-walking interpreter.  First-seen group order is preserved
  across morsels, matching every sequential engine.

Order-sensitive root operators (sort / top-n / limit / distinct) are
peeled off before the kernel is built (see
:func:`~repro.plans.validate.parallel_split`) and re-applied managed-side
on the merged rows with stable, engine-equivalent semantics.

Results are bit-identical to sequential execution for any worker count
and morsel size whenever the arithmetic itself is order-independent
(integers always; floats when exactly representable — the differential
fuzz harness pins this down).
"""

from __future__ import annotations

import datetime
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..expressions.evaluator import interpret, make_record_type
from ..observability.metrics import METRICS
from ..observability.tracer import TRACER
from ..codegen.ir import physical_slots
from ..expressions.nodes import Expr, Lambda, Member, New, Var
from ..plans.logical import (
    AggregateSpec,
    Distinct,
    GroupAggregate,
    Limit,
    Plan,
    ScalarAggregate,
    Sort,
    TopN,
)
from ..plans.validate import ParallelSplit
from ..storage.schema import date_to_days, days_to_date
from .cancellation import cancel_check
from .streaming import StreamingGroupAggregator

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "MORSEL_START",
    "MORSEL_STOP",
    "GroupMergeSpec",
    "ParallelQuery",
    "ScalarMergeSpec",
    "apply_post_ops",
    "build_parallel_query",
    "finalize_group_table",
    "finalize_scalar",
    "merge_group_table",
    "merge_scalar_slots",
    "morsel_bounds",
    "morsel_slice",
    "source_length",
]

#: default morsel size, in driver rows.  Chosen so the per-morsel working
#: set of a typical aggregation stays cache-resident (the source of the
#: single-socket speedup measured by ``bench_parallel_scaling``).
DEFAULT_MORSEL_ROWS = 65536

#: reserved parameter names the morsel-parameterized kernels slice with
MORSEL_START = "__morsel_start"
MORSEL_STOP = "__morsel_stop"

_EMPTY_AGGREGATE_MSG = "aggregate of an empty sequence has no value"

#: sentinel for a min/max partial over an empty morsel
_NO_VALUE = object()


def morsel_slice(source: Any, start: int, stop: int) -> Any:
    """One morsel of *source*, used by generated managed staging loops.

    Struct arrays slice their native data (zero-copy view); ordinary
    sequences slice; anything merely re-iterable falls back to islice.
    """
    data = getattr(source, "data", None)
    schema = getattr(source, "schema", None)
    if data is not None and schema is not None and hasattr(schema, "decode_row"):
        return type(source)(schema, data[start:stop])
    try:
        return source[start:stop]
    except TypeError:
        return itertools.islice(iter(source), start, stop)


def source_length(source: Any) -> Optional[int]:
    """Row count of a source, or None when it cannot be partitioned."""
    try:
        return len(source)
    except TypeError:
        return None


def morsel_bounds(
    total: int, morsel_rows: int, start: int = 0
) -> List[Tuple[int, int]]:
    """Partition ``[start, total)`` into fixed-size half-open morsels.

    With the default ``start=0`` an empty source still yields one empty
    morsel so aggregate kernels run and reproduce the sequential
    empty-input behaviour (``sum() == 0``, ``min()`` raising).  A positive
    *start* is the delta-recycling window (``[old_watermark,
    new_watermark)``): an empty window there yields no morsels — the
    cached partial state already covers everything.
    """
    if morsel_rows <= 0:
        raise ExecutionError("morsel size must be positive")
    if start < 0:
        raise ExecutionError("morsel window start must be non-negative")
    if total <= start:
        return [(0, 0)] if start == 0 else []
    return [
        (lo, min(lo + morsel_rows, total))
        for lo in range(start, total, morsel_rows)
    ]


# ---------------------------------------------------------------------------
# Physical slot planning (shared with the backends' avg decomposition)
# ---------------------------------------------------------------------------


def _physical_slots(
    specs: Sequence[AggregateSpec],
) -> Tuple[List[Tuple[str, Optional[Lambda]]], List[Tuple[str, int, int]]]:
    """Mergeable physical slots + per-spec extraction recipe.

    ``avg`` cannot merge across morsels, so it decomposes into a ``sum``
    slot and a shared ``count`` slot (re-divided at finalization) — the
    same rule :class:`StreamingGroupAggregator` imposes on pages.  The
    slot plan is the shared one from :func:`repro.codegen.ir.
    physical_slots`, so the merge layout always matches the backends'.
    """
    return physical_slots(specs)


# ---------------------------------------------------------------------------
# The compiled parallel artifact
# ---------------------------------------------------------------------------


@dataclass
class GroupMergeSpec:
    """Everything the group merge needs about the partial table layout."""

    nkeys: int
    key_is_record: bool
    key_field_names: Tuple[str, ...]
    key_type_name: Optional[str]
    #: merge kind per physical slot ("count" partials merge by summing)
    merge_kinds: List[str]
    extract: List[Tuple[str, int, int]]


@dataclass
class ScalarMergeSpec:
    slot_kinds: List[str]
    extract: List[Tuple[str, int, int]]


# kept under the old private names for any out-of-tree callers
_GroupMergeSpec = GroupMergeSpec
_ScalarMergeSpec = ScalarMergeSpec


# ---------------------------------------------------------------------------
# The merge algebra, as pure functions over partial states
# ---------------------------------------------------------------------------
#
# Both executors — the in-process thread pool below and the multi-process
# coordinator in :mod:`repro.distributed` — feed partials through these
# same functions, so there is exactly one definition of what a merge
# means.  They take only specs, partial states and params (no provider,
# no executor), which is also what lets the result recycler hold a cached
# *pre-finalization* state and fold fresh delta partials into it: each
# merge is associative per mode.


def merge_scalar_slots(
    slot_kinds: Sequence[str], partials: List[List[Any]]
) -> List[Any]:
    """Fold slot-wise partials (each a value per physical slot) into one
    merged slot list.  The result is itself a valid partial — the scalar
    state the delta recycler caches."""
    merged: List[Any] = []
    for j, kind in enumerate(slot_kinds):
        values = [part[j] for part in partials]
        if kind in ("sum", "count"):
            total = values[0]
            for value in values[1:]:
                total = total + value
            merged.append(total)
        else:
            present = [v for v in values if v is not _NO_VALUE]
            if not present:
                merged.append(_NO_VALUE)
            else:
                merged.append(min(present) if kind == "min" else max(present))
    return merged


def finalize_scalar(
    spec: ScalarMergeSpec,
    output: Optional[Expr],
    merged: List[Any],
    params: Dict[str, Any],
) -> Any:
    """Extract the aggregate values from merged slots and evaluate the
    output expression (raising for empty-input min/max/avg, matching
    every sequential engine)."""
    env: Dict[str, Any] = {}
    for i, (mode, a, b) in enumerate(spec.extract):
        if mode == "avg":
            if not merged[b]:
                raise ExecutionError(_EMPTY_AGGREGATE_MSG)
            env[f"__agg{i}"] = merged[a] / merged[b]
        else:
            if merged[a] is _NO_VALUE:
                raise ExecutionError(_EMPTY_AGGREGATE_MSG)
            env[f"__agg{i}"] = merged[a]
    return interpret(output, env, params)


def merge_group_table(
    spec: GroupMergeSpec, partials: List[List[Any]]
) -> List[tuple]:
    """Merge flat partial group tables into one flat table.

    Rows are plain tuples ``(k0..kn, s0..sm)`` holding managed-side
    values — the same shape the kernels emit, so a merged table is
    itself a valid partial: the group state the delta recycler caches
    and later re-merges with fresh delta partials.  First-seen group
    order is preserved (earlier partials first), matching sequential
    execution.
    """
    nkeys = spec.nkeys
    nslots = len(spec.merge_kinds)
    key_cols_spec = [_ColumnSpec.scan(partials, c) for c in range(nkeys)]
    val_cols_spec = [
        _ColumnSpec.scan(partials, nkeys + j) for j in range(nslots)
    ]
    aggregator = StreamingGroupAggregator(nkeys, spec.merge_kinds)
    for part in partials:
        if not part:
            continue
        keys = tuple(
            key_cols_spec[c].array([row[c] for row in part])
            for c in range(nkeys)
        )
        values = [
            val_cols_spec[j].array([row[nkeys + j] for row in part])
            for j in range(nslots)
        ]
        aggregator.consume_page(keys, values)
    key_cols, agg_cols = aggregator.finalize()
    ngroups = len(key_cols[0]) if key_cols else 0
    table: List[tuple] = []
    for g in range(ngroups):
        table.append(
            tuple(
                [key_cols_spec[c].decode(key_cols[c][g]) for c in range(nkeys)]
                + [val_cols_spec[j].decode(agg_cols[j][g]) for j in range(nslots)]
            )
        )
    return table


def finalize_group_table(
    spec: GroupMergeSpec,
    output: Optional[Expr],
    table: List[tuple],
    params: Dict[str, Any],
) -> List[Any]:
    """Evaluate the group output expression once per merged group."""
    nkeys = spec.nkeys
    if not table:
        return []
    key_record = (
        make_record_type(spec.key_field_names, spec.key_type_name)
        if spec.key_is_record
        else None
    )
    rows: List[Any] = []
    for entry in table:
        env: Dict[str, Any] = {
            "__key": key_record(*entry[:nkeys]) if key_record else entry[0]
        }
        for i, (mode, a, b) in enumerate(spec.extract):
            if mode == "avg":
                env[f"__agg{i}"] = _as_python(entry[nkeys + a] / entry[nkeys + b])
            else:
                env[f"__agg{i}"] = entry[nkeys + a]
        rows.append(interpret(output, env, params))
    return rows


def apply_post_ops(
    post_ops: Sequence[Plan], rows: List[Any], params: Dict[str, Any]
) -> List[Any]:
    """Re-apply the peeled root operators (sort/top-n/limit/distinct)
    managed-side, in plan order, with stable engine-equivalent
    semantics."""
    for op in reversed(post_ops):
        rows = _apply_post_op(op, rows, params)
    return rows


@dataclass
class ParallelQuery:
    """A morsel-parameterized query: kernels plus a deterministic merge.

    Cached by the provider exactly like a :class:`CompiledQuery`; executing
    it dispatches the kernels across a worker pool and merges partials in
    morsel-index order.
    """

    mode: str  # "rows" | "scalar" | "group"
    morsel_ordinal: int
    kernels: List[Any]  # CompiledQuery per kernel
    post_ops: Tuple[Plan, ...] = ()
    output: Optional[Expr] = None
    group_spec: Optional[GroupMergeSpec] = None
    scalar_spec: Optional[ScalarMergeSpec] = None

    @property
    def scalar(self) -> bool:
        return self.mode == "scalar"

    @property
    def source_code(self) -> str:
        return "\n\n".join(k.source_code for k in self.kernels)

    def execute(
        self,
        sources: List[Any],
        params: Dict[str, Any],
        workers: int,
        morsel_rows: int,
        redecide: Optional[Callable[..., Optional[int]]] = None,
    ) -> Any:
        total = source_length(sources[self.morsel_ordinal])
        if total is None:
            raise ExecutionError(
                "parallel execution requires sized sources; the provider "
                "should have fallen back to sequential execution"
            )
        bounds = morsel_bounds(total, morsel_rows)
        METRICS.counter("parallel.executions").add()
        METRICS.counter("parallel.morsels_dispatched").add(len(bounds))
        with TRACER.span(
            "parallel.execute",
            mode=self.mode,
            workers=workers,
            morsels=len(bounds),
        ):
            with TRACER.span("parallel.dispatch", morsels=len(bounds)):
                partials = self._run_morsels(
                    sources,
                    params,
                    bounds,
                    workers,
                    redecide=redecide,
                    morsel_rows=morsel_rows,
                    total=total,
                )
            with TRACER.span("parallel.merge", mode=self.mode):
                if self.mode == "scalar":
                    return self._merge_scalar(partials, params)
                if self.mode == "group":
                    rows = self._merge_groups(partials, params)
                else:
                    rows = [row for part in partials for row in part]
                return self.apply_post_ops(rows, params)

    # -- dispatch ---------------------------------------------------------------

    def _run_morsels(
        self,
        sources: List[Any],
        params: Dict[str, Any],
        bounds: List[Tuple[int, int]],
        workers: int,
        redecide: Optional[Callable[..., Optional[int]]] = None,
        morsel_rows: int = 0,
        total: int = 0,
    ) -> List[Any]:
        def run(bound: Tuple[int, int]) -> Any:
            # morsel boundaries are cancellation checkpoints: a cancelled
            # query stops dispatching work within one morsel's runtime
            # (kernels already queued finish their own checkpoints)
            cancel_check(params)
            start, stop = bound
            morsel_params = dict(params)
            morsel_params[MORSEL_START] = start
            morsel_params[MORSEL_STOP] = stop
            with TRACER.span(
                "parallel.morsel", start=start, stop=stop, mode=self.mode
            ):
                if self.mode == "scalar":
                    return [
                        self._run_scalar_kernel(
                            kernel, kind, sources, morsel_params
                        )
                        for kernel, kind in zip(
                            self.kernels, self.scalar_spec.slot_kinds
                        )
                    ]
                # materialize inside the worker: the kernel (and any
                # generator it returns) runs off the main thread
                return list(self.kernels[0].execute(sources, morsel_params))

        if redecide is not None and len(bounds) > 1 and self.mode != "scalar":
            # mid-flight re-decision at the first pipeline-breaker
            # boundary: the first morsel's partial has materialized, so
            # its observed cardinality can re-partition the remainder.
            # Results stay bit-identical — the merge only depends on
            # morsel *order*, never on morsel *size*.
            first = run(bounds[0])
            stop0 = bounds[0][1]
            rest = bounds[1:]
            try:
                new_size = redecide(
                    stop0 - bounds[0][0],
                    len(first),
                    morsel_rows,
                    total - stop0,
                    workers,
                )
            except Exception:  # noqa: BLE001 - adaptivity is advisory
                new_size = None
            if new_size and new_size > 0 and stop0 < total:
                rest = [
                    (lo, min(lo + new_size, total))
                    for lo in range(stop0, total, new_size)
                ]
                METRICS.counter("parallel.morsels_redecided").add()
            return [first] + self._dispatch(run, rest, workers)
        return self._dispatch(run, bounds, workers)

    @staticmethod
    def _dispatch(
        run: Callable[[Tuple[int, int]], Any],
        bounds: List[Tuple[int, int]],
        workers: int,
    ) -> List[Any]:
        if not bounds:
            return []
        if workers <= 1 or len(bounds) <= 1:
            return [run(bound) for bound in bounds]
        with ThreadPoolExecutor(
            max_workers=min(workers, len(bounds))
        ) as pool:
            # pool.map preserves submission order: partials arrive in
            # morsel-index order regardless of completion order
            return list(pool.map(run, bounds))

    @staticmethod
    def _run_scalar_kernel(
        kernel: Any, kind: str, sources: List[Any], params: Dict[str, Any]
    ) -> Any:
        if kind not in ("min", "max"):
            return kernel.execute(sources, params)
        try:
            return kernel.execute(sources, params)
        except ExecutionError as exc:
            # an empty *morsel* has no min/max but the whole input may;
            # only re-raise after the merge finds every partial empty
            if str(exc) == _EMPTY_AGGREGATE_MSG:
                return _NO_VALUE
            raise

    # -- partial-state primitives ------------------------------------------------
    #
    # The merge algebra is exposed piecewise so the result recycler can
    # keep the *pre-finalization* state of a cached query and fold fresh
    # delta partials into it: merge is associative per mode (concat /
    # slot folds / the streaming group aggregator), so
    # ``merge(old_state, delta_partials)`` equals a full re-merge.

    def run_window(
        self,
        sources: List[Any],
        params: Dict[str, Any],
        workers: int,
        morsel_rows: int,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> List[Any]:
        """Run the morsel kernels over ``[start, stop)`` of the driver and
        return the raw per-morsel partials (one ``parallel.morsel`` span
        each, exactly like :meth:`execute`)."""
        if stop is None:
            stop = source_length(sources[self.morsel_ordinal])
            if stop is None:
                raise ExecutionError(
                    "parallel execution requires sized sources"
                )
        bounds = morsel_bounds(stop, morsel_rows, start=start)
        METRICS.counter("parallel.morsels_dispatched").add(len(bounds))
        with TRACER.span(
            "parallel.execute",
            mode=self.mode,
            workers=workers,
            morsels=len(bounds),
        ):
            with TRACER.span("parallel.dispatch", morsels=len(bounds)):
                return self._run_morsels(sources, params, bounds, workers)

    # The merge methods below delegate to the module-level pure functions
    # so every executor (thread pool, delta recycler, distributed
    # coordinator) shares one implementation of the algebra.

    def merge_scalar_slots(self, partials: List[List[Any]]) -> List[Any]:
        return merge_scalar_slots(self.scalar_spec.slot_kinds, partials)

    def finalize_scalar(self, merged: List[Any], params: Dict[str, Any]) -> Any:
        return finalize_scalar(self.scalar_spec, self.output, merged, params)

    def merge_group_table(self, partials: List[List[Any]]) -> List[tuple]:
        return merge_group_table(self.group_spec, partials)

    def finalize_group_table(
        self, table: List[tuple], params: Dict[str, Any]
    ) -> List[Any]:
        return finalize_group_table(self.group_spec, self.output, table, params)

    def apply_post_ops(
        self, rows: List[Any], params: Dict[str, Any]
    ) -> List[Any]:
        return apply_post_ops(self.post_ops, rows, params)

    # -- scalar merge -----------------------------------------------------------

    def _merge_scalar(self, partials: List[List[Any]], params: Dict[str, Any]) -> Any:
        return self.finalize_scalar(self.merge_scalar_slots(partials), params)

    # -- group merge ------------------------------------------------------------

    def _merge_groups(
        self, partials: List[List[Any]], params: Dict[str, Any]
    ) -> List[Any]:
        return self.finalize_group_table(self.merge_group_table(partials), params)


@dataclass
class _ColumnSpec:
    """Native representation of one partial-table column for merging.

    Dates travel as days-since-epoch (the engines' own native form) and
    strings get one consistent width across all partials — per-page widths
    would truncate in the aggregator's finalization arrays.
    """

    is_date: bool = False
    str_width: int = 0

    @classmethod
    def scan(cls, partials: List[List[Any]], index: int) -> "_ColumnSpec":
        spec = cls()
        for part in partials:
            for row in part:
                value = row[index]
                if isinstance(value, datetime.date):
                    spec.is_date = True
                elif isinstance(value, str):
                    spec.str_width = max(spec.str_width, len(value), 1)
        return spec

    def array(self, values: List[Any]) -> np.ndarray:
        if self.is_date:
            return np.asarray(
                [date_to_days(v) for v in values], dtype=np.int64
            )
        if self.str_width:
            return np.asarray(values, dtype=f"<U{self.str_width}")
        return np.asarray(values)

    def decode(self, value: Any) -> Any:
        if isinstance(value, np.generic):
            value = value.item()
        if self.is_date:
            return days_to_date(int(value))
        return value


def _as_python(value: Any) -> Any:
    return value.item() if isinstance(value, np.generic) else value


# ---------------------------------------------------------------------------
# Managed-side post-operators (deterministic, engine-equivalent semantics)
# ---------------------------------------------------------------------------


def _apply_post_op(op: Plan, rows: List[Any], params: Dict[str, Any]) -> List[Any]:
    if isinstance(op, Sort):
        return _stable_sort(rows, op.keys, op.descending, params)
    if isinstance(op, TopN):
        count = max(0, int(interpret(op.count, {}, params)))
        # every engine's top-n (heap or boundary-widened argpartition) is
        # equivalent to a stable sort followed by take
        return _stable_sort(rows, op.keys, op.descending, params)[:count]
    if isinstance(op, Limit):
        start = (
            int(interpret(op.offset, {}, params)) if op.offset is not None else 0
        )
        if op.count is None:
            return rows[start:]
        count = max(0, int(interpret(op.count, {}, params)))
        return rows[start : start + count]
    if isinstance(op, Distinct):
        seen = set()
        out = []
        for row in rows:
            try:
                key = row
                duplicate = key in seen
            except TypeError:  # unhashable row views compare as tuples
                key = tuple(row)
                duplicate = key in seen
            if not duplicate:
                seen.add(key)
                out.append(row)
        return out
    raise ExecutionError(
        f"no managed merge for post-operator {type(op).__name__}"
    )


def _stable_sort(
    rows: List[Any],
    keys: Tuple[Lambda, ...],
    descending: Tuple[bool, ...],
    params: Dict[str, Any],
) -> List[Any]:
    """Multi-key sort as successive stable passes, last key first.

    Equivalent to every engine's stable comparator (quicksort with index
    tiebreak, numpy lexsort): ties keep the merged (sequential) row order.
    """
    order = list(range(len(rows)))
    for key, desc in list(zip(keys, descending))[::-1]:
        (param,) = key.params
        key_values = [interpret(key.body, {param: row}, params) for row in rows]
        order.sort(key=key_values.__getitem__, reverse=bool(desc))
    return [rows[i] for i in order]


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


def build_parallel_query(
    split: ParallelSplit,
    compile_kernel: Callable[[Plan], Any],
) -> ParallelQuery:
    """Build the morsel kernels and merge recipe for a parallel-safe plan.

    ``compile_kernel`` compiles one (partial) plan with the split's morsel
    ordinal — supplied by the provider so engine selection, verification
    and cache accounting stay in one place.
    """
    core = split.core
    if split.mode == "rows":
        return ParallelQuery(
            mode="rows",
            morsel_ordinal=split.morsel_ordinal,
            kernels=[compile_kernel(core)],
            post_ops=split.post_ops,
        )

    slots, extract = _physical_slots(core.aggregates)
    if split.mode == "scalar":
        kernels = [
            compile_kernel(
                ScalarAggregate(
                    child=core.child,
                    aggregates=(AggregateSpec(kind, selector),),
                    output=Var("__agg0"),
                )
            )
            for kind, selector in slots
        ]
        return ParallelQuery(
            mode="scalar",
            morsel_ordinal=split.morsel_ordinal,
            kernels=kernels,
            post_ops=split.post_ops,
            output=core.output,
            scalar_spec=ScalarMergeSpec(
                slot_kinds=[kind for kind, _ in slots], extract=extract
            ),
        )

    # group: one kernel emitting the morsel's group table flat
    key_body = core.key.body
    if isinstance(key_body, New):
        key_field_names = key_body.field_names
        key_type_name = key_body.type_name
        key_exprs = [Member(Var("__key"), name) for name in key_field_names]
        key_is_record = True
    else:
        key_field_names = ("k0",)
        key_type_name = None
        key_exprs = [Var("__key")]
        key_is_record = False
    out_fields = tuple(
        (f"k{c}", expr) for c, expr in enumerate(key_exprs)
    ) + tuple((f"s{j}", Var(f"__agg{j}")) for j in range(len(slots)))
    partial_plan = GroupAggregate(
        child=core.child,
        key=core.key,
        aggregates=tuple(AggregateSpec(kind, sel) for kind, sel in slots),
        output=New(out_fields),
        fused=True,
        share=True,
    )
    merge_kinds = ["sum" if kind == "count" else kind for kind, _ in slots]
    return ParallelQuery(
        mode="group",
        morsel_ordinal=split.morsel_ordinal,
        kernels=[compile_kernel(partial_plan)],
        post_ops=split.post_ops,
        output=core.output,
        group_spec=GroupMergeSpec(
            nkeys=len(key_exprs),
            key_is_record=key_is_record,
            key_field_names=tuple(key_field_names),
            key_type_name=key_type_name,
            merge_kinds=merge_kinds,
            extract=extract,
        ),
    )
