"""Streaming (buffered-materialization) runtime structures — paper §6.1.2.

Full materialization stages everything before native code runs; buffered
materialization processes each page as it fills, keeping the staging
footprint at one page.  These classes are the merge state that lives
across page boundaries:

* :class:`StreamingGroupAggregator` — merges per-page vectorized group
  aggregates into a running table ("the generated C code contains a
  blocking operation and does not return a result before all input is
  consumed");
* :class:`StreamingJoinProbe` — a pre-sorted build side probed one page at
  a time ("transferring data in a single buffer" for the probe relation
  while "the hash tables require full materialization").

``avg`` cannot merge across pages, so aggregate specs must be decomposed
into ``sum`` + shared ``count`` *before* streaming — the code generator
does this and re-derives the average at finalization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from .vectorized import group_aggregate, probe_sorted

__all__ = ["StreamingGroupAggregator", "StreamingJoinProbe"]

_MERGEABLE = {"sum", "count", "min", "max"}


class StreamingGroupAggregator:
    """Merges per-page group-aggregate results into one running table."""

    def __init__(self, nkeys: int, agg_kinds: Sequence[str]):
        for kind in agg_kinds:
            if kind not in _MERGEABLE:
                raise ExecutionError(
                    f"aggregate {kind!r} cannot merge across pages; decompose "
                    f"it before streaming (avg = sum/count)"
                )
        self._nkeys = nkeys
        self._agg_kinds = list(agg_kinds)
        # dtypes captured from the first page; placeholders if input is empty
        self._key_dtypes: Optional[List[np.dtype]] = None
        self._agg_dtypes: Optional[List[np.dtype]] = None
        self._groups: Dict[Tuple, List] = {}

    def consume_page(
        self,
        keys: Sequence[np.ndarray],
        values: Sequence[Optional[np.ndarray]],
    ) -> None:
        """Aggregate one staged page vectorized, then merge its few groups."""
        if len(keys[0]) == 0:
            return
        page_keys, page_results = group_aggregate(
            keys, list(zip(self._agg_kinds, values))
        )
        if self._key_dtypes is None:
            self._key_dtypes = [k.dtype for k in page_keys]
            self._agg_dtypes = [r.dtype for r in page_results]
        ngroups = len(page_keys[0])
        for g in range(ngroups):
            group_key = tuple(k[g] for k in page_keys)
            slots = self._groups.get(group_key)
            if slots is None:
                self._groups[group_key] = [r[g] for r in page_results]
                continue
            for i, kind in enumerate(self._agg_kinds):
                if kind in ("sum", "count"):
                    slots[i] += page_results[i][g]
                elif kind == "min":
                    slots[i] = min(slots[i], page_results[i][g])
                else:  # max
                    slots[i] = max(slots[i], page_results[i][g])

    def finalize(self) -> Tuple[Tuple[np.ndarray, ...], List[np.ndarray]]:
        """Running table → column arrays, groups in first-seen order."""
        n = len(self._groups)
        key_dtypes = self._key_dtypes or [np.dtype(np.float64)] * self._nkeys
        agg_dtypes = self._agg_dtypes or [np.dtype(np.float64)] * len(self._agg_kinds)
        key_cols = tuple(np.zeros(n, dtype=dt) for dt in key_dtypes)
        agg_cols = [np.zeros(n, dtype=dt) for dt in agg_dtypes]
        for row, (group_key, slots) in enumerate(self._groups.items()):
            for c, value in enumerate(group_key):
                key_cols[c][row] = value
            for c, value in enumerate(slots):
                agg_cols[c][row] = value
        return key_cols, agg_cols


class StreamingJoinProbe:
    """Build side sorted once; pages probe with binary search."""

    def __init__(self, build_keys: np.ndarray):
        self._order = np.argsort(build_keys, kind="stable")
        self._sorted = build_keys[self._order]

    def probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (page-local probe indexes, build indexes) for all matches."""
        return probe_sorted(self._sorted, self._order, probe_keys)
