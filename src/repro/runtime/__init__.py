"""Runtime support structures called from generated and interpreted code."""

from .aggregates import AccumulatorPlan, AggSpec, FusedAccumulator, plan_accumulators
from .cancellation import CANCEL_PARAM, CancellationToken, cancel_check
from .hashtable import GroupTable, Grouping, JoinTable, build_join_table
from .sorting import (
    CompositeKey,
    argsort_indexes,
    multi_key_less,
    python_sorted_indexes,
    quicksort_indexes,
)
from .parallel import (
    DEFAULT_MORSEL_ROWS,
    ParallelQuery,
    build_parallel_query,
    morsel_bounds,
    morsel_slice,
)
from .streaming import StreamingGroupAggregator, StreamingJoinProbe
from .topn import TopNHeap

__all__ = [
    "CANCEL_PARAM",
    "CancellationToken",
    "cancel_check",
    "AggSpec",
    "AccumulatorPlan",
    "FusedAccumulator",
    "plan_accumulators",
    "Grouping",
    "GroupTable",
    "JoinTable",
    "build_join_table",
    "quicksort_indexes",
    "CompositeKey",
    "argsort_indexes",
    "python_sorted_indexes",
    "multi_key_less",
    "TopNHeap",
    "StreamingGroupAggregator",
    "StreamingJoinProbe",
    "DEFAULT_MORSEL_ROWS",
    "ParallelQuery",
    "build_parallel_query",
    "morsel_bounds",
    "morsel_slice",
]
