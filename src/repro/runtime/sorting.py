"""Sorting primitives shared by all engines.

The paper is careful to keep the *algorithm* fixed while varying the
*runtime*: "the same quicksort implementation on the same data runs 58%
faster in compiled C code over its C# counterpart" (§2.3), and the
generated C code implements the same quicksort LINQ-to-objects uses (§7.2).

We mirror that protocol:

* :func:`quicksort_indexes` — one textbook quicksort over a key array,
  written in pure Python.  The interpreted engines use it, making the
  language gap measurable (``bench_sec23_micro``).
* :func:`argsort_indexes` — the identical index-producing contract executed
  by NumPy's compiled sort, standing in for the generated C quicksort.
* :class:`CompositeKey` / :func:`python_sorted_indexes` — multi-key
  ordering with per-key direction, for ``order_by ... then_by`` chains.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "quicksort_indexes",
    "CompositeKey",
    "argsort_indexes",
    "multi_key_less",
    "python_sorted_indexes",
]


def quicksort_indexes(keys: Sequence[Any], descending: bool = False) -> List[int]:
    """Sort index positions of *keys* with an explicit in-place quicksort.

    This is intentionally *not* ``sorted(...)``: the C#-vs-C experiment
    needs the same algorithm on both sides of the language gap, and
    Timsort ≠ quicksort.  Median-of-three pivoting with an insertion-sort
    cutoff keeps worst cases away on the presorted/reversed inputs the
    benchmarks feed it.

    Equal keys come out in input order (LINQ's OrderBy is documented
    stable): like LINQ, the quicksort sorts an index array and breaks key
    ties on the index.
    """
    indexes = list(range(len(keys)))
    before = _greater_stable if descending else _less_stable
    _quicksort(indexes, keys, 0, len(indexes) - 1, before)
    return indexes


_INSERTION_CUTOFF = 16


def _less_stable(keys: Sequence[Any], a: int, b: int) -> bool:
    """index a sorts before index b, ascending, ties by position."""
    ka, kb = keys[a], keys[b]
    if ka == kb:
        return a < b
    return ka < kb


def _greater_stable(keys: Sequence[Any], a: int, b: int) -> bool:
    """index a sorts before index b, descending, ties by position."""
    ka, kb = keys[a], keys[b]
    if ka == kb:
        return a < b
    return kb < ka


def _quicksort(
    indexes: List[int],
    keys: Sequence[Any],
    lo: int,
    hi: int,
    before: Callable[[Sequence[Any], int, int], bool],
) -> None:
    while lo < hi:
        if hi - lo < _INSERTION_CUTOFF:
            _insertion_sort(indexes, keys, lo, hi, before)
            return
        p = _partition(indexes, keys, lo, hi, before)
        # recurse into the smaller side, loop on the larger: O(log n) stack
        if p - lo < hi - p:
            _quicksort(indexes, keys, lo, p - 1, before)
            lo = p + 1
        else:
            _quicksort(indexes, keys, p + 1, hi, before)
            hi = p - 1


def _partition(
    indexes: List[int],
    keys: Sequence[Any],
    lo: int,
    hi: int,
    before: Callable[[Sequence[Any], int, int], bool],
) -> int:
    mid = (lo + hi) // 2
    # median-of-three: order entries at lo, mid, hi; median moves to hi-1
    if before(keys, indexes[mid], indexes[lo]):
        indexes[lo], indexes[mid] = indexes[mid], indexes[lo]
    if before(keys, indexes[hi], indexes[lo]):
        indexes[lo], indexes[hi] = indexes[hi], indexes[lo]
    if before(keys, indexes[hi], indexes[mid]):
        indexes[mid], indexes[hi] = indexes[hi], indexes[mid]
    indexes[mid], indexes[hi - 1] = indexes[hi - 1], indexes[mid]
    pivot = indexes[hi - 1]
    store = lo
    for i in range(lo, hi - 1):
        if before(keys, indexes[i], pivot):
            indexes[store], indexes[i] = indexes[i], indexes[store]
            store += 1
    indexes[store], indexes[hi - 1] = indexes[hi - 1], indexes[store]
    return store


def _insertion_sort(
    indexes: List[int],
    keys: Sequence[Any],
    lo: int,
    hi: int,
    before: Callable[[Sequence[Any], int, int], bool],
) -> None:
    for i in range(lo + 1, hi + 1):
        current = indexes[i]
        j = i - 1
        while j >= lo and before(keys, current, indexes[j]):
            indexes[j + 1] = indexes[j]
            j -= 1
        indexes[j + 1] = current


def argsort_indexes(keys: np.ndarray, descending: bool = False) -> np.ndarray:
    """The native-runtime counterpart: NumPy's compiled quicksort.

    ``kind='quicksort'`` keeps the algorithm aligned with
    :func:`quicksort_indexes`; only the execution substrate differs —
    exactly the §2.3 language-gap experiment.
    """
    order = np.argsort(keys, kind="quicksort")
    if descending:
        order = order[::-1]
    return order


def python_sorted_indexes(
    keys: Sequence[Any], directions: Sequence[bool] | None = None
) -> List[int]:
    """Stable multi-key index sort for ``order_by ... then_by`` chains.

    *keys* holds per-element key tuples; ``directions[i]`` is True when key
    ``i`` sorts descending.  Stability comes from sorting once per key,
    least-significant first (the classic decorate-sort trick).
    """
    indexes = list(range(len(keys)))
    if not keys:
        return indexes
    nkeys = len(keys[0]) if isinstance(keys[0], tuple) else 1
    directions = list(directions or [False] * nkeys)
    if nkeys == 1 and not isinstance(keys[0], tuple):
        indexes.sort(key=lambda i: keys[i], reverse=directions[0])
        return indexes
    for level in reversed(range(nkeys)):
        indexes.sort(key=lambda i: keys[i][level], reverse=directions[level])
    return indexes


class CompositeKey:
    """A sortable wrapper for multi-key, mixed-direction orderings.

    Lets the direction-blind quicksort in :func:`quicksort_indexes` order
    ``order_by ... then_by`` chains: the wrapper's ``<`` applies per-key
    directions.  Pair it with the original index for stability:
    ``(CompositeKey(keys, dirs), i)``.
    """

    __slots__ = ("keys", "directions")

    def __init__(self, keys: Tuple, directions: Tuple[bool, ...]):
        self.keys = keys
        self.directions = directions

    def __lt__(self, other: "CompositeKey") -> bool:
        return multi_key_less(self.keys, other.keys, self.directions)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CompositeKey) and self.keys == other.keys


def multi_key_less(
    a: Tuple, b: Tuple, directions: Sequence[bool]
) -> bool:
    """Lexicographic comparison of key tuples with per-key direction."""
    for x, y, desc in zip(a, b, directions):
        if x == y:
            continue
        return (y < x) if desc else (x < y)
    return False
