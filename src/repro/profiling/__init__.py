"""Measurement substrate: cache simulation, memory models, phase timing."""

from .breakdown import (
    PhaseBreakdown,
    aggregation_breakdown,
    join_breakdown,
    sort_breakdown,
)
from .cache_sim import (
    CacheHierarchy,
    CacheLevel,
    CacheLevelConfig,
    default_hierarchy,
    proportional_hierarchy,
    scaled_hierarchy,
)
from .memory_model import ENGINE_LABELS, MemoryModel, q1_trace, q2_trace, q3_trace

__all__ = [
    "CacheLevelConfig",
    "CacheLevel",
    "CacheHierarchy",
    "default_hierarchy",
    "scaled_hierarchy",
    "proportional_hierarchy",
    "MemoryModel",
    "ENGINE_LABELS",
    "q1_trace",
    "q2_trace",
    "q3_trace",
    "PhaseBreakdown",
    "aggregation_breakdown",
    "sort_breakdown",
    "join_breakdown",
]
