"""Synthetic address traces for each engine's storage layout (Figure 14).

Hardware miss counters are unavailable from pure Python, so Figure 14 is
reproduced by *modeling*: for a query with known cardinalities, we build
the byte-address trace each execution strategy's data layout and access
pattern implies, then replay it through
:class:`~repro.profiling.cache_sim.CacheHierarchy`.

The model encodes the paper's layouts (§2–§6):

* **managed heap objects** — elements scattered through a GC heap; every
  access touches the object header plus the referenced fields.  The LINQ
  pipeline additionally touches per-operator iterator state each element,
  and its aggregation re-walks every group once per aggregate (§2.3);
* **arrays of structs** — contiguous rows, sequential scans (§5);
* **staged buffers** — sequential writes during staging, sequential kernel
  reads after (§6.1), with entries shrunk by the implicit projection;
* **hash tables** — random probes into a region sized by entry count ×
  entry width; the §6 tables are smaller than the §5 ones because staging
  projects, which is exactly the Q3 effect of Figure 14.

Traces reflect the *paper's* C design where it differs from our NumPy
kernels (e.g. bucket-chain hash tables rather than sort+searchsorted); the
wall-clock benchmarks measure our real code, this module reproduces the
paper's cache argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["MemoryModel", "ENGINE_LABELS", "q1_trace", "q3_trace", "q2_trace"]

#: engines of Figure 14, in presentation order
ENGINE_LABELS = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")

_OBJECT_HEADER = 16  # CLR object header + method table pointer
_ITERATOR_STATE = 64  # per-operator enumerator footprint


class MemoryModel:
    """Region allocator + trace primitives with a deterministic RNG."""

    def __init__(self, seed: int = 1234):
        self._rng = np.random.default_rng(seed)
        self._next_base = 1 << 20  # leave page zero free
        self.trace: List[np.ndarray] = []

    # -- region management ---------------------------------------------------

    def allocate(self, nbytes: int, align: int = 64) -> int:
        base = (self._next_base + align - 1) // align * align
        self._next_base = base + nbytes
        return base

    def scattered_layout(
        self, n: int, object_bytes: int, fragmentation: float = 0.05
    ) -> np.ndarray:
        """Addresses of n heap objects as a compacting GC leaves them.

        Collections filled once sit mostly in allocation order (the
        compacted generation), but interleaved allocations and surviving
        garbage displace a ``fragmentation`` share of elements to random
        heap slots.  Object slots also carry header/padding overhead, so
        even the sequential majority has a wider stride than a flat struct
        row — both effects the paper attributes to the managed heap.
        """
        slot = max(object_bytes, 16)
        region = self.allocate(2 * n * slot)
        addresses = region + np.arange(n, dtype=np.int64) * slot
        displaced = self._rng.random(n) < fragmentation
        addresses[displaced] = region + self._rng.integers(
            0, 2 * n, int(displaced.sum())
        ) * slot
        return addresses

    # -- trace primitives ---------------------------------------------------------

    def emit(self, addresses: np.ndarray) -> None:
        self.trace.append(addresses.astype(np.int64, copy=False))

    def object_scan(
        self,
        object_addresses: np.ndarray,
        field_offsets: Sequence[int],
        iterator_chain: int = 0,
    ) -> None:
        """Visit every object, touching header + fields (+ iterator state)."""
        n = len(object_addresses)
        per_element: List[np.ndarray] = []
        if iterator_chain:
            state_base = self.allocate(iterator_chain * _ITERATOR_STATE)
            for op in range(iterator_chain):
                per_element.append(
                    np.full(n, state_base + op * _ITERATOR_STATE, dtype=np.int64)
                )
        per_element.append(object_addresses)  # header
        for offset in field_offsets:
            per_element.append(object_addresses + _OBJECT_HEADER + offset)
        # interleave per-element accesses in element order
        stacked = np.stack(per_element, axis=1).reshape(-1)
        self.emit(stacked)

    def sequential_scan(
        self,
        base: int,
        n: int,
        row_bytes: int,
        field_offsets: Sequence[int] | None = None,
    ) -> None:
        """Touch n contiguous rows (specific field offsets, or row starts)."""
        rows = base + np.arange(n, dtype=np.int64) * row_bytes
        if not field_offsets:
            self.emit(rows)
            return
        parts = [rows + off for off in field_offsets]
        self.emit(np.stack(parts, axis=1).reshape(-1))

    def sequential_write(self, n: int, row_bytes: int) -> int:
        """Stage n rows into a fresh buffer region; returns its base."""
        base = self.allocate(n * row_bytes)
        self.sequential_scan(base, n, row_bytes)
        return base

    def hash_build(self, n: int, entry_bytes: int) -> int:
        """Insert n entries: bucket-array write + entry write (chained
        hash table, the paper's C design).  Returns the table base."""
        bucket_bytes = max(64, n * 8)
        table_bytes = max(64, int(n * entry_bytes * 1.5))
        base = self.allocate(bucket_bytes + table_bytes)
        buckets = self._rng.integers(0, max(1, bucket_bytes // 8), n)
        slots = self._rng.integers(0, max(1, table_bytes // entry_bytes), n)
        interleaved = np.stack(
            [base + buckets * 8, base + bucket_bytes + slots * entry_bytes], axis=1
        ).reshape(-1)
        self.emit(interleaved)
        return base

    def hash_probe(
        self, base: int, n_entries: int, entry_bytes: int, probes: int
    ) -> None:
        """Probe the table `probes` times: bucket-array read + entry read."""
        bucket_bytes = max(64, n_entries * 8)
        table_bytes = max(64, int(n_entries * entry_bytes * 1.5))
        buckets = self._rng.integers(0, max(1, bucket_bytes // 8), probes)
        slots = self._rng.integers(0, max(1, table_bytes // entry_bytes), probes)
        interleaved = np.stack(
            [base + buckets * 8, base + bucket_bytes + slots * entry_bytes], axis=1
        ).reshape(-1)
        self.emit(interleaved)

    def build(self) -> np.ndarray:
        if not self.trace:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.trace)


# ---------------------------------------------------------------------------
# per-query, per-engine trace builders
# ---------------------------------------------------------------------------


@dataclass
class _Geometry:
    """Byte geometry shared by the builders."""

    lineitem_object = 200  # boxed fields + references
    lineitem_struct = 112  # flat struct row (the §5 layout)
    q1_touched = (0, 8, 16, 24, 32, 40)  # flags, qty, price, disc, tax
    q1_staged_row = 40  # rf, ls, qty, price, disc, tax after projection
    q3_staged_row = 24  # orderkey, extendedprice, discount after projection
    group_entry = 96  # grouping accumulator row
    order_object = 120
    order_struct = 72
    customer_object = 140
    customer_struct = 80


_G = _Geometry()


def q1_trace(engine: str, counts: Dict[str, int], seed: int = 1234) -> np.ndarray:
    """Trace for the Q1-style aggregation.  counts: n_input, n_selected,
    n_groups, n_aggregates."""
    model = MemoryModel(seed)
    n = counts["n_input"]
    selected = counts["n_selected"]
    groups = counts["n_groups"]
    aggregates = counts.get("n_aggregates", 8)

    if engine == "linq":
        objects = model.scattered_layout(n, _G.lineitem_object)
        # operator pipeline: source → where → group_by (3 enumerators)
        model.object_scan(objects, _G.q1_touched, iterator_chain=3)
        # grouping materializes per-group lists, then every aggregate
        # re-walks every group: `aggregates` more passes over survivors
        survivors = objects[:selected]
        for _ in range(aggregates):
            model.object_scan(survivors, _G.q1_touched[:2])
        model.hash_build(groups, _G.group_entry)
    elif engine == "compiled":
        objects = model.scattered_layout(n, _G.lineitem_object)
        model.object_scan(objects, _G.q1_touched)  # one fused pass
        table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(table, groups, _G.group_entry, selected)
    elif engine == "native":
        base = model.allocate(n * _G.lineitem_struct)
        model.sequential_scan(base, n, _G.lineitem_struct, _G.q1_touched)
        table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(table, groups, _G.group_entry, selected)
    elif engine in ("hybrid", "hybrid_buffered"):
        objects = model.scattered_layout(n, _G.lineitem_object)
        model.object_scan(objects, _G.q1_touched)  # iterate + filter
        if engine == "hybrid":
            staged = model.sequential_write(selected, _G.q1_staged_row)
            model.sequential_scan(staged, selected, _G.q1_staged_row)
        else:
            # one reused page: writes and kernel reads stay cache-resident
            page_rows = max(1, 64 * 1024 // _G.q1_staged_row)
            page = model.allocate(page_rows * _G.q1_staged_row)
            full_pages, remainder = divmod(selected, page_rows)
            for _ in range(min(full_pages, 64)):  # cap trace length
                model.sequential_scan(page, page_rows, _G.q1_staged_row)
                model.sequential_scan(page, page_rows, _G.q1_staged_row)
            if remainder:
                model.sequential_scan(page, remainder, _G.q1_staged_row)
        table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(table, groups, _G.group_entry, selected)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return model.build()


def q3_trace(engine: str, counts: Dict[str, int], seed: int = 1234) -> np.ndarray:
    """Trace for the Q3-style join+aggregate.  counts: n_lineitem, n_li_sel,
    n_orders, n_ord_sel, n_customer, n_cust_sel, n_matches, n_groups."""
    model = MemoryModel(seed)
    nl, li_sel = counts["n_lineitem"], counts["n_li_sel"]
    no, ord_sel = counts["n_orders"], counts["n_ord_sel"]
    nc, cust_sel = counts["n_customer"], counts["n_cust_sel"]
    matches = counts["n_matches"]
    groups = counts["n_groups"]

    #: hash entries: the §5 engine stores full struct rows; §6 stages a
    #: projected entry ("the hash table of the customer relation only
    #: contains an integer value per key")
    native_cust_entry = _G.customer_struct
    native_ord_entry = _G.order_struct
    # "the hash table of the customer relation only contains an integer
    # value per key" — staged entries carry exactly the projected fields
    hybrid_cust_entry = 8
    hybrid_ord_entry = 16

    def managed_scans(iterator_chain: int) -> tuple:
        customers = model.scattered_layout(nc, _G.customer_object)
        orders = model.scattered_layout(no, _G.order_object)
        lineitems = model.scattered_layout(nl, _G.lineitem_object)
        model.object_scan(customers, (0, 8), iterator_chain=iterator_chain)
        model.object_scan(orders, (0, 8, 16), iterator_chain=iterator_chain)
        model.object_scan(lineitems, (0, 8, 16, 24), iterator_chain=iterator_chain)
        return customers, orders, lineitems

    if engine in ("linq", "compiled"):
        managed_scans(iterator_chain=4 if engine == "linq" else 0)
        entry = _G.order_object if engine == "linq" else 64
        cust_table = model.hash_build(cust_sel, entry)
        model.hash_probe(cust_table, cust_sel, entry, ord_sel)
        ord_table = model.hash_build(ord_sel, entry)
        model.hash_probe(ord_table, ord_sel, entry, li_sel)
        if engine == "linq":
            # LINQ materializes intermediate result objects per operator
            model.sequential_write(ord_sel, 48)
            model.sequential_write(matches, 48)
        group_table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(group_table, groups, _G.group_entry, matches)
    elif engine == "native":
        for n, row in (
            (nc, _G.customer_struct),
            (no, _G.order_struct),
            (nl, _G.lineitem_struct),
        ):
            base = model.allocate(n * row)
            model.sequential_scan(base, n, row, (0, 8, 16))
        cust_table = model.hash_build(cust_sel, native_cust_entry)
        model.hash_probe(cust_table, cust_sel, native_cust_entry, ord_sel)
        ord_table = model.hash_build(ord_sel, native_ord_entry)
        model.hash_probe(ord_table, ord_sel, native_ord_entry, li_sel)
        group_table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(group_table, groups, _G.group_entry, matches)
    elif engine in ("hybrid", "hybrid_buffered"):
        customers = model.scattered_layout(nc, _G.customer_object)
        orders = model.scattered_layout(no, _G.order_object)
        model.object_scan(customers, (0, 8))
        model.object_scan(orders, (0, 8, 16))
        model.sequential_write(cust_sel, hybrid_cust_entry)
        model.sequential_write(ord_sel, hybrid_ord_entry)
        cust_table = model.hash_build(cust_sel, hybrid_cust_entry)
        model.hash_probe(cust_table, cust_sel, hybrid_cust_entry, ord_sel)
        ord_table = model.hash_build(ord_sel, hybrid_ord_entry)
        lineitems = model.scattered_layout(nl, _G.lineitem_object)
        if engine == "hybrid":
            # full staging: scan + stage first, then one clean pass over the
            # staged lineitem data while probing ("reduces cache pressure by
            # only iterating over the staged lineitem input")
            model.object_scan(lineitems, (0, 8, 16, 24))
            staged_li = model.sequential_write(li_sel, _G.q3_staged_row)
            model.sequential_scan(staged_li, li_sel, _G.q3_staged_row)
            model.hash_probe(ord_table, ord_sel, hybrid_ord_entry, li_sel)
        else:
            # buffered: probing interleaves with fetching qualifying objects
            # and staging the page — extra cache pressure (the paper's Q3
            # full-vs-buffered observation)
            page_rows = max(1, 64 * 1024 // _G.q3_staged_row)
            page = model.allocate(page_rows * _G.q3_staged_row)
            done = 0
            probes_per_page = max(1, int(li_sel * page_rows / max(nl, 1)))
            while done < nl:
                chunk = min(page_rows, nl - done)
                model.object_scan(lineitems[done : done + chunk], (0, 8, 16, 24))
                model.sequential_scan(page, chunk, _G.q3_staged_row)
                model.hash_probe(
                    ord_table, ord_sel, hybrid_ord_entry, probes_per_page
                )
                done += chunk
        group_table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(group_table, groups, _G.group_entry, matches)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return model.build()


def q2_trace(engine: str, counts: Dict[str, int], seed: int = 1234) -> np.ndarray:
    """Trace for Q2 (join/grouping over the smaller relations).

    counts: n_part, n_partsupp, n_supplier, n_regional_costs, n_candidates,
    n_groups."""
    model = MemoryModel(seed)
    np_, nps, ns = counts["n_part"], counts["n_partsupp"], counts["n_supplier"]
    regional = counts["n_regional_costs"]
    candidates = counts["n_candidates"]
    groups = counts["n_groups"]

    if engine in ("linq", "compiled", "hybrid", "hybrid_buffered"):
        chain = 5 if engine == "linq" else 0
        suppliers = model.scattered_layout(ns, 140)
        partsupps = model.scattered_layout(nps, 80)
        parts = model.scattered_layout(np_, 180)
        model.object_scan(suppliers, (0, 8), iterator_chain=chain)
        model.object_scan(partsupps, (0, 8, 16), iterator_chain=chain)
        model.object_scan(parts, (0, 8, 16), iterator_chain=chain)
        entry = 120 if engine == "linq" else (64 if engine == "compiled" else 24)
        if engine.startswith("hybrid"):
            model.sequential_write(regional, 32)
        if engine == "linq":
            # intermediate result objects of the join pipeline
            model.sequential_write(regional, 48)
            model.sequential_write(regional, 48)
        supp_table = model.hash_build(ns, entry)
        model.hash_probe(supp_table, ns, entry, nps)
        group_table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(group_table, groups, _G.group_entry, regional)
        cand_table = model.hash_build(candidates, entry)
        model.hash_probe(cand_table, candidates, entry, regional)
    elif engine == "native":
        for n, row in ((ns, 96), (nps, 48), (np_, 128)):
            base = model.allocate(n * row)
            model.sequential_scan(base, n, row, (0, 8))
        supp_table = model.hash_build(ns, 96)
        model.hash_probe(supp_table, ns, 96, nps)
        group_table = model.hash_build(groups, _G.group_entry)
        model.hash_probe(group_table, groups, _G.group_entry, regional)
        cand_table = model.hash_build(candidates, 96)
        model.hash_probe(cand_table, candidates, 96, regional)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return model.build()
